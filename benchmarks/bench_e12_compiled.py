"""E12 — Section 2: interpreted vs compiled evaluation.

Paper claim: *"We also developed a fully compiled version of CORAL ... We
found that this approach took a significantly longer time to compile
programs, and the resulting gain in execution speed was minimal.  We have
therefore focused on the interpreted version; 'consulting' a program takes
very little time."*

Measured: consult/compile time and run time for transitive closure in both
modes.  The paper's trade-off should reproduce in shape: compilation costs
real up-front time per rule; run-time gains exist but are modest relative to
end-to-end cost.
"""

import time

import pytest

from repro import Session
from workloads import chain_edges, edge_facts, report

TC = """
module tc.
export path(bf).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""

EDGES = edge_facts(chain_edges(150))


def _measure(flags: str):
    session = Session()
    started = time.perf_counter()
    session.consult_string(EDGES + TC.format(flags=flags))
    # force compilation of the query form (part of 'consult' cost here)
    session.modules.compiled_form("tc", "path", "bf")
    instance = session.modules.instance_for("tc", "path", "bf")
    consult_seconds = time.perf_counter() - started

    codegen = getattr(instance, "compiler", None)
    started = time.perf_counter()
    answers = len(session.query("path(0, Y)").all())
    run_seconds = time.perf_counter() - started
    return consult_seconds, run_seconds, answers, codegen


class TestE12CompiledMode:
    def test_consult_vs_run_tradeoff(self):
        interp_consult, interp_run, interp_answers, _ = _measure("")
        compiled_consult, compiled_run, compiled_answers, codegen = _measure(
            "@compiled."
        )
        assert interp_answers == compiled_answers == 150
        assert codegen is not None and codegen.stats.rules_compiled > 0
        rows = [
            (
                "interpreted",
                f"{interp_consult * 1000:.1f}",
                f"{interp_run * 1000:.1f}",
            ),
            (
                "compiled",
                f"{compiled_consult * 1000:.1f}",
                f"{compiled_run * 1000:.1f}",
            ),
        ]
        report(
            "E12: consult+compile vs run time (ms), 150-chain bound TC",
            ["mode", "consult+compile", "run"],
            rows,
        )
        print(
            f"   codegen: {codegen.stats.rules_compiled} rules compiled, "
            f"{codegen.stats.rules_interpreted} fell back, "
            f"{codegen.stats.generated_lines} generated lines"
        )
        # the paper's shape: compilation adds consult-time cost...
        assert compiled_consult > interp_consult
        # ...while the run-time gain is real but bounded (not order-of-
        # magnitude for rule-at-a-time Datalog)
        assert compiled_run < interp_run
        assert compiled_run > interp_run / 20

    def test_fallback_rules_keep_compiled_module_correct(self):
        """A module mixing compilable and non-compilable rules answers
        identically in both modes (per-rule fallback)."""
        program = """
        item(1). item(2). item(3).

        module m.
        export wrapped(f).
        {flags}
        wrapped(W) :- item(X), W = f(X).
        end_module.
        """
        plain, compiled = (
            sorted(
                str(a.term("W"))
                for a in _session(program, flags).query("wrapped(W)")
            )
            for flags in ("", "@compiled.")
        )
        assert plain == compiled

    def test_interpreted_run_speed(self, benchmark):
        benchmark.pedantic(lambda: _measure(""), rounds=3, iterations=1)

    def test_compiled_run_speed(self, benchmark):
        benchmark.pedantic(lambda: _measure("@compiled."), rounds=3, iterations=1)


def _session(template: str, flags: str) -> Session:
    session = Session()
    session.consult_string(template.format(flags=flags))
    return session
