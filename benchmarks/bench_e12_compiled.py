"""E12 — Section 2: interpreted vs compiled evaluation.

Paper claim: *"We also developed a fully compiled version of CORAL ... We
found that this approach took a significantly longer time to compile
programs, and the resulting gain in execution speed was minimal.  We have
therefore focused on the interpreted version; 'consulting' a program takes
very little time."*

Measured: consult/compile time and run time for transitive closure in both
modes.  The paper's trade-off should reproduce in shape: compilation costs
real up-front time per rule; run-time gains exist but are modest relative to
end-to-end cost.

The rule-at-a-time closure backend reproduces that shape.  The *push*
backend (``docs/COMPILED.md``) compiles a whole SCC into one function over
interned integers and escapes it: the three-way comparison below measures
interpreted vs closure vs push on the fixpoint itself (evaluators driven
directly, so answer streaming — identical across backends — doesn't dilute
the ratio) and records the numbers in ``BENCH_push.json``.
"""

import time

import pytest

from repro import Session
from emit import emit
from workloads import (
    chain_edges,
    edge_facts,
    report,
    weighted_edge_facts,
    weighted_random_edges,
)

TC = """
module tc.
export path(bf).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""

EDGES = edge_facts(chain_edges(150))


def _measure(flags: str):
    session = Session()
    started = time.perf_counter()
    session.consult_string(EDGES + TC.format(flags=flags))
    # force compilation of the query form (part of 'consult' cost here)
    session.modules.compiled_form("tc", "path", "bf")
    instance = session.modules.instance_for("tc", "path", "bf")
    consult_seconds = time.perf_counter() - started

    codegen = getattr(instance, "compiler", None)
    started = time.perf_counter()
    answers = len(session.query("path(0, Y)").all())
    run_seconds = time.perf_counter() - started
    return consult_seconds, run_seconds, answers, codegen


class TestE12CompiledMode:
    def test_consult_vs_run_tradeoff(self):
        interp_consult, interp_run, interp_answers, _ = _measure("")
        compiled_consult, compiled_run, compiled_answers, codegen = _measure(
            "@compiled."
        )
        assert interp_answers == compiled_answers == 150
        assert codegen is not None and codegen.stats.rules_compiled > 0
        rows = [
            (
                "interpreted",
                f"{interp_consult * 1000:.1f}",
                f"{interp_run * 1000:.1f}",
            ),
            (
                "compiled",
                f"{compiled_consult * 1000:.1f}",
                f"{compiled_run * 1000:.1f}",
            ),
        ]
        report(
            "E12: consult+compile vs run time (ms), 150-chain bound TC",
            ["mode", "consult+compile", "run"],
            rows,
        )
        print(
            f"   codegen: {codegen.stats.rules_compiled} rules compiled, "
            f"{codegen.stats.rules_interpreted} fell back, "
            f"{codegen.stats.generated_lines} generated lines"
        )
        # the paper's shape: compilation adds consult-time cost...
        assert compiled_consult > interp_consult
        # ...while the run-time gain is real but bounded (not order-of-
        # magnitude for rule-at-a-time Datalog)
        assert compiled_run < interp_run
        assert compiled_run > interp_run / 20

    def test_fallback_rules_keep_compiled_module_correct(self):
        """A module mixing compilable and non-compilable rules answers
        identically in both modes (per-rule fallback)."""
        program = """
        item(1). item(2). item(3).

        module m.
        export wrapped(f).
        {flags}
        wrapped(W) :- item(X), W = f(X).
        end_module.
        """
        plain, compiled = (
            sorted(
                str(a.term("W"))
                for a in _session(program, flags).query("wrapped(W)")
            )
            for flags in ("", "@compiled.")
        )
        assert plain == compiled

    def test_interpreted_run_speed(self, benchmark):
        benchmark.pedantic(lambda: _measure(""), rounds=3, iterations=1)

    def test_compiled_run_speed(self, benchmark):
        benchmark.pedantic(lambda: _measure("@compiled."), rounds=3, iterations=1)


def _session(template: str, flags: str) -> Session:
    session = Session()
    session.consult_string(template.format(flags=flags))
    return session


# ---------------------------------------------------------------------------
# three-way: interpreted vs closure vs push on the fixpoint itself
# ---------------------------------------------------------------------------

FULL_TC = """
module tc2.
export path(ff).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""

# bench_e1's Figure-3 shortest path uses aggregate selections and cons
# lists, which are outside the push-compilable class (docs/COMPILED.md);
# its compilable stand-in is the cost-bounded weighted-path core that
# dominates that benchmark's fixpoint.
BOUNDED_WPATH = """
module wp.
export wpath(fff).
{flags}
wpath(X, Y, C) :- edge(X, Y, C).
wpath(X, Y, C) :- wpath(X, Z, C1), edge(Z, Y, EC), C = C1 + EC, C < 40.
end_module.
"""

_BACKEND_FLAGS = {
    "interpreted": "",
    "closure": "@compiled.",
    "push": "@compiled(push).",
}


def _fixpoint_time(facts, template, module, pred, arity, backend, repeats=3):
    """Best-of-N wall time of running the materialized instance's
    evaluators to completion — the component the backends actually differ
    in.  Answer streaming (identical across backends) is excluded so the
    ratio measures the fixpoint, not the API."""
    best = None
    answers = 0
    for _ in range(repeats):
        session = _session(facts + template, _BACKEND_FLAGS[backend])
        instance = session.modules.instance_for(module, pred, "f" * arity)
        started = time.perf_counter()
        for evaluator in instance.evaluators:
            evaluator.run_to_completion()
        elapsed = time.perf_counter() - started
        answers = len(instance.scope.local[(pred, arity)])
        best = elapsed if best is None else min(best, elapsed)
    return best, answers


class TestPushThreeWay:
    """The push backend's headline numbers (ISSUE 9 acceptance criteria):
    >= 5x over interpreted on the E2 chain closure and on the E1 stand-in,
    and at least matching the closure backend."""

    def test_push_speedup_and_emit(self):
        workloads = {
            "e2_chain_tc": (
                edge_facts(chain_edges(150)),
                FULL_TC,
                ("tc2", "path", 2),
            ),
            "e1_bounded_wpath": (
                weighted_edge_facts(weighted_random_edges(60, 240)),
                BOUNDED_WPATH,
                ("wp", "wpath", 3),
            ),
        }
        counters = {}
        rows = []
        for name, (facts, template, (module, pred, arity)) in workloads.items():
            times = {}
            answer_counts = set()
            for backend in _BACKEND_FLAGS:
                elapsed, answers = _fixpoint_time(
                    facts, template, module, pred, arity, backend
                )
                times[backend] = elapsed
                answer_counts.add(answers)
            assert len(answer_counts) == 1, (
                f"{name}: backends disagree on answer count {answer_counts}"
            )
            counters[name] = {
                "facts": answer_counts.pop(),
                **{
                    f"{backend}_seconds": elapsed
                    for backend, elapsed in times.items()
                },
                "speedup_vs_interpreted": times["interpreted"] / times["push"],
                "speedup_vs_closure": times["closure"] / times["push"],
            }
            rows.append(
                (
                    name,
                    f"{times['interpreted'] * 1000:.1f}",
                    f"{times['closure'] * 1000:.1f}",
                    f"{times['push'] * 1000:.1f}",
                    f"{times['interpreted'] / times['push']:.1f}x",
                )
            )
            # acceptance criteria: push is >= 5x interpreted and at least
            # matches the closure backend on both workloads
            assert times["push"] * 5 <= times["interpreted"], counters[name]
            assert times["push"] <= times["closure"], counters[name]
        report(
            "E12+: fixpoint time (ms), interpreted vs closure vs push",
            ["workload", "interpreted", "closure", "push", "push speedup"],
            rows,
        )
        path = emit(
            "push",
            workload={
                "e2_chain_tc": {"graph": "chain", "length": 150},
                "e1_bounded_wpath": {
                    "graph": "weighted_random",
                    "nodes": 60,
                    "edges": 240,
                    "cost_bound": 40,
                },
            },
            wall_time_seconds=counters["e2_chain_tc"]["push_seconds"],
            counters=counters,
        )
        assert path.endswith("BENCH_push.json")

    def test_push_answers_match_closure_through_query_api(self):
        facts = edge_facts(chain_edges(60))
        answer_sets = {
            backend: sorted(
                set(
                    _session(facts + FULL_TC, flags)
                    .query("path(X, Y)")
                    .tuples()
                )
            )
            for backend, flags in _BACKEND_FLAGS.items()
        }
        assert answer_sets["push"] == answer_sets["interpreted"]
        assert answer_sets["closure"] == answer_sets["interpreted"]
        assert len(answer_sets["push"]) == 60 * 61 // 2

    def test_push_run_speed(self, benchmark):
        facts = edge_facts(chain_edges(150))
        benchmark.pedantic(
            lambda: _fixpoint_time(
                facts, FULL_TC, "tc2", "path", 2, "push", repeats=1
            ),
            rounds=3,
            iterations=1,
        )
