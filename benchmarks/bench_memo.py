"""Memo — cross-query answer memoization (:mod:`repro.eval.memo`).

Claim under test: retaining fixpoint answers across queries turns repeated
evaluation into a lookup (a ≥5x throughput win on a repeated-query
workload), while incremental invalidation keeps post-update answers
*correct* — inserts refresh entries delta-semi-naively and deletes run
DRed over-delete/re-derive, so the cache never trades speed for staleness.

Emits ``BENCH_memo.json`` with both workloads' timings and the cache's own
hit/refresh counters.
"""

from emit import emit, timed
from workloads import TC_RIGHT, edge_facts, random_edges, report

from repro import Session

PROGRAM = TC_RIGHT.format(flags="")
# a dense random graph: many alternative derivations per distinct answer,
# so evaluation work dwarfs the per-answer cost of draining a cursor (the
# part of a query the cache cannot remove)
NODES = 40
EDGES = 160
REPEATS = 20
UPDATE_ROUNDS = 12

QUERIES = ["path(X, Y)", "path(0, Y)", "path(1, Y)"]


def _session(memo: bool) -> Session:
    session = Session(memo=True) if memo else Session()
    session.consult_string(
        edge_facts(random_edges(NODES, EDGES, seed=7)) + "\n" + PROGRAM
    )
    return session


def _repeated_queries(session: Session) -> int:
    answers = 0
    for _ in range(REPEATS):
        for query in QUERIES:
            answers += len(session.query(query).tuples())
    return answers


def _update_loop(session: Session) -> list:
    """Interleave inserts/deletes with queries; return the answer trail."""
    trail = []
    for round_no in range(UPDATE_ROUNDS):
        extra = NODES + 1 + round_no
        session.insert("edge", extra, extra + 1)
        trail.append(sorted(session.query(f"path({NODES - 1}, Y)").tuples()))
        if round_no % 3 == 2:
            session.delete("edge", extra, extra + 1)
            trail.append(sorted(session.query("path(0, Y)").tuples()))
    return trail


class TestMemoBench:
    def test_repeated_query_speedup(self):
        memo_session = _session(memo=True)
        cold_session = _session(memo=False)

        with timed() as t_memo:
            memo_answers = _repeated_queries(memo_session)
        with timed() as t_cold:
            cold_answers = _repeated_queries(cold_session)

        assert memo_answers == cold_answers  # identical result sets
        speedup = t_cold.seconds / max(t_memo.seconds, 1e-9)
        memo_stats = memo_session.memo.snapshot()

        with timed() as t_update_memo:
            memo_trail = _update_loop(memo_session)
        with timed() as t_update_cold:
            cold_trail = _update_loop(cold_session)
        assert memo_trail == cold_trail  # post-update answers stay correct

        report(
            f"Memo: {REPEATS}x{len(QUERIES)} repeated TC queries "
            f"(random graph, {NODES} nodes / {EDGES} edges)",
            ["configuration", "repeated (s)", "update loop (s)"],
            [
                ("memo on", round(t_memo.seconds, 4),
                 round(t_update_memo.seconds, 4)),
                ("memo off", round(t_cold.seconds, 4),
                 round(t_update_cold.seconds, 4)),
                ("speedup", round(speedup, 1), "-"),
            ],
        )
        emit(
            "memo",
            workload={
                "graph": "random",
                "nodes": NODES,
                "edges": EDGES,
                "repeats": REPEATS,
                "queries": QUERIES,
                "update_rounds": UPDATE_ROUNDS,
            },
            wall_time_seconds=t_memo.seconds + t_cold.seconds,
            counters={
                "repeated_query_seconds_memo_on": t_memo.seconds,
                "repeated_query_seconds_memo_off": t_cold.seconds,
                "repeated_query_speedup": speedup,
                "update_loop_seconds_memo_on": t_update_memo.seconds,
                "update_loop_seconds_memo_off": t_update_cold.seconds,
                "memo": memo_stats,
            },
        )
        # the acceptance bar: repeated queries at least 5x faster with the
        # cache, answers bit-identical throughout
        assert speedup >= 5.0, f"memo speedup only {speedup:.1f}x"

    def test_repeated_query_memo_speed(self, benchmark):
        benchmark.pedantic(
            lambda: _repeated_queries(_session(memo=True)),
            rounds=3,
            iterations=1,
        )

    def test_repeated_query_cold_speed(self, benchmark):
        benchmark.pedantic(
            lambda: _repeated_queries(_session(memo=False)),
            rounds=3,
            iterations=1,
        )
