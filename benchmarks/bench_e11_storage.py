"""E11 — Sections 2, 3.2: persistent relations and the buffer pool.

Paper claims: *"a 'get-next-tuple' request on a persistent relation results
in a page-level I/O request by the buffer manager"*; data *"is paged into
EXODUS buffers on demand"* and *"can be accessed purely out of pages in the
EXODUS buffer pool"* without bulk-loading into memory structures.

Measured:

* buffer-capacity sweep on repeated scans: hit rate climbs from ~0 (pool
  smaller than the relation) to ~1 (relation fits), server page reads fall
  accordingly;
* B-tree point lookups touch a handful of pages regardless of heap size;
  heap scans touch them all;
* declarative rules evaluate directly over a persistent relation.
"""

import pytest

from repro import Session
from repro.relations import Tuple
from repro.storage import BufferPool, PersistentRelation, StorageServer
from repro.terms import Int, Var
from emit import emit, timed
from workloads import report

ROWS = 3000


def _build(tmp_path, capacity):
    server = StorageServer(str(tmp_path))
    pool = BufferPool(server, capacity=capacity)
    relation = PersistentRelation("data", 2, pool)
    relation.create_index([0])
    for i in range(ROWS):
        relation.insert(Tuple((Int(i), Int(i * i % 9973))))
    pool.flush_all()
    return server, pool, relation


class TestE11Storage:
    def test_hit_rate_vs_buffer_capacity(self, tmp_path):
        heap_pages = None
        rows = []
        for capacity in (4, 16, 64, 256):
            directory = tmp_path / f"cap{capacity}"
            server, pool, relation = _build(directory, capacity)
            heap_pages = server.num_pages("data.heap")
            pool.drop_all()
            pool.stats.reset()
            server.stats.reset()
            for _ in range(3):  # repeated full scans
                assert sum(1 for _ in relation.scan()) == ROWS
            rows.append(
                (
                    capacity,
                    heap_pages,
                    f"{pool.stats.hit_rate:.0%}",
                    server.stats.page_reads,
                )
            )
            server.close()
        report(
            f"E11: 3 full scans of a {ROWS}-row persistent relation "
            f"({heap_pages} heap pages)",
            ["buffer frames", "heap pages", "hit rate", "server page reads"],
            rows,
        )
        # once the relation fits in the pool, rescans are free
        assert rows[-1][3] <= heap_pages + 2
        # a pool smaller than the relation pays per scan
        assert rows[0][3] >= 2 * heap_pages

    def test_indexed_lookup_page_costs(self, tmp_path):
        server, pool, relation = _build(tmp_path / "idx", 8)
        pool.drop_all()
        server.stats.reset()
        hits = list(relation.scan([Int(1234), Var("Y")], None))
        indexed_reads = server.stats.page_reads
        assert len(hits) == 1

        pool.drop_all()
        server.stats.reset()
        hits = [t for t in relation.scan() if t[0] == Int(1234)]
        scan_reads = server.stats.page_reads
        report(
            "E11: pages read for one point lookup",
            ["access path", "server page reads"],
            [("B-tree index", indexed_reads), ("heap scan", scan_reads)],
        )
        assert indexed_reads < scan_reads / 3
        server.close()

    def test_rules_over_persistent_relation(self, tmp_path):
        session = Session(data_directory=str(tmp_path / "rules"))
        relation = session.persistent_relation("edge", 2)
        for i in range(60):
            relation.insert_values(i, i + 1)
        session.consult_string(
            """
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        assert len(session.query("path(30, Y)").all()) == 30
        session.close()

    def test_emit_bench_json(self, tmp_path):
        """Persist storage counters as BENCH_e11_storage.json for the CI
        trend job: a profiled query over an indexed persistent relation,
        with the full repro.obs storage section as counters."""
        rows = 500
        session = Session(data_directory=str(tmp_path / "emit"), buffer_capacity=16)
        relation = session.persistent_relation("edge", 2)
        relation.create_index([0])
        for i in range(rows):
            relation.insert_values(i, i + 1)
        session.consult_string(
            """
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        session.storage_pool.drop_all()
        with timed() as t, session.profile(trace=False) as prof:
            answers = len(session.query("path(450, Y)").all())
        session.close()
        profile = prof.profile
        path = emit(
            "e11_storage",
            workload={
                "relation_rows": rows,
                "query": "path(450, Y)",
                "answers": answers,
            },
            wall_time_seconds=t.seconds,
            counters=dict(
                profile.storage,
                buffer_hit_rate=profile.buffer_hit_rate,
                eval=profile.eval,
            ),
        )
        assert answers == rows - 451 + 1
        assert path.endswith("BENCH_e11_storage.json")

    def test_scan_speed_warm(self, tmp_path, benchmark):
        server, pool, relation = _build(tmp_path / "warm", 256)

        def scan():
            return sum(1 for _ in relation.scan())

        benchmark.pedantic(scan, rounds=3, iterations=1)
        server.close()

    def test_scan_speed_cold(self, tmp_path, benchmark):
        server, pool, relation = _build(tmp_path / "cold", 4)

        def scan():
            pool.drop_all()
            return sum(1 for _ in relation.scan())

        benchmark.pedantic(scan, rounds=3, iterations=1)
        server.close()
