"""E13 — Section 4.2: multiset semantics and the cost of duplicate checks.

Paper claims: *"The optimizer also decides on the subsumption checks to be
carried out on each relation.  The default is to do subsumption checks on
all relations.  A user can ask that a relation be treated as a multiset,
with as many copies of a tuple as there are derivations for it"*; and the
footnote: *"On non-recursive queries, this semantics is consistent with SQL
when duplicate checks are omitted."*

Measured on a projection-with-many-duplicates workload (a join producing K
derivations per output tuple):

* multiset answer counts equal the SQL (duplicate-preserving) counts;
* set-semantics insertion pays the subsumption/duplicate checks, multiset
  skips them (rejected-duplicate counters vs retained copies);
* relative timing of the two policies.
"""

import pytest

from repro import Session
from workloads import report, session_with


def _program(flags: str, fanout: int) -> str:
    # 40 buyers, `fanout` distinct purchases each: projecting the product
    # away leaves `fanout` derivations per buyer(C) answer
    pairs = " ".join(
        f"sale(c{i % 40}, p{i})." for i in range(40 * fanout)
    )
    return (
        pairs
        + f"""
        module m.
        export buyer(f).
        {flags}
        buyer(C) :- sale(C, P).
        end_module.
        """
    )


class TestE13Multiset:
    def test_answer_counts_match_sql_semantics(self):
        fanout = 5
        set_session = session_with(_program("", fanout))
        multiset_session = session_with(_program("@multiset buyer.", fanout))
        set_answers = len(set_session.query("buyer(C)").all())
        multiset_answers = len(multiset_session.query("buyer(C)").all())
        report(
            "E13: projection answers under set vs multiset semantics",
            ["policy", "answers", "duplicates rejected"],
            [
                ("set (default)", set_answers, set_session.stats.duplicates),
                ("multiset", multiset_answers, multiset_session.stats.duplicates),
            ],
        )
        assert set_answers == 40  # distinct buyers
        # SQL-without-DISTINCT count: one copy per derivation
        assert multiset_answers == 40 * fanout
        assert set_session.stats.duplicates >= 40 * (fanout - 1)
        assert multiset_session.stats.duplicates == 0

    def test_magic_predicates_keep_checks_under_multiset(self):
        """Section 4.2: multiset semantics still carries out duplicate
        checks on the magic predicates — otherwise evaluation of recursive
        programs would not terminate."""
        session = session_with(
            "edge(1, 2). edge(2, 3). edge(3, 1).",
            """
            module tc.
            export path(bf).
            @multiset path.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """,
        )
        # termination on a cycle is itself the assertion here
        answers = session.query("path(1, Y)").all()
        assert {a["Y"] for a in answers} == {1, 2, 3}

    def test_set_insert_speed(self, benchmark):
        program = _program("", 8)
        benchmark.pedantic(
            lambda: session_with(program).query("buyer(C)").all(),
            rounds=3,
            iterations=1,
        )

    def test_multiset_insert_speed(self, benchmark):
        program = _program("@multiset buyer.", 8)
        benchmark.pedantic(
            lambda: session_with(program).query("buyer(C)").all(),
            rounds=3,
            iterations=1,
        )
