"""Machine-readable benchmark results.

Every ``bench_e*.py`` file prints human tables (``workloads.report``); the
CI trend job needs the same numbers as data.  :func:`emit` writes one
``BENCH_<name>.json`` per benchmark into the repository root (override with
``REPRO_BENCH_DIR``), carrying the workload description, the wall time, and
whatever counters the benchmark collected — evaluation statistics, profiler
storage counters, or both.

The schema is deliberately flat and stable::

    {
      "name": "e2_seminaive",
      "workload": {"graph": "chain", "length": 32},
      "wall_time_seconds": 0.0123,
      "counters": {"inferences": 1234, ...}
    }

Consumers must tolerate extra keys inside ``workload`` and ``counters`` but
can rely on the four top-level keys always being present.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

#: repository root: the default landing spot for BENCH_*.json artifacts
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_output_dir() -> str:
    """Where BENCH_*.json files go: ``REPRO_BENCH_DIR`` or the repo root."""
    return os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT)


def emit(
    name: str,
    workload: Dict[str, Any],
    wall_time_seconds: float,
    counters: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``counters`` values must already be JSON-serializable (ints, floats,
    strings, or nested dicts of those) — pass ``ctx.stats.snapshot()`` or a
    :class:`repro.obs.QueryProfile`'s ``storage`` dict, not live objects.
    """
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"bench name must be a bare file stem, got {name!r}")
    payload = {
        "name": name,
        "workload": dict(workload),
        "wall_time_seconds": wall_time_seconds,
        "counters": dict(counters) if counters else {},
    }
    # round-trip before touching the file so a bad counter can't leave a
    # truncated artifact for CI to choke on
    blob = json.dumps(payload, indent=2, sort_keys=True)
    directory = bench_output_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        handle.write(blob + "\n")
    return path


class timed:
    """Context manager measuring one wall-clock interval::

        with timed() as t:
            run_workload()
        emit("e2_seminaive", workload, t.seconds, counters)
    """

    def __enter__(self) -> "timed":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
