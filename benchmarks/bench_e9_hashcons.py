"""E9 — Section 3.1: hash-consing makes unification of large terms cheap.

Paper claim: *"An important feature of the CORAL implementation of data
types is the support for unique identifiers to make unification of large
terms very efficient.  Such support is critical for efficient declarative
program evaluation in the presence of large terms."*

Measured:

* unifying two interned N-element ground lists is O(1) (identifier compare),
  independent of N; the structural path (forced by a variable at the end of
  one list) walks all N cells;
* duplicate checking of big-term tuples through ground keys is likewise
  size-independent after interning.
"""

import time

import pytest

from repro.relations import HashRelation, Tuple
from repro.terms import (
    BindEnv,
    Functor,
    Int,
    Trail,
    Var,
    hc_id,
    make_list,
    unify,
)
from workloads import report


def _ground_list(n, offset=0):
    return make_list([Int(i + offset) for i in range(n)])


def _unify_once(left, right) -> bool:
    env = BindEnv()
    trail = Trail()
    try:
        return unify(left, env, right, env, trail)
    finally:
        trail.undo_to(0)


def _time_unifications(left, right, repetitions=400) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        _unify_once(left, right)
    return time.perf_counter() - start


class TestE9HashConsing:
    def test_interned_unification_size_independent(self):
        rows = []
        for n in (10, 100, 1000):
            a, b = _ground_list(n), _ground_list(n)
            hc_id(a), hc_id(b)  # intern once (the lazy assignment)
            ground_time = _time_unifications(a, b)

            # force the structural path: a variable tail defeats the
            # identifier fast path, so unification walks all N cells
            var_tail = make_list([Int(i) for i in range(n - 1)], tail=Var("T"))
            structural_time = _time_unifications(var_tail, _ground_list(n))
            rows.append(
                (
                    n,
                    round(ground_time * 1000, 2),
                    round(structural_time * 1000, 2),
                    round(structural_time / ground_time, 1),
                )
            )
        report(
            "E9: 400 unifications of N-element lists (ms)",
            ["N", "hash-consed", "structural", "ratio"],
            rows,
        )
        hc_times = [row[1] for row in rows]
        # hash-consed time flat-ish across 100x size growth
        assert hc_times[-1] < hc_times[0] * 6
        # structural path grows with N and loses badly at the top end
        assert rows[-1][3] > 10

    def test_identifier_equivalence(self):
        """id(a) == id(b) iff a == b — spot-check on big terms."""
        a, b = _ground_list(500), _ground_list(500)
        c = _ground_list(500, offset=1)
        assert hc_id(a) == hc_id(b)
        assert hc_id(a) != hc_id(c)

    def test_duplicate_check_on_big_terms(self):
        """Inserting the same 1000-element list twice must cost two ground-
        key computations, not deep comparisons against every resident."""
        relation = HashRelation("big", 1)
        for offset in range(50):
            relation.insert(Tuple((_ground_list(200, offset),)))
        assert not relation.insert(Tuple((_ground_list(200, 7),)))
        assert len(relation) == 50

    def test_interned_unification_speed(self, benchmark):
        a, b = _ground_list(1000), _ground_list(1000)
        hc_id(a), hc_id(b)
        benchmark(lambda: _unify_once(a, b))

    def test_structural_unification_speed(self, benchmark):
        left = make_list([Int(i) for i in range(999)], tail=Var("T"))
        right = _ground_list(1000)
        benchmark(lambda: _unify_once(left, right))
