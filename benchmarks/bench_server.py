"""Server — concurrent client-server query throughput over the wire.

The client-server layer (repro.server / repro.client) replaces the paper's
EXODUS client-server deployment (Section 2) with a real TCP boundary.
Measured, all into one ``BENCH_server.json``:

- request throughput and latency percentiles for 4 concurrent clients
  issuing bound transitive-closure queries against one shared server,
  each answer set streamed through a server-side cursor;
- a *saturation* run: 64 concurrent clients against the same server,
  the point where the GIL and the accept loop are the bottleneck;
- a *sharded* run: the same multi-module workload against a
  ``--workers 4`` router fleet (repro.sharding) and against a single
  server, reported side by side as ``sharded_speedup``.

The speedup is measured honestly on whatever hardware runs the bench and
the workload dict records ``cpus`` — on a single-CPU container four
worker *processes* still share one core, so the ratio there measures
router overhead, not parallelism.  On multi-core hardware the workers
evaluate genuinely in parallel (separate interpreters, no shared GIL).
"""

import os
import statistics
import threading
import time

from repro import Session
from repro.client import RemoteSession
from repro.obs.metrics import Histogram
from repro.server import CoralServer
from repro.sharding import ShardRouter, WorkerPool

from emit import emit, timed
from workloads import chain_edges, edge_facts, report

CLIENTS = 4
QUERIES_PER_CLIENT = 50
CHAIN = 24

SATURATION_CLIENTS = 64
SATURATION_QUERIES = 6

SHARD_WORKERS = 4
SHARD_CLIENTS = 4
SHARD_QUERIES = 25

TC_MODULE = """
    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _server_session():
    session = Session()
    session.consult_string(edge_facts(chain_edges(CHAIN)) + TC_MODULE)
    return session


def _shard_module(index):
    """One self-contained TC module per shard: disjoint relations, so
    each pins to its own worker and evaluates independently."""
    edges = " ".join(
        f"edge{index}({i}, {i + 1})." for i in range(1, CHAIN)
    )
    return f"""
        {edges}

        module tc{index}.
        export path{index}(bf, ff).
        path{index}(X, Y) :- edge{index}(X, Y).
        path{index}(X, Y) :- edge{index}(X, Z), path{index}(Z, Y).
        end_module.
    """


def _shard_map():
    pins = {}
    for index in range(SHARD_WORKERS):
        for name in (f"tc{index}", f"edge{index}", f"path{index}"):
            pins[name] = index
    return pins


# fine-grained sub-second boundaries: per-request latencies here are a few
# hundred microseconds to a few milliseconds, and the estimate interpolates
# within a bucket, so resolution sets accuracy
LATENCY_BUCKETS = tuple(0.0001 * (2 ** i) for i in range(14))


def _default_query(index):
    start_node = 1 + (index % 4)
    return f"path({start_node}, Y)", CHAIN - start_node


def _sharded_query(index):
    shard = index % SHARD_WORKERS
    return f"path{shard}(1, Y)", CHAIN - 1


def _run_clients(address, n_clients, queries_per_client, make_query=None,
                 session_kw=None):
    """Each client drains one bound TC query per round; returns the
    per-request wall-clock latencies (query open + full cursor drain)."""
    make_query = make_query or _default_query
    session_kw = session_kw or {}
    latencies = [[] for _ in range(n_clients)]
    errors = []

    def worker(index):
        query, expected = make_query(index)
        try:
            with RemoteSession(*address, batch_size=16, **session_kw) as db:
                for _ in range(queries_per_client):
                    began = time.perf_counter()
                    answers = db.query(query).all()
                    latencies[index].append(time.perf_counter() - began)
                    if len(answers) != expected:
                        errors.append((index, len(answers), expected))
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append((index, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, errors[:5]
    return [sample for per_client in latencies for sample in per_client]


def _percentiles(latencies):
    histogram = Histogram(
        "bench.request.seconds", "per-request drain latency",
        boundaries=LATENCY_BUCKETS,
    )
    for sample in latencies:
        histogram.observe(sample)
    return histogram.percentile(0.50), histogram.percentile(0.99)


def _sharded_run(address):
    """Consult one module per shard through ``address``, warm each, then
    drain SHARD_CLIENTS clients; returns requests/sec."""
    with RemoteSession(*address) as db:
        for index in range(SHARD_WORKERS):
            db.consult_string(_shard_module(index))
        for index in range(SHARD_WORKERS):
            db.query(f"path{index}(1, Y)").all()  # warm every shard
    with timed() as t:
        _run_clients(
            address, SHARD_CLIENTS, SHARD_QUERIES, make_query=_sharded_query
        )
    return (SHARD_CLIENTS * SHARD_QUERIES) / t.seconds


class TestServerThroughput:
    def test_emit_bench_json(self):
        # -- 4 clients against one server (the headline number) ----------
        session = _server_session()
        with CoralServer(session, port=0) as server:
            # warm the evaluation caches so the numbers measure the wire +
            # cursor machinery, not first-query materialization
            with RemoteSession(*server.address) as db:
                db.query("path(1, Y)").all()
            with timed() as t:
                latencies = _run_clients(
                    server.address, CLIENTS, QUERIES_PER_CLIENT
                )
            # -- saturation: 64 clients against the same server ----------
            with timed() as t_sat:
                sat_latencies = _run_clients(
                    server.address, SATURATION_CLIENTS, SATURATION_QUERIES
                )
            stats = server.stats()

        requests = CLIENTS * QUERIES_PER_CLIENT
        throughput = requests / t.seconds
        p50, p99 = _percentiles(latencies)
        sat_requests = SATURATION_CLIENTS * SATURATION_QUERIES
        sat_throughput = sat_requests / t_sat.seconds
        sat_p50, sat_p99 = _percentiles(sat_latencies)

        # -- the same multi-module workload, single server vs sharded ----
        single = Session()
        with CoralServer(single, port=0) as baseline_server:
            sharded_baseline = _sharded_run(baseline_server.address)
        single.close()

        pool = WorkerPool(SHARD_WORKERS, heartbeat=1.0)
        pool.start()
        try:
            with ShardRouter(pool, port=0, shard_map=_shard_map()) as router:
                sharded = _sharded_run(router.address)
        finally:
            pool.stop()

        report(
            "Server: concurrent remote TC queries (drain per request)",
            ["mode", "clients", "req/s", "p50 ms", "p99 ms"],
            [
                ("baseline", CLIENTS, round(throughput, 1),
                 round(p50 * 1e3, 3), round(p99 * 1e3, 3)),
                ("saturation", SATURATION_CLIENTS, round(sat_throughput, 1),
                 round(sat_p50 * 1e3, 3), round(sat_p99 * 1e3, 3)),
                (f"sharded x{SHARD_WORKERS}", SHARD_CLIENTS,
                 round(sharded, 1), "-", "-"),
                ("sharded-baseline", SHARD_CLIENTS,
                 round(sharded_baseline, 1), "-", "-"),
            ],
        )
        path = emit(
            "server",
            workload={
                "graph": "chain",
                "length": CHAIN,
                "clients": CLIENTS,
                "queries_per_client": QUERIES_PER_CLIENT,
                "saturation_clients": SATURATION_CLIENTS,
                "saturation_queries_per_client": SATURATION_QUERIES,
                "shard_workers": SHARD_WORKERS,
                "shard_clients": SHARD_CLIENTS,
                "shard_queries_per_client": SHARD_QUERIES,
                "cpus": os.cpu_count(),
            },
            wall_time_seconds=t.seconds,
            counters={
                "requests_per_second": throughput,
                "latency_p50_seconds": p50,
                "latency_p99_seconds": p99,
                "latency_mean_seconds": statistics.fmean(latencies),
                "saturation_requests_per_second": sat_throughput,
                "saturation_latency_p50_seconds": sat_p50,
                "saturation_latency_p99_seconds": sat_p99,
                "sharded_requests_per_second": sharded,
                "sharded_baseline_requests_per_second": sharded_baseline,
                "sharded_speedup": sharded / sharded_baseline,
                "wire_requests_total": stats["requests"],
                "cursors_opened": stats["cursors"]["opened"],
                "answers_sent": int(
                    sum(
                        stats["metrics"]
                        .get("server.answers.sent", {})
                        .get("values", {})
                        .values()
                    )
                ),
            },
        )
        assert path.endswith("BENCH_server.json")

    def test_emit_tracing_overhead_json(self, tmp_path):
        """The distributed-tracing plane, priced: the same 4-client TC
        workload with tracing off (``--trace-sample 0``, the inert path
        the 1.15x observability guard covers) and with every request
        sampled end to end (client mints, server records, spans drained
        to a ``--span-dir`` JSONL)."""
        runs = {}
        for mode, server_kw, client_kw in (
            ("off", {}, {}),
            (
                "sampled",
                {
                    "trace_sample": 1.0,
                    "span_dir": str(tmp_path),
                    "process_name": "server",
                },
                {"trace_sample": 1.0, "process_name": "client"},
            ),
        ):
            session = _server_session()
            with CoralServer(session, port=0, **server_kw) as server:
                with RemoteSession(*server.address) as db:
                    db.query("path(1, Y)").all()  # warm
                with timed() as t:
                    latencies = _run_clients(
                        server.address, CLIENTS, QUERIES_PER_CLIENT,
                        session_kw=client_kw,
                    )
                spans = server.spans.recorded
            session.close()
            p50, p99 = _percentiles(latencies)
            runs[mode] = {
                "rps": (CLIENTS * QUERIES_PER_CLIENT) / t.seconds,
                "p50": p50,
                "p99": p99,
                "seconds": t.seconds,
                "spans": spans,
            }

        assert runs["off"]["spans"] == 0
        assert runs["sampled"]["spans"] > 0
        overhead = runs["off"]["rps"] / runs["sampled"]["rps"]

        report(
            "Server: distributed tracing overhead (4 clients, TC drain)",
            ["mode", "req/s", "p50 ms", "p99 ms", "server spans"],
            [
                (mode, round(run["rps"], 1), round(run["p50"] * 1e3, 3),
                 round(run["p99"] * 1e3, 3), run["spans"])
                for mode, run in runs.items()
            ],
        )
        path = emit(
            "server_tracing",
            workload={
                "graph": "chain",
                "length": CHAIN,
                "clients": CLIENTS,
                "queries_per_client": QUERIES_PER_CLIENT,
                "cpus": os.cpu_count(),
            },
            wall_time_seconds=runs["sampled"]["seconds"],
            counters={
                "untraced_requests_per_second": runs["off"]["rps"],
                "sampled_requests_per_second": runs["sampled"]["rps"],
                "sampled_overhead_ratio": overhead,
                "untraced_latency_p99_seconds": runs["off"]["p99"],
                "sampled_latency_p99_seconds": runs["sampled"]["p99"],
                "server_spans_recorded": runs["sampled"]["spans"],
            },
        )
        assert path.endswith("BENCH_server_tracing.json")

    def test_single_client_roundtrip_speed(self, benchmark):
        session = _server_session()
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address) as db:
                db.query("path(1, Y)").all()  # warm
                benchmark.pedantic(
                    lambda: db.query("path(1, Y)").all(),
                    rounds=5,
                    iterations=1,
                )
