"""Server — concurrent client-server query throughput over the wire.

The client-server layer (repro.server / repro.client) replaces the paper's
EXODUS client-server deployment (Section 2) with a real TCP boundary.
Measured: request throughput and latency percentiles for 4 concurrent
clients issuing bound transitive-closure queries against one shared server,
each answer set streamed through a server-side cursor.
"""

import statistics
import threading
import time

from repro import Session
from repro.client import RemoteSession
from repro.obs.metrics import Histogram
from repro.server import CoralServer

from emit import emit, timed
from workloads import chain_edges, edge_facts, report

CLIENTS = 4
QUERIES_PER_CLIENT = 50
CHAIN = 24

TC_MODULE = """
    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _server_session():
    session = Session()
    session.consult_string(edge_facts(chain_edges(CHAIN)) + TC_MODULE)
    return session


# fine-grained sub-second boundaries: per-request latencies here are a few
# hundred microseconds to a few milliseconds, and the estimate interpolates
# within a bucket, so resolution sets accuracy
LATENCY_BUCKETS = tuple(0.0001 * (2 ** i) for i in range(14))


def _run_clients(address, n_clients, queries_per_client):
    """Each client drains one bound TC query per round; returns the
    per-request wall-clock latencies (query open + full cursor drain)."""
    latencies = [[] for _ in range(n_clients)]
    errors = []

    def worker(index):
        start_node = 1 + (index % 4)
        expected = CHAIN - start_node
        try:
            with RemoteSession(*address, batch_size=16) as db:
                for _ in range(queries_per_client):
                    began = time.perf_counter()
                    answers = db.query(f"path({start_node}, Y)").all()
                    latencies[index].append(time.perf_counter() - began)
                    if len(answers) != expected:
                        errors.append((index, len(answers), expected))
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append((index, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    return [sample for per_client in latencies for sample in per_client]


class TestServerThroughput:
    def test_emit_bench_json(self):
        session = _server_session()
        with CoralServer(session, port=0) as server:
            # warm the evaluation caches so the numbers measure the wire +
            # cursor machinery, not first-query materialization
            with RemoteSession(*server.address) as db:
                db.query("path(1, Y)").all()
            with timed() as t:
                latencies = _run_clients(
                    server.address, CLIENTS, QUERIES_PER_CLIENT
                )
            stats = server.stats()
        requests = CLIENTS * QUERIES_PER_CLIENT
        throughput = requests / t.seconds
        histogram = Histogram(
            "bench.request.seconds", "per-request drain latency",
            boundaries=LATENCY_BUCKETS,
        )
        for sample in latencies:
            histogram.observe(sample)
        p50 = histogram.percentile(0.50)
        p99 = histogram.percentile(0.99)
        report(
            "Server: concurrent remote TC queries (drain per request)",
            ["clients", "requests", "req/s", "p50 ms", "p99 ms"],
            [
                (
                    CLIENTS,
                    requests,
                    round(throughput, 1),
                    round(p50 * 1e3, 3),
                    round(p99 * 1e3, 3),
                )
            ],
        )
        path = emit(
            "server",
            workload={
                "graph": "chain",
                "length": CHAIN,
                "clients": CLIENTS,
                "queries_per_client": QUERIES_PER_CLIENT,
            },
            wall_time_seconds=t.seconds,
            counters={
                "requests_per_second": throughput,
                "latency_p50_seconds": p50,
                "latency_p99_seconds": p99,
                "latency_mean_seconds": statistics.fmean(latencies),
                "wire_requests_total": stats["requests"],
                "cursors_opened": stats["cursors"]["opened"],
                "answers_sent": int(
                    sum(
                        stats["metrics"]
                        .get("server.answers.sent", {})
                        .get("values", {})
                        .values()
                    )
                ),
            },
        )
        assert path.endswith("BENCH_server.json")

    def test_single_client_roundtrip_speed(self, benchmark):
        session = _server_session()
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address) as db:
                db.query("path(1, Y)").all()  # warm
                benchmark.pedantic(
                    lambda: db.query("path(1, Y)").all(),
                    rounds=5,
                    iterations=1,
                )
