"""E5 — Sections 5, 5.2, 5.6: pipelining vs materialization.

Paper claims: *"Pipelining uses facts 'on-the-fly' and does not store them,
at the potential cost of recomputation.  Materialization stores facts and
looks them up to avoid recomputation."*  And for pipelined callees, *"an
answer is returned as soon as it is found, and the computation of the called
module is suspended until another answer is requested."*

Measured on bound-source reachability over a chain:

* first-answer work: pipelining performs O(1) inferences before its first
  answer; materialized evaluation runs at least one fixpoint iteration;
* shared-subgoal workload (a DAG where many paths reuse suffixes):
  pipelining recomputes (inference count blows up), materialization
  memoizes;
* identical answer sets either way (duplicates aside — pipelining returns
  one answer per proof).
"""

import pytest

from workloads import TC_RIGHT, chain_edges, edge_facts, report, session_with

PIPELINED = TC_RIGHT.format(flags="@pipelining.")
MATERIALIZED = TC_RIGHT.format(flags="")


def _diamond_chain(sections: int):
    """A chain of diamonds: 2 paths per section, suffixes shared — the
    recomputation trap for pipelined evaluation."""
    edges = []
    for section in range(sections):
        base = section * 3
        edges += [
            (base, base + 1),
            (base, base + 2),
            (base + 1, base + 3),
            (base + 2, base + 3),
        ]
    return edges


class TestE5PipeliningVsMaterialization:
    def test_first_answer_work(self):
        edges = chain_edges(200)
        rows = []
        for label, program in (("pipelined", PIPELINED), ("materialized", MATERIALIZED)):
            session = session_with(edge_facts(edges), program)
            result = session.query("path(0, Y)")
            first = result.get_next()
            assert first is not None
            rows.append((label, session.stats.inferences))
        report(
            "E5: inferences before the first answer (200-chain, bound source)",
            ["strategy", "inferences to first answer"],
            rows,
        )
        pipelined_work = rows[0][1]
        materialized_work = rows[1][1]
        assert pipelined_work <= 5  # one proof, on demand

    def test_recomputation_on_shared_subgoals(self):
        edges = _diamond_chain(7)  # 2^7 proofs of the farthest node
        rows = []
        counts = {}
        for label, program in (("pipelined", PIPELINED), ("materialized", MATERIALIZED)):
            session = session_with(edge_facts(edges), program)
            answers = [a["Y"] for a in session.query("path(0, Y)")]
            counts[label] = session.stats.inferences
            rows.append((label, len(answers), len(set(answers)), session.stats.inferences))
        report(
            "E5: all answers on a diamond chain (shared suffixes, 128 proofs)",
            ["strategy", "answers returned", "distinct", "inferences"],
            rows,
        )
        # one answer per *proof* for pipelining; per *fact* for materialization
        assert rows[0][1] > rows[0][2]
        assert rows[1][1] == rows[1][2]
        # materialization avoids the exponential recomputation
        assert counts["materialized"] < counts["pipelined"] / 4

    def test_same_distinct_answers(self):
        edges = _diamond_chain(4)
        answer_sets = []
        for program in (PIPELINED, MATERIALIZED):
            session = session_with(edge_facts(edges), program)
            answer_sets.append(
                sorted(set(a["Y"] for a in session.query("path(0, Y)")))
            )
        assert answer_sets[0] == answer_sets[1]

    def test_pipelined_first_answer_speed(self, benchmark):
        edges = edge_facts(chain_edges(200))

        def run():
            session = session_with(edges, PIPELINED)
            return session.query("path(0, Y)").get_next()

        benchmark.pedantic(run, rounds=5, iterations=1)

    def test_materialized_first_answer_speed(self, benchmark):
        edges = edge_facts(chain_edges(200))

        def run():
            session = session_with(edges, MATERIALIZED)
            return session.query("path(0, Y)").get_next()

        benchmark.pedantic(run, rounds=5, iterations=1)
