"""The classic deductive-database benchmark shapes (Bancilhon et al.), as
exercised by the CORAL-era literature: transitive closure and
same-generation over standard data shapes.

These complement E1–E14: they measure the *combinations* — magic on
same-generation (the workload magic sets were invented for), left- vs
right-linear transitive closure under each rewriting, and scaling across
the canonical data generators (chains, cycles, trees, grids).
"""

import pytest

from repro import Session
from workloads import (
    chain_edges,
    cycle_edges,
    grid_edges,
    edge_facts,
    report,
    session_with,
)

SG = """
module sg.
export sg(bf).
sg(X, X) :- person(X).
sg(X, Y) :- par(X, PX), sg(PX, PY), par(Y, PY).
end_module.
"""


def _balanced_tree(depth: int):
    """par(child, parent) facts for a complete binary tree."""
    facts = []
    people = [0]
    node = 0
    frontier = [0]
    for _level in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(2):
                node += 1
                facts.append((node, parent))
                people.append(node)
                next_frontier.append(node)
        frontier = next_frontier
    return facts, people


def _sg_session(depth: int, flags: str = "") -> Session:
    facts, people = _balanced_tree(depth)
    source = (
        " ".join(f"par({c}, {p})." for c, p in facts)
        + " "
        + " ".join(f"person({p})." for p in people)
        + SG.replace("export sg(bf).", f"export sg(bf).\n{flags}")
    )
    session = Session()
    session.consult_string(source)
    return session


class TestSameGeneration:
    def test_magic_beats_bottom_up_on_point_query(self):
        rows = []
        for depth in (4, 6):
            leaf = 2**depth  # some leaf node id
            magic_session = _sg_session(depth)
            magic_answers = len(magic_session.query(f"sg({leaf}, Y)").all())
            plain_session = _sg_session(depth, "@no_rewriting.")
            plain_answers = len(plain_session.query(f"sg({leaf}, Y)").all())
            assert magic_answers == plain_answers
            rows.append(
                (
                    depth,
                    magic_answers,
                    magic_session.stats.facts_inserted,
                    plain_session.stats.facts_inserted,
                )
            )
        report(
            "classic: same-generation point query on a binary tree",
            ["depth", "answers", "magic facts", "bottom-up facts"],
            rows,
        )
        # bottom-up computes the full quadratic-in-level sg relation;
        # magic stays near the query's own generation
        for _d, _a, magic_facts, plain_facts in rows:
            assert magic_facts < plain_facts

    def test_sg_answers_are_the_leaf_generation(self):
        session = _sg_session(4)
        leaf = 2**4
        answers = sorted(a["Y"] for a in session.query(f"sg({leaf}, Y)"))
        # all 16 leaves of a depth-4 tree are in the same generation
        assert len(answers) == 16

    def test_sg_speed(self, benchmark):
        session = _sg_session(6)
        leaf = 2**6
        benchmark.pedantic(
            lambda: session.query(f"sg({leaf + 1}, Y)").all(),
            rounds=3,
            iterations=1,
        )


TC_LEFT = """
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
end_module.
"""
TC_RIGHT = """
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


class TestLinearityVsData:
    @pytest.mark.parametrize(
        "shape,edges",
        [
            ("chain", chain_edges(64)),
            ("cycle", cycle_edges(48)),
            ("grid", grid_edges(7)),
        ],
        ids=["chain", "cycle", "grid"],
    )
    def test_left_and_right_linear_agree(self, shape, edges):
        left = session_with(edge_facts(edges), TC_LEFT)
        right = session_with(edge_facts(edges), TC_RIGHT)
        left_answers = sorted(a["Y"] for a in left.query("path(0, Y)"))
        right_answers = sorted(a["Y"] for a in right.query("path(0, Y)"))
        assert left_answers == right_answers

    def test_linearity_work_comparison(self):
        rows = []
        for shape, edges in (
            ("chain-64", chain_edges(64)),
            ("grid-7", grid_edges(7)),
        ):
            left = session_with(edge_facts(edges), TC_LEFT)
            left.query("path(0, Y)").all()
            right = session_with(edge_facts(edges), TC_RIGHT)
            right.query("path(0, Y)").all()
            rows.append(
                (
                    shape,
                    left.stats.inferences,
                    right.stats.inferences,
                )
            )
        report(
            "classic: bound-source TC, left- vs right-linear (magic default)",
            ["data", "left-linear inferences", "right-linear inferences"],
            rows,
        )
        # left-linear with a bound source needs no subgoal propagation at
        # all (the magic set is the singleton source); right-linear pays
        # for the reachable-subgoal frontier
        for _shape, left_work, right_work in rows:
            assert left_work <= right_work

    def test_left_linear_speed(self, benchmark):
        source = edge_facts(grid_edges(6)) + TC_LEFT
        benchmark.pedantic(
            lambda: session_with(source).query("path(0, Y)").all(),
            rounds=3,
            iterations=1,
        )

    def test_right_linear_speed(self, benchmark):
        source = edge_facts(grid_edges(6)) + TC_RIGHT
        benchmark.pedantic(
            lambda: session_with(source).query("path(0, Y)").all(),
            rounds=3,
            iterations=1,
        )
