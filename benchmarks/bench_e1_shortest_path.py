"""E1 — Figure 3 / Section 5.5.2: aggregate selections make shortest path
tractable.

Paper claim: *"This aggregate selection is extremely important for
efficiency — without it the program may run for ever, generating cyclic
paths of increasing length.  With this aggregate selection, along with the
choice annotation ... a single source query on the program runs in time
O(E·V)."*

Reproduced two ways:

* on layered DAGs the unpruned program enumerates ``width**layers`` paths —
  measured fact counts grow exponentially while the pruned program stays
  linear;
* on random cyclic graphs the pruned program terminates (the unpruned one
  would not), and its single-source cost grows roughly with E·V.
"""

import pytest

from workloads import (
    SHORTEST_PATH_FIGURE_3,
    SHORTEST_PATH_UNPRUNED,
    layered_dag_edges,
    report,
    session_with,
    weighted_edge_facts,
    weighted_random_edges,
)


def _run_single_source(program: str, edges, source: int):
    session = session_with(
        weighted_edge_facts(edges), program
    )
    answers = session.query(f"s_p({source}, Y, P, C)").all()
    return session, answers


class TestE1ShortestPath:
    def test_pruned_terminates_on_cyclic_graph(self, benchmark):
        edges = weighted_random_edges(nodes=30, count=90, seed=7)

        def run():
            _session, answers = _run_single_source(
                SHORTEST_PATH_FIGURE_3, edges, 0
            )
            return answers

        answers = benchmark(run)
        assert answers  # reaches something; and, crucially, returns at all

    def test_exponential_blowup_without_selection(self):
        """Fact-count series: unpruned explodes with depth, pruned stays
        linear (the paper's 'may run for ever' made finite on DAGs)."""
        rows = []
        for layers in (3, 4, 5, 6):
            edges = [
                (a, b, 1 + ((a + b) % 3))
                for a, b in layered_dag_edges(layers, width=2)
            ]
            pruned_session, pruned = _run_single_source(
                SHORTEST_PATH_FIGURE_3, edges, 0
            )
            unpruned_session, unpruned = _run_single_source(
                SHORTEST_PATH_UNPRUNED, edges, 0
            )
            rows.append(
                (
                    layers,
                    2**layers,
                    pruned_session.stats.inferences,
                    unpruned_session.stats.inferences,
                )
            )
        report(
            "E1: path inferences, pruned vs unpruned (layered DAG, width 2)",
            ["layers", "distinct paths", "pruned inferences", "unpruned inferences"],
            rows,
        )
        # exponential vs linear shape: the unpruned/pruned ratio must grow
        ratios = [unpruned / pruned for _l, _p, pruned, unpruned in rows]
        assert ratios[-1] > ratios[0] * 2
        # pruned stays near-linear in layers
        assert rows[-1][2] < rows[0][2] * 16

    def test_single_source_scaling_near_e_times_v(self):
        """Time/work for the pruned program across growing random graphs:
        the paper's O(E·V) shape — work per (E·V) unit stays bounded."""
        rows = []
        for nodes in (10, 20, 40):
            edges = weighted_random_edges(nodes=nodes, count=3 * nodes, seed=11)
            session, answers = _run_single_source(
                SHORTEST_PATH_FIGURE_3, edges, 0
            )
            work = session.stats.inferences
            ev = len(edges) * nodes
            rows.append((nodes, len(edges), len(answers), work, round(work / ev, 3)))
        report(
            "E1: single-source work vs E·V (pruned Figure 3)",
            ["V", "E", "answers", "inferences", "inferences/(E·V)"],
            rows,
        )
        per_ev = [row[4] for row in rows]
        # bounded (no super-polynomial blow-up): largest ratio within ~8x of
        # smallest — loose on purpose; we claim shape, not constants
        assert max(per_ev) <= max(8 * min(per_ev), 1.0)

    def test_correct_shortest_costs_vs_dijkstra(self):
        """Answers must match a reference shortest-path computation."""
        import heapq

        edges = weighted_random_edges(nodes=25, count=75, seed=3)
        _session, answers = _run_single_source(SHORTEST_PATH_FIGURE_3, edges, 0)

        adjacency = {}
        for a, b, w in edges:
            adjacency.setdefault(a, []).append((b, w))
        dist = {}
        heap = [(0, 0)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            for other, w in adjacency.get(node, []):
                if other not in dist:
                    heapq.heappush(heap, (d + w, other))
        expected = {n: d for n, d in dist.items() if n != 0 or d > 0}
        # Datalog shortest path from 0 to 0 exists only via a cycle; drop the
        # trivial dist[0]=0 entry and compare reachable targets
        expected.pop(0, None)
        got = {a["Y"]: a["C"] for a in answers if a["Y"] != 0}
        assert got == expected
