"""E3 — Section 4.1: selection-propagating rewritings.

Paper claims: *"Supplementary Magic is a good choice as a default, although
each technique is superior to the rest for some programs"*; bound query
forms propagate bindings ("binding propagation similar to Prolog"), all-free
forms "are ignored, except for a final selection".

Measured, on a bound-first-argument transitive-closure query over a graph
with a large irrelevant component:

* facts computed: any magic variant ≪ no rewriting (selectivity);
* supplementary magic does not repeat rule-prefix work that plain Magic
  re-derives (rule applications / inferences);
* context factoring wins on the right-linear form (it avoids materializing
  per-subgoal answer copies);
* each variant returns identical answers.
"""

import pytest

from repro import Session
from workloads import TC_RIGHT, chain_edges, edge_facts, report, session_with

#: reachable component: a binary in-tree reaching few nodes from the source;
#: irrelevant component: a long chain elsewhere
def _graph():
    edges = [(a + 100, b + 100) for a, b in chain_edges(120)]  # irrelevant
    for i in range(30):  # reachable component: a chain from 0
        edges.append((i, i + 1))
    return edges


TECHNIQUES = [
    ("no rewriting", "@no_rewriting."),
    ("magic", "@magic."),
    ("sup. magic (default)", ""),
    ("sup. magic + goal ids", "@supplementary_magic_goalid."),
    ("context factoring", "@context_factoring."),
]


def _run(flags: str):
    session = session_with(
        edge_facts(_graph()), TC_RIGHT.format(flags=flags)
    )
    answers = sorted(a["Y"] for a in session.query("path(0, Y)"))
    return session, answers


class TestE3Rewriting:
    def test_selectivity_and_agreement(self):
        rows = []
        baseline = None
        for label, flags in TECHNIQUES:
            session, answers = _run(flags)
            if baseline is None:
                baseline = answers
            assert answers == baseline, f"{label} disagrees"
            stats = session.stats
            rows.append(
                (
                    label,
                    stats.facts_inserted,
                    stats.inferences,
                    stats.rule_applications,
                )
            )
        report(
            "E3: bound-source TC with a large irrelevant component",
            ["technique", "facts", "inferences", "rule applications"],
            rows,
        )
        by_label = {row[0]: row for row in rows}
        unrewritten_facts = by_label["no rewriting"][1]
        for label in ("magic", "sup. magic (default)", "context factoring"):
            assert by_label[label][1] < unrewritten_facts / 2, label
        # factoring's context relation is the smallest representation of the
        # subgoal structure for right-linear rules
        assert (
            by_label["context factoring"][1]
            <= by_label["sup. magic (default)"][1]
        )

    def test_all_free_form_skips_rewriting(self):
        """Section 4.1: with every argument free, bindings are only a final
        selection — the optimizer compiles the unrewritten program."""
        session = session_with(
            edge_facts(chain_edges(5)), TC_RIGHT.format(flags="")
        )
        session.query("path(X, Y)").all()
        compiled = session.modules.compiled_form("tc", "path", "ff")
        assert compiled.rewritten.technique == "none"

    def test_bound_form_uses_supplementary_magic_by_default(self):
        session = session_with(
            edge_facts(chain_edges(5)), TC_RIGHT.format(flags="")
        )
        session.query("path(1, Y)").all()
        compiled = session.modules.compiled_form("tc", "path", "bf")
        assert compiled.rewritten.technique == "supplementary_magic"

    @pytest.mark.parametrize(
        "label,flags", TECHNIQUES, ids=[t[0] for t in TECHNIQUES]
    )
    def test_technique_speed(self, benchmark, label, flags):
        benchmark.pedantic(lambda: _run(flags), rounds=3, iterations=1)
