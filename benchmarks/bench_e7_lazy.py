"""E7 — Section 5.4.3: lazy evaluation.

Paper claim: *"Lazy evaluation tries to return the answers at the end of
every iteration, instead of at the end of computation ... the whole process
is repeated until an iteration over the rules produces no new tuples."*  And
Section 5.6: at the top level *"this results in answers being available at
the end of each iteration."*

Measured on left-linear bound-source reachability over a long chain (one new
answer per iteration): work done before the first answer and before the
first K answers, lazy vs eager, plus identical totals.
"""

import pytest

from repro import Session
from workloads import chain_edges, edge_facts, report, session_with

#: left-linear TC: the answer SCC produces one new path fact per iteration,
#: so laziness is visible answer by answer
TC_LEFT_LAZY = """
module tc.
export path(bf).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
end_module.
"""

LAZY = TC_LEFT_LAZY.format(flags="")  # lazy is the materialized default
EAGER = TC_LEFT_LAZY.format(flags="@eager_eval.")

CHAIN = chain_edges(150)


def _work_to_first_k(program: str, k: int) -> int:
    session = session_with(edge_facts(CHAIN), program)
    result = session.query("path(0, Y)")
    for _ in range(k):
        answer = result.get_next()
        assert answer is not None
    return session.stats.inferences


class TestE7LazyEvaluation:
    def test_work_to_first_answers(self):
        rows = []
        for k in (1, 10, 50):
            lazy_work = _work_to_first_k(LAZY, k)
            eager_work = _work_to_first_k(EAGER, k)
            rows.append((k, lazy_work, eager_work))
        report(
            "E7: inferences before the first K answers (150-chain, "
            "lazy = materialized default vs @eager_eval)",
            ["K", "lazy", "eager"],
            rows,
        )
        # eager always pays the full fixpoint; lazy pays roughly K iterations
        full = rows[0][2]
        assert rows[0][1] < full / 10
        assert rows[1][1] < full / 2
        for _k, _lazy, eager in rows:
            assert eager == full

    def test_totals_identical(self):
        lazy_session = session_with(edge_facts(CHAIN), LAZY)
        eager_session = session_with(edge_facts(CHAIN), EAGER)
        lazy_answers = sorted(a["Y"] for a in lazy_session.query("path(0, Y)"))
        eager_answers = sorted(a["Y"] for a in eager_session.query("path(0, Y)"))
        assert lazy_answers == eager_answers
        assert len(lazy_answers) == len(CHAIN)

    def test_abandoned_lazy_cursor_stops_paying(self):
        """Pull three answers and walk away: the fixpoint must not have run
        to completion behind the consumer's back."""
        session = session_with(edge_facts(CHAIN), LAZY)
        result = session.query("path(0, Y)")
        for _ in range(3):
            result.get_next()
        assert session.stats.inferences < len(CHAIN)

    def test_lazy_first_answer_speed(self, benchmark):
        benchmark.pedantic(
            lambda: _work_to_first_k(LAZY, 1), rounds=5, iterations=1
        )

    def test_eager_first_answer_speed(self, benchmark):
        benchmark.pedantic(
            lambda: _work_to_first_k(EAGER, 1), rounds=5, iterations=1
        )
