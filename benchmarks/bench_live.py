"""Live queries — delta-notify latency and throughput vs a poll loop.

A writer extends a chain one edge at a time; every insert derives exactly
one new ``path(1, N)`` answer.  Subscribers receive it two ways:

- **live** (repro.live): a SUBSCRIBE + DELTA long-poll per subscriber —
  the server pushes the delta into the subscription queue at commit time
  and the parked DELTA returns immediately;
- **poll baseline**: the classic workaround, each client re-running the
  full query on an interval and diffing consecutive answer sets.

Measured into ``BENCH_live.json``: notify latency (commit start to the
subscriber holding the delta) p50/p99 and end-to-end deltas/s at 1, 8 and
32 subscribers, plus the poll loop's detection latency at its default
10 ms interval.  The point of the subsystem is the tail: the live p99 must
beat the poll baseline's p99, and CI checks exactly that.
"""

import statistics
import threading
import time

from repro.client import RemoteSession
from repro.server import CoralServer

from emit import emit
from workloads import report

CHAIN = 12  # initial chain 1..CHAIN
ROUNDS = 40  # inserts per configuration; one new derived answer each
SUBSCRIBER_COUNTS = (1, 8, 32)
POLL_INTERVAL = 0.010  # the baseline's re-query cadence

TC_MODULE = """
module tc.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _program():
    edges = " ".join(f"edge({i}, {i + 1})." for i in range(1, CHAIN))
    return edges + "\n" + TC_MODULE


def _percentiles(samples):
    if not samples:
        return 0.0, 0.0
    ordered = sorted(samples)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _drive_writer(writer, insert_times, lock):
    """Extend the chain ROUNDS times, stamping each new answer's commit
    start; returns the wall time spent committing."""
    start = time.perf_counter()
    for i in range(ROUNDS):
        node = CHAIN + i
        with lock:
            insert_times[1 + node] = time.perf_counter()
        writer.insert("edge", node, node + 1)
    return time.perf_counter() - start


def run_live(host, port, n_subs):
    writer = RemoteSession(host, port)
    sessions = [RemoteSession(host, port) for _ in range(n_subs)]
    subs = [s.subscribe("?- path(1, Y).") for s in sessions]
    latencies = []
    received = [0]
    lock = threading.Lock()
    insert_times = {}
    stop = threading.Event()

    def drain(sub):
        while not stop.is_set():
            kind, payload = sub.poll(timeout=0.25)
            now = time.perf_counter()
            if kind == "deltas":
                with lock:
                    received[0] += len(payload)
                    for _sign, values in payload:
                        stamped = insert_times.get(values[-1])
                        if stamped is not None:
                            latencies.append(now - stamped)
            elif kind == "closed":
                return

    threads = [
        threading.Thread(target=drain, args=(sub,), daemon=True)
        for sub in subs
    ]
    for thread in threads:
        thread.start()
    wall = _drive_writer(writer, insert_times, lock)
    expected = ROUNDS * n_subs
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with lock:
            if received[0] >= expected:
                break
        time.sleep(0.01)
    total = time.perf_counter() - (
        min(insert_times.values()) if insert_times else time.perf_counter()
    )
    stop.set()
    for thread in threads:
        thread.join(timeout=5.0)
    for s in sessions:
        s.close()
    writer.close()
    p50, p99 = _percentiles(latencies)
    return {
        "subscribers": n_subs,
        "deltas": received[0],
        "notify_p50_ms": p50 * 1e3,
        "notify_p99_ms": p99 * 1e3,
        "deltas_per_second": received[0] / total if total > 0 else 0.0,
        "writer_wall_seconds": wall,
    }


def run_poll_baseline(host, port, n_subs):
    """The pre-live workaround: re-run the query on an interval, diff."""
    writer = RemoteSession(host, port)
    sessions = [RemoteSession(host, port) for _ in range(n_subs)]
    latencies = []
    detected = [0]
    lock = threading.Lock()
    insert_times = {}
    stop = threading.Event()

    def poll_loop(session):
        seen = {t for t in session.query("path(1, Y)").tuples()}
        while not stop.is_set():
            time.sleep(POLL_INTERVAL)
            fresh = {t for t in session.query("path(1, Y)").tuples()}
            now = time.perf_counter()
            new = fresh - seen
            if new:
                with lock:
                    detected[0] += len(new)
                    for values in new:
                        stamped = insert_times.get(values[-1])
                        if stamped is not None:
                            latencies.append(now - stamped)
            seen = fresh

    threads = [
        threading.Thread(target=poll_loop, args=(s,), daemon=True)
        for s in sessions
    ]
    for thread in threads:
        thread.start()
    wall = _drive_writer(writer, insert_times, lock)
    expected = ROUNDS * n_subs
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        with lock:
            if detected[0] >= expected:
                break
        time.sleep(0.01)
    stop.set()
    for thread in threads:
        thread.join(timeout=5.0)
    for s in sessions:
        s.close()
    writer.close()
    p50, p99 = _percentiles(latencies)
    return {
        "subscribers": n_subs,
        "detected": detected[0],
        "notify_p50_ms": p50 * 1e3,
        "notify_p99_ms": p99 * 1e3,
        "writer_wall_seconds": wall,
    }


def main():
    counters = {}
    rows = []
    overall_start = time.perf_counter()
    for n_subs in SUBSCRIBER_COUNTS:
        with CoralServer(host="127.0.0.1", port=0) as server:
            host, port = server.address
            with RemoteSession(host, port) as boot:
                boot.consult_string(_program())
            outcome = run_live(host, port, n_subs)
        counters[f"live_{n_subs}_subscribers"] = outcome
        rows.append(
            (
                f"live x{n_subs}",
                f"{outcome['notify_p50_ms']:.2f}ms",
                f"{outcome['notify_p99_ms']:.2f}ms",
                f"{outcome['deltas_per_second']:.0f}/s",
            )
        )
    with CoralServer(host="127.0.0.1", port=0) as server:
        host, port = server.address
        with RemoteSession(host, port) as boot:
            boot.consult_string(_program())
        baseline = run_poll_baseline(host, port, 1)
    counters["poll_baseline_1_subscriber"] = baseline
    rows.append(
        (
            "poll x1",
            f"{baseline['notify_p50_ms']:.2f}ms",
            f"{baseline['notify_p99_ms']:.2f}ms",
            "-",
        )
    )
    wall = time.perf_counter() - overall_start

    live_p99 = counters["live_1_subscribers"]["notify_p99_ms"]
    counters["live_p99_beats_poll_baseline"] = bool(
        live_p99 < baseline["notify_p99_ms"]
    )
    report(
        "live subscriptions vs poll loop",
        ("configuration", "notify p50", "notify p99", "throughput"),
        rows,
    )
    print(
        f"live p99 {live_p99:.2f}ms vs poll p99 "
        f"{baseline['notify_p99_ms']:.2f}ms -> "
        f"{'BEATS' if counters['live_p99_beats_poll_baseline'] else 'LOSES TO'}"
        f" the poll baseline"
    )
    path = emit(
        "live",
        {
            "chain": CHAIN,
            "rounds": ROUNDS,
            "subscriber_counts": list(SUBSCRIBER_COUNTS),
            "poll_interval_seconds": POLL_INTERVAL,
        },
        wall,
        counters,
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
