"""E10 — Sections 3.3, 5.5.1: argument-form and pattern-form indexes.

Paper claims: CORAL's basic join is *"nested-loops with indexing"*, the
optimizer *"generates annotations to create all indices that are needed for
efficient evaluation"*, and pattern-form indexes *"retrieve precisely those
facts that match a specified pattern"* even under functor terms (the
``emp(Name, addr(Street, City))`` example).

Measured:

* indexed vs unindexed probes (HashRelation with an argument index vs the
  linked-list ListRelation): probe cost flat vs linear in relation size;
* the paper's pattern-index example: point lookups by a nested subterm;
* end-to-end effect: transitive closure joins with optimizer-selected
  indexes vs the same program forced through list relations.
"""

import time

import pytest

from repro.relations import (
    ArgumentIndexSpec,
    HashRelation,
    ListRelation,
    PatternIndexSpec,
    Tuple,
)
from repro.terms import Atom, Functor, Int, Var
from workloads import TC_RIGHT, chain_edges, edge_facts, report, session_with


def _fill(relation, count):
    for i in range(count):
        relation.insert(Tuple((Int(i % 100), Int(i))))


def _probe_time(relation, probes=300) -> float:
    start = time.perf_counter()
    for probe in range(probes):
        for _ in relation.scan([Int(probe % 100), Var("Y")], None):
            pass
    return time.perf_counter() - start


class TestE10Indexing:
    def test_probe_cost_indexed_vs_scan(self):
        rows = []
        for size in (1000, 4000, 16000):
            indexed = HashRelation("r", 2)
            indexed.add_index(ArgumentIndexSpec(2, [0]))
            _fill(indexed, size)
            unindexed = ListRelation("r", 2)
            _fill(unindexed, size)
            rows.append(
                (
                    size,
                    round(_probe_time(indexed) * 1000, 1),
                    round(_probe_time(unindexed) * 1000, 1),
                )
            )
        report(
            "E10: 300 bound-first-argument probes (ms)",
            ["tuples", "hash index", "list scan"],
            rows,
        )
        # the list scan grows linearly with relation size; per-bucket work
        # for the index grows only with matches per key (size/100)
        assert rows[-1][2] > rows[-1][1] * 3
        assert rows[-1][2] > rows[0][2] * 4

    def test_pattern_index_paper_example(self):
        """@make_index emp(Name, addr(Street, City)) (Name, City)."""
        name, street, city = Var("Name"), Var("Street"), Var("City")
        indexed = HashRelation("emp", 2)
        indexed.add_index(
            PatternIndexSpec([name, Functor("addr", (street, city))], [name, city])
        )
        plain = HashRelation("emp2", 2)
        for i in range(4000):
            row = Tuple(
                (
                    Atom(f"person{i % 50}"),
                    Functor(
                        "addr",
                        (Atom(f"street{i}"), Atom(f"city{i % 20}")),
                    ),
                )
            )
            indexed.insert(row)
            plain.insert(
                Tuple((row.args[0], row.args[1]))
            )

        probe = [
            Atom("person7"),
            Functor("addr", (Var("S"), Atom("city7"))),
        ]
        start = time.perf_counter()
        indexed_hits = sum(1 for _ in indexed.scan(probe, None))
        indexed_time = time.perf_counter() - start
        start = time.perf_counter()
        plain_hits = sum(1 for _ in plain.scan(probe, None))
        plain_time = time.perf_counter() - start
        report(
            "E10: nested-subterm lookup, pattern index vs full scan",
            ["variant", "candidates", "ms"],
            [
                ("pattern index", indexed_hits, round(indexed_time * 1000, 2)),
                ("no index", plain_hits, round(plain_time * 1000, 2)),
            ],
        )
        assert indexed_hits < plain_hits  # precisely the matching bucket
        assert indexed_hits >= 1

    def test_optimizer_creates_join_indexes(self):
        """Section 5.3: the optimizer analyzes the semi-naive rules and
        creates the indexes the nested-loops join will probe."""
        session = session_with(
            edge_facts(chain_edges(10)), TC_RIGHT.format(flags="")
        )
        session.query("path(0, Y)").all()
        edge_relation = session.ctx.base_relation("edge", 2)
        assert edge_relation.index_specs  # bound-position index was added

    def test_indexed_tc_speed(self, benchmark):
        source = edge_facts(chain_edges(120)) + TC_RIGHT.format(flags="")

        def run():
            session = session_with(source)
            return session.query("path(0, Y)").all()

        benchmark.pedantic(run, rounds=3, iterations=1)
