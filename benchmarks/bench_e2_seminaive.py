"""E2 — Section 5.3: semi-naive evaluation avoids rederivation.

Paper claim: semi-naive evaluation "perform[s] incremental evaluation of
rules across multiple iterations" via delta relations, where naive
evaluation (Bancilhon 1985, the paper's reference [2]) re-derives every
fact every iteration.

Measured: inference counts and duplicate-rejection counts for naive vs BSN
on transitive closure over chains and cycles.  Naive work is quadratic in
the iteration count on a chain (it rediscovers all shorter paths each
round); BSN touches each new combination once.
"""

import pytest

from repro import Session
from repro.eval.context import EvalContext, LocalScope
from repro.eval.fixpoint import SCCEvaluator, SCCPlan
from repro.builtins import default_registry
from repro.language import parse_module
from repro.rewriting.graph import (
    build_dependency_graph,
    condensation_order,
    recursive_predicates,
)

from emit import emit, timed
from workloads import chain_edges, cycle_edges, edge_facts, report

REGISTRY = default_registry()


def _evaluate(edges, strategy: str):
    """Evaluate unrewritten left-linear TC bottom-up with one strategy,
    returning the ctx stats — the naive-vs-semi-naive comparison needs to
    drive the fixpoint evaluator directly with identical inputs."""
    module = parse_module(
        """
        module tc.
        export path(ff).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        end_module.
        """
    )
    ctx = EvalContext()
    edge_rel = ctx.base_relation("edge", 2)
    for a, b in edges:
        edge_rel.insert_values(a, b)
    scope = LocalScope(ctx)
    graph = build_dependency_graph(module.rules, REGISTRY.is_builtin)
    for component in condensation_order(graph):
        rules = [r for r in module.rules if r.head.key in component]
        plan = SCCPlan.build(
            component,
            recursive_predicates(graph, component),
            rules,
            REGISTRY.is_builtin,
            strategy=strategy,
        )
        SCCEvaluator(scope, plan, strategy=strategy).run_to_completion()
    answers = len(scope.local[("path", 2)])
    return ctx.stats, answers


class TestE2SemiNaive:
    def test_rederivation_counts_chain(self):
        rows = []
        for length in (8, 16, 32):
            naive_stats, naive_answers = _evaluate(chain_edges(length), "naive")
            bsn_stats, bsn_answers = _evaluate(chain_edges(length), "bsn")
            assert naive_answers == bsn_answers
            rows.append(
                (
                    length,
                    naive_answers,
                    bsn_stats.inferences,
                    naive_stats.inferences,
                    round(naive_stats.inferences / bsn_stats.inferences, 1),
                )
            )
        report(
            "E2: inferences on chain TC, semi-naive (BSN) vs naive",
            ["chain length", "facts", "BSN inferences", "naive inferences", "ratio"],
            rows,
        )
        # BSN derives each fact a bounded number of times; naive's ratio
        # grows with the iteration count
        assert rows[-1][4] > rows[0][4]
        assert rows[-1][4] > 4

    def test_semi_naive_no_rederivation_on_chain(self):
        """On a chain, BSN's duplicate count stays near zero — everything
        derived is new; naive's duplicates dominate its work."""
        naive_stats, _ = _evaluate(chain_edges(24), "naive")
        bsn_stats, _ = _evaluate(chain_edges(24), "bsn")
        assert bsn_stats.duplicates == 0
        assert naive_stats.duplicates > naive_stats.facts_inserted

    def test_cycle_fixpoint_same_answers(self):
        naive_stats, naive_answers = _evaluate(cycle_edges(12), "naive")
        bsn_stats, bsn_answers = _evaluate(cycle_edges(12), "bsn")
        assert naive_answers == bsn_answers == 144  # complete digraph closure
        assert bsn_stats.inferences < naive_stats.inferences

    def test_emit_bench_json(self):
        """Persist the headline comparison as BENCH_e2_seminaive.json for
        the CI trend job (see benchmarks/emit.py for the schema)."""
        length = 32
        edges = chain_edges(length)
        with timed() as naive_t:
            naive_stats, answers = _evaluate(edges, "naive")
        with timed() as bsn_t:
            bsn_stats, _ = _evaluate(edges, "bsn")
        path = emit(
            "e2_seminaive",
            workload={"graph": "chain", "length": length, "facts": answers},
            wall_time_seconds=bsn_t.seconds,
            counters={
                "bsn": dict(bsn_stats.snapshot(), wall_time_seconds=bsn_t.seconds),
                "naive": dict(
                    naive_stats.snapshot(), wall_time_seconds=naive_t.seconds
                ),
            },
        )
        assert path.endswith("BENCH_e2_seminaive.json")

    def test_bsn_speed(self, benchmark):
        edges = chain_edges(32)
        benchmark.pedantic(lambda: _evaluate(edges, "bsn"), rounds=3, iterations=1)

    def test_naive_speed(self, benchmark):
        edges = chain_edges(32)
        benchmark.pedantic(lambda: _evaluate(edges, "naive"), rounds=3, iterations=1)
