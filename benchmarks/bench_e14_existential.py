"""E14 — Section 4.1: existential query rewriting (projection pushing).

Paper claim: *"CORAL also supports Existential Query Rewriting, which seeks
to propagate projections.  This is applied by default in conjunction with a
selection-pushing rewriting."*

Workload: ``reach(X) :- t(X, Y)`` over right-linear transitive ``t`` on a
complete-ish DAG — the destination argument is existential, so with the
rewriting ``t`` collapses to unary reachability (linear facts); without it
the full quadratic closure materializes.
"""

import pytest

from workloads import grid_edges, edge_facts, report, session_with

PROGRAM = """
module r.
export reach(b).
{flags}
reach(X) :- t(X, Y).
t(X, Y) :- edge(X, Y).
t(X, Y) :- edge(X, Z), t(Z, Y).
end_module.
"""

WITH_ERW = PROGRAM.format(flags="")
WITHOUT_ERW = PROGRAM.format(flags="@no_existential_rewriting.")


def _run(program: str, side: int):
    session = session_with(edge_facts(grid_edges(side)), program)
    answers = session.query("reach(0)").all()
    return session, answers


class TestE14Existential:
    def test_fact_counts(self):
        rows = []
        for side in (4, 6, 8):
            with_session, with_answers = _run(WITH_ERW, side)
            without_session, without_answers = _run(WITHOUT_ERW, side)
            assert len(with_answers) == len(without_answers) == 1
            rows.append(
                (
                    f"{side}x{side} grid",
                    with_session.stats.facts_inserted,
                    without_session.stats.facts_inserted,
                    round(
                        without_session.stats.facts_inserted
                        / with_session.stats.facts_inserted,
                        1,
                    ),
                )
            )
        report(
            "E14: facts materialized for the existential query reach(0)",
            ["graph", "with projection pushing", "without", "ratio"],
            rows,
        )
        # the gap widens with graph size: unary reachability vs binary closure
        assert rows[-1][3] > rows[0][3]
        assert rows[-1][3] > 3

    def test_rewriting_drops_the_existential_argument(self):
        session, _ = _run(WITH_ERW, 4)
        compiled = session.modules.compiled_form("r", "reach", "b")
        t_preds = {
            rule.head.pred
            for plan in compiled.scc_plans
            for rule in plan.rules
            if rule.head.pred.startswith("t_")
        }
        assert any("_ex" in pred for pred in t_preds)

    def test_with_erw_speed(self, benchmark):
        benchmark.pedantic(lambda: _run(WITH_ERW, 7), rounds=3, iterations=1)

    def test_without_erw_speed(self, benchmark):
        benchmark.pedantic(lambda: _run(WITHOUT_ERW, 7), rounds=3, iterations=1)
