"""Shared workload generators and reporting helpers for the benchmark
harness.

The paper (SIGMOD '93) contains no evaluation tables — Section 9 concedes
only "performance measurements of a preliminary nature have been made" — so
each ``bench_e*.py`` file regenerates the *comparative claim* the paper
makes in prose (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
the claim-vs-measured record).  Every benchmark prints a small table of the
quantities that support or refute its claim, in addition to the
pytest-benchmark timing.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro import Session

# ---------------------------------------------------------------------------
# graph generators
# ---------------------------------------------------------------------------


def chain_edges(length: int) -> List[Tuple[int, int]]:
    """0 -> 1 -> ... -> length."""
    return [(i, i + 1) for i in range(length)]


def cycle_edges(length: int) -> List[Tuple[int, int]]:
    return chain_edges(length - 1) + [(length - 1, 0)]


def grid_edges(side: int) -> List[Tuple[int, int]]:
    """A side x side grid, edges right and down (a DAG with many paths)."""
    edges = []
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                edges.append((node, node + 1))
            if row + 1 < side:
                edges.append((node, node + side))
    return edges


def random_edges(
    nodes: int, count: int, seed: int = 42
) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < count:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def weighted_random_edges(
    nodes: int, count: int, max_weight: int = 20, seed: int = 42
) -> List[Tuple[int, int, int]]:
    rng = random.Random(seed)
    return [(a, b, rng.randint(1, max_weight)) for a, b in random_edges(nodes, count, seed)]


def layered_dag_edges(layers: int, width: int = 2) -> List[Tuple[int, int]]:
    """A layered DAG, ``width`` nodes per layer, complete bipartite edges
    between consecutive layers: the number of distinct source-to-sink paths
    is width**layers, making path *enumeration* exponential while
    shortest-path search stays linear — the workload separating Figure 3
    with and without aggregate selections.  Node ids: layer*width + slot."""
    edges = []
    for layer in range(layers):
        for slot_a in range(width):
            for slot_b in range(width):
                edges.append(
                    (layer * width + slot_a, (layer + 1) * width + slot_b)
                )
    return edges


# ---------------------------------------------------------------------------
# program fragments
# ---------------------------------------------------------------------------


def edge_facts(edges: Iterable[Tuple[int, int]]) -> str:
    return " ".join(f"edge({a}, {b})." for a, b in edges)


def weighted_edge_facts(edges: Iterable[Tuple[int, int, int]]) -> str:
    return " ".join(f"edge({a}, {b}, {w})." for a, b, w in edges)


TC_LEFT = """
module tc.
export path(bf, fb, ff).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
end_module.
"""

TC_RIGHT = """
module tc.
export path(bf, fb, ff).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""

SHORTEST_PATH_FIGURE_3 = """
module s_p.
export s_p(bfff, ffff).
@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
@aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                   append([edge(Z, Y)], P, P1), C1 = C + EC.
p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
end_module.
"""

#: Figure 3 WITHOUT the aggregate selections: enumerates every simple and
#: cyclic path — divergent on cyclic graphs, exponential on layered DAGs.
SHORTEST_PATH_UNPRUNED = """
module s_p.
export s_p(bfff, ffff).
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                   append([edge(Z, Y)], P, P1), C1 = C + EC.
p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
end_module.
"""


def session_with(*sources: str) -> Session:
    session = Session()
    session.consult_string("\n".join(sources))
    return session


def mutual_recursion_module(predicates: int) -> str:
    """p0 ... p(k-1) in one big recursive cycle over edge/2: the workload
    where Predicate Semi-Naive beats Basic Semi-Naive (Section 4.2)."""
    rules = ["p0(X, Y) :- edge(X, Y)."]
    for index in range(predicates):
        nxt = (index + 1) % predicates
        rules.append(f"p{nxt}(X, Y) :- p{index}(X, Z), edge(Z, Y).")
        rules.append(f"p{nxt}(X, Y) :- p{index}(X, Y).")
    exports = "\n".join(f"export p{i}(bf, ff)." for i in range(predicates))
    body = "\n".join(rules)
    return f"module mutual.\n{exports}\n{{flags}}\n{body}\nend_module."


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def report(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print one claim-supporting table (captured into bench output)."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
