"""E4 — Section 4.2: Predicate Semi-Naive vs Basic Semi-Naive.

Paper claim: *"The default fixpoint evaluation strategy is called Basic
Semi-Naive evaluation (BSN), but a variant, called Predicate Semi-Naive
evaluation (PSN), which is better for programs with many mutually recursive
predicates, is also available."*

Workload: k predicates in one recursive cycle (p0 -> p1 -> ... -> pk -> p0)
over a chain graph.  Under BSN a fact takes a full global iteration to cross
each predicate boundary; PSN's within-iteration visibility lets it cross
several boundaries per iteration — iteration counts drop by roughly the
predicate count, answers stay identical.
"""

import pytest

from workloads import (
    chain_edges,
    edge_facts,
    mutual_recursion_module,
    report,
    session_with,
)


def _run(predicates: int, strategy_flag: str):
    module = mutual_recursion_module(predicates).format(flags=strategy_flag)
    session = session_with(edge_facts(chain_edges(12)), module)
    answers = sorted(
        (a["X"], a["Y"]) for a in session.query("p0(X, Y)")
    )
    return session, answers


class TestE4PredicateSemiNaive:
    def test_iteration_counts(self):
        rows = []
        for predicates in (2, 4, 8):
            bsn_session, bsn_answers = _run(predicates, "")
            psn_session, psn_answers = _run(predicates, "@psn.")
            assert bsn_answers == psn_answers
            rows.append(
                (
                    predicates,
                    len(bsn_answers),
                    bsn_session.stats.iterations,
                    psn_session.stats.iterations,
                    round(
                        bsn_session.stats.iterations
                        / max(1, psn_session.stats.iterations),
                        1,
                    ),
                )
            )
        report(
            "E4: fixpoint iterations, BSN vs PSN "
            "(k mutually recursive predicates over a 12-chain)",
            ["predicates", "answers", "BSN iterations", "PSN iterations", "ratio"],
            rows,
        )
        # PSN's advantage grows with the number of mutually recursive
        # predicates — the paper's selection criterion for the strategy
        ratios = [row[4] for row in rows]
        assert ratios[-1] > 1.5
        assert ratios[-1] >= ratios[0]

    def test_same_fixpoint(self):
        _bsn_session, bsn_answers = _run(5, "")
        _psn_session, psn_answers = _run(5, "@psn.")
        assert bsn_answers == psn_answers

    def test_bsn_speed(self, benchmark):
        benchmark.pedantic(lambda: _run(6, ""), rounds=3, iterations=1)

    def test_psn_speed(self, benchmark):
        benchmark.pedantic(lambda: _run(6, "@psn."), rounds=3, iterations=1)
