"""Ablations of the optimizer's run-time decisions (DESIGN.md §4.2 choices).

The paper's optimizer makes three decisions per module (Section 4.2): join
order / index selection, and "whether to refine the basic nested-loops join
with intelligent backtracking".  These benchmarks measure what each buys by
turning it off via the ablation annotations:

* ``@no_index_selection.`` — joins fall back to full scans;
* ``@no_backjumping.`` — failures backtrack chronologically.

Also ablated: the hash-consing ground fast path's effect end-to-end, by
running the Figure 3 program whose tuples carry large list terms.
"""

import time

import pytest

from repro import Session
from workloads import (
    SHORTEST_PATH_FIGURE_3,
    chain_edges,
    edge_facts,
    random_edges,
    report,
    session_with,
    weighted_edge_facts,
    weighted_random_edges,
)

TC = """
module tc.
export path(bf).
{flags}
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _run_tc(edges, flags):
    session = session_with(edge_facts(edges), TC.format(flags=flags))
    started = time.perf_counter()
    answers = len(session.query("path(0, Y)").all())
    return time.perf_counter() - started, answers, session


class TestIndexSelectionAblation:
    def test_join_cost_without_indexes(self):
        edges = random_edges(nodes=60, count=240, seed=13)
        with_time, with_answers, _s1 = _run_tc(edges, "")
        without_time, without_answers, _s2 = _run_tc(
            edges, "@no_index_selection."
        )
        report(
            "ablation: optimizer index selection (dense 60-node graph)",
            ["variant", "seconds", "answers"],
            [
                ("indexes selected", round(with_time, 3), with_answers),
                ("no indexes", round(without_time, 3), without_answers),
            ],
        )
        assert with_answers == without_answers
        assert with_time < without_time  # indexed probes beat scans

    def test_indexed_speed(self, benchmark):
        edges = random_edges(nodes=50, count=200, seed=13)
        benchmark.pedantic(lambda: _run_tc(edges, ""), rounds=3, iterations=1)

    def test_unindexed_speed(self, benchmark):
        edges = random_edges(nodes=50, count=200, seed=13)
        benchmark.pedantic(
            lambda: _run_tc(edges, "@no_index_selection."), rounds=3, iterations=1
        )


MULTIJOIN = """
module m.
export four(b).
{flags}
four(X) :- a(X, A), b(B), c(C), d(X, A).
end_module.
"""


class TestBackjumpingAblation:
    def _program(self, flags):
        # a(X, A) binds A; b and c are irrelevant wide relations; d(X, A)
        # fails for most A — backjumping skips b x c retries
        facts = []
        for i in range(40):
            facts.append(f"a(1, {i}).")
        for i in range(25):
            facts.append(f"b({i}). c({i}).")
        facts.append("d(1, 39).")
        return " ".join(facts) + MULTIJOIN.format(flags=flags)

    def test_same_answers_different_work(self):
        with_session = Session()
        with_session.consult_string(self._program(""))
        with_answers = len(with_session.query("four(1)").all())

        without_session = Session()
        without_session.consult_string(self._program("@no_backjumping."))
        without_answers = len(without_session.query("four(1)").all())
        assert with_answers == without_answers == 1

    def test_backjumping_speed(self, benchmark):
        program = self._program("")

        def run():
            session = Session()
            session.consult_string(program)
            return session.query("four(1)").all()

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_chronological_speed(self, benchmark):
        program = self._program("@no_backjumping.")

        def run():
            session = Session()
            session.consult_string(program)
            return session.query("four(1)").all()

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestStructureSharingEndToEnd:
    def test_figure_3_with_long_paths(self, benchmark):
        """End-to-end check that big list-valued tuples (paths) stay cheap:
        duplicate checks and joins hash interned terms, not structures."""
        edges = [(i, i + 1, 1) for i in range(60)]  # 60-hop paths

        def run():
            session = session_with(
                weighted_edge_facts(edges), SHORTEST_PATH_FIGURE_3
            )
            return len(session.query("s_p(0, Y, P, C)").all())

        answers = benchmark.pedantic(run, rounds=3, iterations=1)
        assert answers == 60
