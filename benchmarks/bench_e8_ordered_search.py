"""E8 — Section 5.4.1: Ordered Search for modularly stratified programs.

Paper claim: Ordered Search *"orders the use of generated subgoals ... and
thereby provides an important strategy for handling programs with negation,
set-grouping and aggregation, that are left-to-right modularly stratified"*;
done-markers *"ensure that rules involving negation ... are not applied
until enough facts have been computed to reduce the negation to a
set-difference operation."*

Workload: the classic win/move game (win(X) :- move(X, Y), not win(Y)) on
random DAGs — not stratified (win depends negatively on itself), but
left-to-right modularly stratified on acyclic move graphs.  Verified against
an independent game solver; scaling measured across board sizes.  A cyclic
game graph must be rejected, not answered wrongly.
"""

import pytest

from repro import Session
from repro.errors import StratificationError
from workloads import report, session_with

GAME = """
module game.
export win(b).
@ordered_search.
win(X) :- move(X, Y), not win(Y).
end_module.
"""


def _game_dag(levels: int, seed: int = 5):
    """A layered DAG of positions; edges go strictly downward."""
    import random

    rng = random.Random(seed)
    nodes = list(range(levels * 4))
    moves = []
    for node in nodes:
        level = node // 4
        for _ in range(2):
            target_level = rng.randint(level + 1, levels)
            if target_level >= levels:
                continue
            moves.append((node, target_level * 4 + rng.randrange(4)))
    return nodes, sorted(set(moves))


def _solve_reference(nodes, moves):
    """Independent negamax: a position wins iff some move reaches a loss."""
    adjacency = {}
    for a, b in moves:
        adjacency.setdefault(a, []).append(b)
    memo = {}

    def wins(node):
        if node not in memo:
            memo[node] = False  # placeholder (acyclic, so never consulted)
            memo[node] = any(not wins(nxt) for nxt in adjacency.get(node, []))
        return memo[node]

    return {node for node in nodes if wins(node)}


class TestE8OrderedSearch:
    def test_win_move_matches_reference(self):
        nodes, moves = _game_dag(levels=6)
        facts = " ".join(f"move({a}, {b})." for a, b in moves)
        session = session_with(facts, GAME)
        expected = _solve_reference(nodes, moves)
        for node in nodes:
            got = len(session.query(f"win({node})").all()) == 1
            assert got == (node in expected), f"position {node}"

    def test_subgoal_scaling(self):
        rows = []
        for levels in (3, 5, 7):
            nodes, moves = _game_dag(levels)
            facts = " ".join(f"move({a}, {b})." for a, b in moves)
            session = session_with(facts, GAME)
            session.query("win(0)").all()
            rows.append(
                (
                    levels,
                    len(moves),
                    session.stats.subgoals,
                    session.stats.inferences,
                )
            )
        report(
            "E8: ordered-search win/move, subgoals explored per root query",
            ["levels", "moves", "subgoals", "inferences"],
            rows,
        )
        # subgoal count is bounded by positions reachable from the root —
        # polynomial in the board, not exponential in game-tree paths
        assert rows[-1][2] <= 4 * len(_game_dag(7)[0])

    def test_cyclic_game_rejected(self):
        """win through a negative cycle is not modularly stratified: the
        evaluator must refuse (matching the technique's documented scope)."""
        session = session_with("move(a, b). move(b, a).", GAME)
        with pytest.raises(StratificationError):
            session.query("win(a)").all()

    def test_aggregation_over_subgoal_completion(self):
        """Ordered search is also the paper's vehicle for aggregation whose
        magic rewriting is unstratified (Figure 3 falls back to it)."""
        session = session_with(
            "edge(a, b, 1). edge(b, c, 1). edge(c, a, 1).",
            """
            module m.
            export best(bbf).
            cost(X, Y, C) :- edge(X, Y, C).
            cost(X, Y, C) :- edge(X, Z, C1), cost(Z, Y, C2), C = C1 + C2.
            best(X, Y, min(<C>)) :- cost(X, Y, C).
            end_module.
            """,
        )
        # cost is cyclic but the aggregate selection is absent: the cost
        # relation is infinite — guard with one that terminates instead
        # (cycle weights never revisit (X, Y, C) with new C < 3 * |V|):
        # here we only check the fallback *path* exists and answers appear
        compiled = session.modules.compiled_form("m", "best", "bbf")
        assert not compiled.ordered_search  # stratified post-rewrite: no fallback

    def test_ordered_search_speed(self, benchmark):
        nodes, moves = _game_dag(levels=6)
        facts = " ".join(f"move({a}, {b})." for a, b in moves)

        def run():
            session = session_with(facts, GAME)
            return session.query("win(0)").all()

        benchmark.pedantic(run, rounds=3, iterations=1)
