"""Company analytics: same-generation with magic sets, non-ground facts,
query forms, and the save-module facility.

Demonstrates three things the paper's related-work section singles CORAL
out for:

* **selection propagation** — the same-generation query ``peer(alice, Y)``
  only explores the relevant slice of the hierarchy (Supplementary Magic,
  the default rewriting);
* **non-ground facts** — a policy fact with a universally quantified
  variable (``can_contact(ceo, Anyone).``), something "most other deductive
  database systems" could not store;
* **save-module** — repeated peer queries against a retained module reuse
  earlier computation instead of rederiving it (Section 5.4.2).

Run:  python examples/company_hierarchy.py
"""

from repro import Session

ORG = """
reports_to(alice, carol).   reports_to(bob, carol).
reports_to(carol, eve).     reports_to(dan, erin).
reports_to(erin, eve).      reports_to(frank, dan).
reports_to(grace, dan).     reports_to(heidi, alice).
reports_to(ivan, alice).    reports_to(judy, bob).

employee(alice). employee(bob). employee(carol). employee(dan).
employee(erin). employee(eve). employee(frank). employee(grace).
employee(heidi). employee(ivan). employee(judy).

% a non-ground fact: the CEO may contact anyone at all
can_contact(eve, Anyone).
% ordinary ground policy facts
can_contact(carol, alice). can_contact(carol, bob).
"""

PROGRAM = """
module peers.
export peer(bf).
@save_module.
peer(X, Y) :- employee(X), X = Y.
peer(X, Y) :- reports_to(X, MX), peer(MX, MY), reports_to(Y, MY).
end_module.

module contact.
export may_reach(bf).
may_reach(X, Y) :- can_contact(X, Y), employee(Y).
end_module.
"""


def main() -> None:
    session = Session()
    session.consult_string(ORG + PROGRAM)

    print("Same-generation peers of alice (magic-rewritten, bf form):")
    for answer in sorted(session.query("peer(alice, Y)"), key=lambda a: a["Y"]):
        print("   ", answer["Y"])

    cost_first = session.stats.rule_applications
    print(f"\n  rule applications so far: {cost_first}")

    print("\nPeers of frank (the @save_module state is reused):")
    for answer in sorted(session.query("peer(frank, Y)"), key=lambda a: a["Y"]):
        print("   ", answer["Y"])
    print(
        "  additional rule applications:",
        session.stats.rule_applications - cost_first,
    )

    print("\nWho may the CEO reach?  (one non-ground fact answers for all)")
    reachable = sorted(a["Y"] for a in session.query("may_reach(eve, Y)"))
    print("   ", ", ".join(reachable))

    print("\nWho may carol reach?")
    reachable = sorted(a["Y"] for a in session.query("may_reach(carol, Y)"))
    print("   ", ", ".join(reachable))

    print("\nEvaluator statistics:", session.stats.snapshot())


if __name__ == "__main__":
    main()
