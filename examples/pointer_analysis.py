"""Andersen-style points-to analysis — program analysis as deductive
database queries.

The paper's introduction motivates CORAL with "applications in which large
amounts of data must be extensively analyzed"; static program analysis
became the canonical such workload for deductive databases.  This example
encodes a small imperative program's statements as facts and the classic
inclusion-based (Andersen) points-to analysis as four recursive rules, then
asks both global and demand-driven (magic-rewritten) queries.

Statement encoding:

    addr(x, o)    —  x = &o
    assign(x, y)  —  x = y
    load(x, y)    —  x = *y
    store(x, y)   —  *x = y

Run:  python examples/pointer_analysis.py
"""

from repro import Session

#: the analysed program:
#:   a = &obj1;  b = &obj2;  p = &a;
#:   c = b;      *p = c;     d = *p;  q = p;  e = *q;
PROGRAM_FACTS = """
addr(a, obj1). addr(b, obj2). addr(p, a).
assign(c, b).
store(p, c).
load(d, p).
assign(q, p).
load(e, q).
"""

ANALYSIS = """
module andersen.
export pts(bf, ff).
export alias(bf).
pts(V, O) :- addr(V, O).
pts(V, O) :- assign(V, W), pts(W, O).
pts(V, O) :- load(V, W), pts(W, X), pts(X, O).
pts(X, O) :- store(V, W), pts(V, X), pts(W, O).
alias(X, Y) :- pts(X, O), pts(Y, O), X != Y.
end_module.
"""


def main() -> None:
    session = Session()
    session.consult_string(PROGRAM_FACTS + ANALYSIS)

    print("Full points-to relation (bottom-up, ff form):")
    for var, obj in sorted(session.query("pts(V, O)").tuples()):
        print(f"    {var} -> {obj}")

    print("\nDemand-driven query pts(e, O) — magic sets explore only what")
    print("the 'e = *q' chain needs:")
    for answer in session.query("pts(e, O)"):
        print(f"    e may point to {answer['O']}")

    print("\nAliases of d:")
    for answer in sorted(session.query("alias(d, Y)").all(), key=lambda a: a["Y"]):
        print(f"    d ~ {answer['Y']}")

    print("\nEvaluator statistics:", session.stats.snapshot())


if __name__ == "__main__":
    main()
