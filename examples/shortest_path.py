"""The paper's Figure 3, verbatim: shortest paths with aggregate selections.

This is the program the paper uses to motivate aggregate selections
(Section 5.5.2): without the ``@aggregate_selection ... min(C)`` annotation
the program enumerates ever-longer cyclic paths and never terminates; with
it (plus the ``any(P)`` witness selection) a single-source query runs in
roughly O(E·V).

The graph here is a small flight network with cycles (return flights), so
termination genuinely depends on the pruning.

Run:  python examples/shortest_path.py
"""

from repro import Session

FLIGHTS = """
edge(msn, ord, 120).  edge(ord, msn, 120).
edge(ord, jfk, 740).  edge(jfk, ord, 740).
edge(ord, sfo, 1850). edge(sfo, ord, 1850).
edge(jfk, lhr, 3450). edge(lhr, jfk, 3450).
edge(sfo, nrt, 5130). edge(nrt, sfo, 5130).
edge(msn, sfo, 2050).
edge(lhr, nrt, 5950).
"""

#: Figure 3 from the paper, with the companion any() selection the paper
#: describes in the same section.
FIGURE_3 = """
module s_p.
export s_p(bfff, ffff).
@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
@aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                   append([edge(Z, Y)], P, P1), C1 = C + EC.
p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
end_module.
"""


def main() -> None:
    session = Session()
    session.consult_string(FLIGHTS + FIGURE_3)

    print("Shortest routes from MSN (single-source query s_p(msn, Y, P, C)):")
    answers = sorted(
        session.query("s_p(msn, Y, P, C)").all(), key=lambda a: a["C"]
    )
    for answer in answers:
        # the path accumulates in reverse (Figure 3 conses at the front)
        hops = list(reversed([str(h) for h in answer.term("P").subterms()
                              if str(h).startswith("edge(")]))
        print(f"    to {answer['Y']:>3}: {answer['C']:>5} miles  via {' '.join(hops)}")

    print("\nEvaluator statistics:", session.stats.snapshot())
    print(
        "\nNote: the graph has cycles; without the min(C) aggregate "
        "selection this program would diverge (benchmark E1 measures the "
        "bounded blow-up)."
    )


if __name__ == "__main__":
    main()
