"""Persistent relations on the page-based storage manager.

The EXODUS role (paper Section 2): data lives in page files managed by a
storage server; the session is a client with a bounded buffer pool; a
'get-next-tuple' request on a persistent relation becomes a page-level I/O
request when the page is not buffered.  This example:

* builds a product catalog as a persistent relation with a B-tree index;
* queries it declaratively alongside in-memory relations;
* closes the session and re-opens the same directory in a second session,
  showing durability;
* prints the buffer pool and server statistics that the storage benchmarks
  (E11) sweep.

Run:  python examples/persistent_catalog.py
"""

import shutil
import tempfile

from repro import Session

PRICING_MODULE = """
module pricing.
export affordable(bf).
export in_category(bf).
affordable(Limit, Name) :- product(Id, Name, Cat, Price), Price <= Limit.
in_category(Cat, Name) :- product(Id, Name, Cat, Price).
end_module.
"""


def build_catalog(directory: str) -> None:
    session = Session(data_directory=directory, buffer_capacity=16)
    catalog = session.persistent_relation("product", 4)
    catalog.create_index([0])  # B-tree on the product id
    for item_id in range(500):
        category = ["tools", "parts", "garden"][item_id % 3]
        catalog.insert_values(
            item_id, f"item_{item_id}", category, 100 + (item_id * 7) % 900
        )
    print(f"built catalog: {len(catalog)} products, "
          f"{session.storage_pool.server.num_pages('product.heap')} heap pages")
    session.close()  # flushes dirty pages; data survives the process


def query_catalog(directory: str) -> None:
    session = Session(data_directory=directory, buffer_capacity=16)
    catalog = session.persistent_relation("product", 4)  # re-opened
    print(f"\nre-opened catalog in a second session: {len(catalog)} products")

    session.consult_string(PRICING_MODULE)

    print("\nFive cheapest affordable products under 150:")
    answers = sorted(
        session.query("affordable(150, Name)").all(), key=lambda a: a["Name"]
    )[:5]
    for answer in answers:
        print("   ", answer["Name"])

    # an indexed point lookup goes through the B-tree, not a heap scan
    pool = session.storage_pool
    pool.stats.reset()
    result = session.query_values("product", 250, None, None, None).all()
    print(f"\npoint lookup of product 250: {result[0].tuple}")
    print(f"buffer pool after indexed lookup: {pool.stats!r}")

    pool.drop_all()
    pool.stats.reset()
    count = len(session.query("in_category(garden, Name)").all())
    print(f"\ncold full scan found {count} garden products")
    print(f"buffer pool after cold scan: {pool.stats!r}")
    print(f"server page reads so far: {pool.server.stats.page_reads}")
    session.close()


def main() -> None:
    directory = tempfile.mkdtemp(prefix="coral_catalog_")
    try:
        build_catalog(directory)
        query_catalog(directory)
    finally:
        shutil.rmtree(directory)


if __name__ == "__main__":
    main()
