"""Quickstart: consult a program, run queries, read the statistics.

The smallest useful tour of the system: base facts, one recursive module,
three query forms against it, and a look at what the evaluator did.

Run:  python examples/quickstart.py
"""

from repro import Session


def main() -> None:
    session = Session()

    # Base facts and a declarative module, exactly as a consulted text file
    # would contain them (paper Section 2).  The export declares which query
    # forms (bound/free patterns) the module is compiled for.
    session.consult_string(
        """
        edge(msn, ord). edge(ord, jfk). edge(jfk, lhr).
        edge(ord, sfo). edge(sfo, nrt).

        module reachability.
        export path(bf, ff).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
        """
    )

    # A bound-first-argument query: the optimizer compiles the module with
    # supplementary magic, so only facts reachable from 'ord' are computed.
    print("Destinations reachable from ORD:")
    for answer in session.query("path(ord, X)"):
        print("   ", answer["X"])

    # An all-free query evaluates bottom-up and filters at the end.
    print("\nAll connections:")
    for origin, destination in sorted(session.query("path(X, Y)").tuples()):
        print(f"    {origin} -> {destination}")

    # Every query is a cursor: pull answers one at a time if you prefer.
    result = session.query("path(msn, X)")
    first = result.get_next()
    print(f"\nFirst answer to path(msn, X): {first['X']}")

    # What the evaluation cost (paper Section 5.3's machinery at work):
    print("\nEvaluator statistics:", session.stats.snapshot())


if __name__ == "__main__":
    main()
