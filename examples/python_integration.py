"""Python plays C++: the imperative interface and extensibility hooks.

Reproduces Section 6 (the CORAL/C++ interface) and Section 7
(extensibility) with Python as the host language:

* relations built imperatively and scanned with a ScanDescriptor (the
  paper's C_ScanDesc);
* a declarative module embedded in host code and driven from it;
* a new predicate defined in the host language with ``coral_export``
  (the paper's ``_coral_export``), used inside declarative rules;
* a user abstract data type (a 2-D point) registered so consulted text
  re-creates instances, with distance computed by a host predicate;
* a relation computed entirely by a host function (Section 7.2).

Run:  python examples/python_integration.py
"""

from repro import Arg, Int, Session, coral_export
from repro.api import ScanDescriptor
from repro.extensibility import FunctionRelation


class Point(Arg):
    """A user ADT implementing the Section 7.1 virtual-method contract."""

    __slots__ = ("x", "y")
    kind = "point"

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name, value):
        raise AttributeError("Point is immutable")

    def equals(self, other) -> bool:
        return isinstance(other, Point) and (other.x, other.y) == (self.x, self.y)

    def __eq__(self, other):
        return self.equals(other) if isinstance(other, Arg) else NotImplemented

    def __hash__(self) -> int:
        return hash(("point", self.x, self.y))

    def hash_value(self) -> int:
        return hash(self)

    def ground_key(self):
        return ("point", self.x, self.y)

    @classmethod
    def construct(cls, x, y):
        return cls(
            x.value if isinstance(x, Arg) else x,
            y.value if isinstance(y, Arg) else y,
        )

    def __str__(self) -> str:
        return f"pt({self.x:g}, {self.y:g})"


def main() -> None:
    session = Session()

    # -- imperative relation construction (Section 6.1) ------------------
    stops = session.relation("stop", 2)
    for name, zone in [("depot", 1), ("market", 1), ("museum", 2), ("pier", 3)]:
        stops.insert_values(name, zone)

    print("Scan with a selection (C_ScanDesc equivalent): zone-1 stops")
    with ScanDescriptor(stops, [None, 1]) as scan:
        for name, zone in scan:
            print("   ", name)

    # -- a host-language predicate usable from rules (Section 6.2) -------
    @coral_export(session.ctx.builtins, "fare", 2)
    def fare(zone, price):
        """fare(Zone, Price): zone-based pricing computed in Python."""
        if zone is not None:
            yield (zone, 250 + 75 * (zone - 1))

    # -- a relation computed by a host function (Section 7.2) ------------
    def neighbours(a, b):
        adjacency = {
            "depot": ["market"], "market": ["depot", "museum"],
            "museum": ["market", "pier"], "pier": ["museum"],
        }
        if a is not None:
            for other in adjacency.get(a.value, []):
                yield (a.value, other)
        else:
            for src, targets in adjacency.items():
                for other in targets:
                    yield (src, other)

    session.register_relation(FunctionRelation("adjacent", 2, neighbours))

    # -- the user ADT, consulted from text (Section 7.1) -----------------
    # (note: host predicates registered with coral_export accept primitive
    # types only — the paper's Section 6.2 restriction; ADTs flow through
    # the declarative language and the generic Arg interface instead)
    session.register_type("pt", Point)

    session.consult_string(
        """
        located(depot, pt(0, 0)).
        located(market, pt(3, 4)).
        located(museum, pt(6, 8)).
        located(pier, pt(6, 12)).

        module trips.
        export ticket(bf).
        export hop(bf).
        ticket(Stop, Price) :- stop(Stop, Zone), fare(Zone, Price).
        hop(A, B) :- adjacent(A, B).
        end_module.
        """
    )

    print("\nTicket prices (declarative rules calling the Python fare/2):")
    for answer in sorted(session.query("ticket(S, P)").all(), key=lambda a: a["P"]):
        print(f"    {answer['S']:>7}: {answer['P']} cents")

    print("\nHops from market (a function-computed relation):")
    for answer in session.query("hop(market, B)"):
        print("   ", answer["B"])

    print("\nStops with their ADT coordinates (consulted from text):")
    for answer in session.query("located(S, P)"):
        print(f"    {answer['S']:>7} at {answer.term('P')}")


if __name__ == "__main__":
    main()
