"""Bill of materials: recursion, aggregation, negation, and mixed module
strategies on the classic parts-explosion workload.

This is the kind of application the paper's introduction motivates — "large
amounts of data must be extensively analyzed" — combining:

* recursive part containment (materialized, magic-rewritten);
* cost roll-up with grouped SUM aggregation;
* stratified negation (base parts = parts that contain nothing);
* a pipelined utility module, showing two evaluation strategies
  co-operating through the transparent module interface (Section 5.6).

Run:  python examples/bill_of_materials.py
"""

from repro import Session

#: assembly(Parent, Child, Quantity) + part costs for leaf parts
CATALOG = """
assembly(bike, frame, 1).   assembly(bike, wheel, 2).
assembly(bike, drivetrain, 1).
assembly(wheel, rim, 1).    assembly(wheel, spoke, 36).
assembly(wheel, hub, 1).    assembly(wheel, tire, 1).
assembly(drivetrain, crank, 1). assembly(drivetrain, chain, 1).
assembly(drivetrain, cassette, 1).
assembly(hub, bearing, 2).  assembly(crank, bearing, 2).

cost(frame, 32000). cost(rim, 4500).  cost(spoke, 40).
cost(tire, 2800).   cost(chain, 1500). cost(cassette, 3900).
cost(bearing, 350).

part(bike). part(frame). part(wheel). part(drivetrain). part(rim).
part(spoke). part(hub). part(tire). part(crank). part(chain).
part(cassette). part(bearing).
"""

PROGRAM = """
module bom.
export contains(bf).
export base_part(f).
export direct_cost(bf).
contains(P, C) :- assembly(P, C, Q).
contains(P, C) :- assembly(P, M, Q), contains(M, C).
base_part(P) :- part(P), not has_children(P).
has_children(P) :- assembly(P, C, Q).
direct_cost(P, sum(<T>)) :- assembly(P, C, Q), cost(C, U), T = Q * U.
end_module.

module report.
export show_contains(b).
@pipelining.
show_contains(P) :- contains(P, C), write(C), write(" ").
end_module.
"""


def main() -> None:
    session = Session()
    session.consult_string(CATALOG + PROGRAM)

    print("Everything inside a wheel (contains(wheel, C)):")
    for answer in session.query("contains(wheel, C)"):
        print("   ", answer["C"])

    print("\nBase parts (no sub-assemblies — stratified negation):")
    for answer in sorted(session.query("base_part(P)"), key=lambda a: a["P"]):
        print("   ", answer["P"])

    print("\nDirect material cost per assembly (SUM over children, cents):")
    for answer in sorted(
        session.query("direct_cost(A, C)").all(), key=lambda a: -a["C"]
    ):
        print(f"    {answer['A']:>10}: {answer['C']:>7}")

    print("\nPipelined report module writing as it derives:")
    print("    bike contains: ", end="")
    session.query("show_contains(bike)").all()
    print()

    print("\nEvaluator statistics:", session.stats.snapshot())


if __name__ == "__main__":
    main()
