"""Exception hierarchy for the CORAL reproduction.

Every error raised by the library derives from :class:`CoralError`, so host
applications embedding the system (Section 6 of the paper) can catch a single
base class.  Subclasses mirror the major subsystems: the language front end,
the rewriting/optimization stage, run-time evaluation, and the storage
manager.
"""

from __future__ import annotations


class CoralError(Exception):
    """Base class for all errors raised by the CORAL reproduction."""


class ParseError(CoralError):
    """A syntax error in a declarative program or query.

    Carries the source position so interactive users (and tests) can point
    at the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RewriteError(CoralError):
    """The optimizer could not rewrite a program for the given query form."""


class StratificationError(RewriteError):
    """A program uses negation/aggregation in a way no supported evaluation
    strategy (stratified fixpoint or Ordered Search) can order."""


class EvaluationError(CoralError):
    """A run-time failure during query evaluation (e.g. unbound arithmetic)."""


class InstantiationError(EvaluationError):
    """A builtin required a ground argument that was unbound at call time."""


class ModuleError(CoralError):
    """Misuse of the module system: unknown exports, bad query forms,
    or a recursive invocation of a ``save_module`` module (Section 5.4.2)."""


class StorageError(CoralError):
    """A failure inside the page-based storage manager (the EXODUS stand-in).

    Every OS-level I/O failure (``OSError``: disk full, failed fsync, a
    vanished file) is wrapped as a ``StorageError`` with the original as
    ``__cause__``, so embedders never see raw ``OSError`` escape the storage
    layer.  Corruption detected by the undo journal's checksums also raises
    this class — recovery halts rather than applying garbage."""


class SessionClosedError(StorageError):
    """A query or update touched persistent storage after the owning
    :class:`~repro.api.session.Session` (or its storage server) was closed.

    Before this class existed, the dead storage stack silently re-opened
    page files on demand — a closed session could keep reading and writing
    disk pages nobody would ever flush.  A subclass of
    :class:`StorageError` so existing ``except StorageError`` handlers keep
    working.  In-memory relations remain usable after ``close()``."""


class TransactionError(StorageError):
    """Misuse of the transaction protocol: beginning a transaction while one
    is in progress (CORAL is single-user, Section 2), or committing/aborting
    with none active.  A subclass of :class:`StorageError` so existing
    ``except StorageError`` handlers keep working."""


class ResourceLimitError(CoralError):
    """A query exceeded its :class:`~repro.eval.limits.ResourceLimits` —
    wall-clock timeout, maximum derived tuples, or cooperative cancellation.

    Raised from inside the fixpoint / pipelined loops (checked at least once
    per iteration), leaving the session usable for subsequent queries: the
    partially evaluated module instance is discarded exactly as for any
    other abandoned cursor (Section 5.4.3)."""


class ExtensibilityError(CoralError):
    """Invalid registration of a user-defined type, relation, or index."""


class ProtocolError(CoralError):
    """A failure at the client-server wire boundary (:mod:`repro.server` /
    :mod:`repro.client`): a malformed or oversized frame, a codec version
    mismatch, an unknown request, or a connection that died mid-stream.

    Raised on the client when the server becomes unreachable (so a dropped
    connection surfaces as one clean exception rather than a raw
    ``OSError``), and on the server when a client speaks garbage — in which
    case only that connection is dropped; the server keeps serving."""


class SubscriptionError(CoralError):
    """A live query (:mod:`repro.live`) could not be registered, or a
    delivered subscription is no longer serviceable.

    Raised at SUBSCRIBE time when the queried program cannot be maintained
    incrementally — negation, aggregation, compiled or ordered-search
    evaluation, multiset semantics, cross-module calls, impure builtins,
    ``@save_module``/``@pipelining`` modules, or base relations without
    insertion marks (the same obstruction list that makes a memo entry
    evict-on-update; see docs/LIVE.md for the refusal matrix).  The message
    names the specific obstruction.  Also raised when polling a
    subscription that the server has closed (module unloaded, redefined
    predicate)."""


class ReadOnlyError(CoralError):
    """A write (INSERT/DELETE/CONSULT) was sent to a read-only replica
    (:mod:`repro.replication`).  Writes go to the primary; a failover-aware
    :class:`~repro.client.RemoteSession` reacts to this error by re-resolving
    which endpoint is currently primary (a ``PROMOTE`` may have moved it)."""


class FailoverError(ProtocolError):
    """A replica-set :class:`~repro.client.RemoteSession` exhausted its
    retry budget, or an in-flight cursor's connection died.

    Server-side cursors live on one server; when that connection is lost the
    cursor cannot be resumed elsewhere, so the in-flight result surfaces
    this typed error (rather than a raw socket error) and the caller re-runs
    the query — which *is* transparently routed to a live replica.  A
    subclass of :class:`ProtocolError` so existing transport-error handlers
    keep working."""


class WorkerRestartingError(CoralError):
    """A sharded router (:mod:`repro.sharding`) could not reach the worker
    that owns the requested data because that worker is down and being
    restarted by its supervisor.

    Deliberately *retriable*: the data still exists (or the write is still
    safe to re-send — routing is deterministic and the worker had not
    acknowledged it), so a client that waits a moment and re-sends the same
    request will normally succeed against the restarted worker.
    :class:`~repro.client.RemoteSession` does this automatically with a
    bounded backoff budget.  Distinct from :class:`ReadOnlyError` (the
    request went to the wrong *role* — re-route, don't retry) and from
    :class:`FailoverError` (an in-flight cursor died — re-issue the query,
    retrying the FETCH cannot help).  Not a :class:`ProtocolError` subclass:
    the wire conversation itself is healthy."""


class ShardRoutingError(CoralError):
    """A request could not be mapped onto the shard layout
    (:mod:`repro.sharding`): a consult that would straddle workers whose
    contents are already pinned apart, a module definition for a
    partitioned predicate, or a malformed shard-map entry.  Not retriable —
    the *placement* is wrong, and the fix is a shard-map change (see
    docs/SHARDING.md)."""
