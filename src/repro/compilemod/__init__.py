"""Compiled evaluation mode (paper Section 2).

*"We also developed a fully compiled version of CORAL, in which we generated
a C++ program from each user program.  (This is the approach taken by LDL.)
We found that this approach took a significantly longer time to compile
programs, and the resulting gain in execution speed was minimal.  We have
therefore focused on the interpreted version."*

This package reproduces that experiment (benchmark E12) in Python terms,
with two code generators over the same compilable class — see
``docs/COMPILED.md`` for the full architecture and fallback matrix:

* the **closure** backend (:class:`RuleCompiler` +
  :class:`CompiledSCCEvaluator`): one generated function per semi-naive
  rule — nested loops with inline equality guards instead of general
  unification — still driven by the ordinary delta-window fixpoint loop.
  This is the paper's experiment: specialization alone buys little,
  because the iteration machinery and Arg-object comparisons remain.
* the **push** backend (:class:`PushCompiler` + :class:`PushSCCEvaluator`,
  :mod:`.push`): one generated function per *SCC*, in the style of Brass &
  Stephan's push method.  Ground constants are interned to dense ints
  (:class:`repro.terms.hashcons.InternTable`); derived tuples are pushed
  through a LIFO worklist directly into consuming rule bodies; semi-naive
  evaluation falls out of push order instead of materialized delta
  relations; base relations are scanned batch-at-a-time over pre-interned
  tuples.  This is where compilation pays: the whole fixpoint runs as one
  specialized function over machine ints.

Modules opt in with ``@compiled.`` / ``@compiled(closure).`` /
``@compiled(push).``, or session-wide with ``Session(compiled="push")``.
The compilable class is the same for both backends and deliberately
restricted, like any realistic codegen: flat argument patterns (variables
and primitive constants), positive non-builtin literals plus comparisons
and arithmetic ``=``, and ground facts.  Rules outside the class fall back
to the interpreter *per rule*; every fallback is counted with its reason in
:class:`CompileStats` (``instance.compiler.stats``), shown by ``EXPLAIN``,
and surfaced through the ``compile.fallbacks`` profiler counter.
"""

from .codegen import CompileStats, RuleCompiler
from .evaluator import CompiledSCCEvaluator
from .push import (
    PushCompiler,
    PushProgram,
    PushSCCEvaluator,
    module_level_push_fallback,
)


def compile_report(compiled_form, is_builtin) -> CompileStats:
    """A dry-run :class:`CompileStats` for ``EXPLAIN``: what would compile,
    what would fall back (and why) if this module were instantiated now.

    For the push backend this also warms the per-plan program cache, so the
    report costs nothing extra at first call time.
    """
    if compiled_form.compiled == "push":
        reason = module_level_push_fallback(compiled_form)
        if reason is not None:
            stats = CompileStats(backend="push")
            total = sum(len(plan.rules) for plan in compiled_form.scc_plans)
            stats.record_fallback(reason, max(total, 1))
            return stats
        compiler = PushCompiler()
        for plan in compiled_form.scc_plans:
            compiler.program_for(plan, is_builtin)
        return compiler.stats
    compiler = RuleCompiler()
    for plan in compiled_form.scc_plans:
        for rule in (
            list(plan.once_rules) + list(plan.delta_rules) + list(plan.ext_rules)
        ):
            compiler.try_compile(rule)
    return compiler.stats


__all__ = [
    "CompileStats",
    "CompiledSCCEvaluator",
    "PushCompiler",
    "PushProgram",
    "PushSCCEvaluator",
    "RuleCompiler",
    "compile_report",
    "module_level_push_fallback",
]
