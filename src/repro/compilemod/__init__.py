"""Compiled evaluation mode (paper Section 2).

*"We also developed a fully compiled version of CORAL, in which we generated
a C++ program from each user program.  (This is the approach taken by LDL.)
We found that this approach took a significantly longer time to compile
programs, and the resulting gain in execution speed was minimal.  We have
therefore focused on the interpreted version."*

This package reproduces that experiment (benchmark E12) in Python terms:
:class:`RuleCompiler` generates specialized Python source per semi-naive
rule — nested loops with inline equality guards instead of general
unification and binding environments — and ``exec``-compiles it.  A module
annotated ``@compiled.`` evaluates through
:class:`CompiledSCCEvaluator`; everything else stays interpreted.

The compiled class is deliberately restricted, like any realistic codegen:
flat argument patterns (variables and primitive constants), positive
non-builtin literals plus comparisons and arithmetic ``=``, and ground
facts.  Rules outside the class silently fall back to the interpreter, and
a non-ground fact encountered at run time raises — compiled mode is for
ground Datalog, which is where its speed matters.
"""

from .codegen import CompileStats, RuleCompiler
from .evaluator import CompiledSCCEvaluator

__all__ = ["CompileStats", "CompiledSCCEvaluator", "RuleCompiler"]
