"""Python code generation for semi-naive rules.

Each compilable rule becomes one generator function: nested ``for`` loops
over relation scans, argument guards as plain ``==`` comparisons on Arg
objects, comparisons and arithmetic inlined on unwrapped Python values,
yielding ready-made head argument tuples.  The point (benchmark E12) is to
measure what specialization buys once unification, bindenvs and the trail
are out of the inner loop — and what it costs at 'consult' time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from ..errors import EvaluationError
from ..language.ast import Literal
from ..relations import MarkedRelation
from ..rewriting.seminaive import ScanKind, SNRule
from ..terms import Arg, Atom, Double, Int, Str, Var

#: comparison operators the code generator can inline
_COMPARISONS = {"<": "<", ">": ">", "<=": "<=", ">=": ">=", "==": "==", "!=": "!="}
#: arithmetic functors the code generator can inline
_ARITH = {"+": "+", "-": "-", "*": "*", "/": "/"}

_PRIMITIVES = (Int, Double, Str, Atom)


class NotCompilable(Exception):
    """The rule is outside the compiled class; fall back to interpretation."""


@dataclass
class CompileStats:
    """Consult-time accounting for the compiled-vs-interpreted comparison.

    ``fallbacks`` maps a human-readable reason (the :class:`NotCompilable`
    message) to how many rules fell back to the interpreter for it, so
    silent per-rule fallback is visible through ``EXPLAIN``, the profiler's
    ``compile.fallbacks`` counter, and ``instance.compiler.stats``.
    """

    rules_compiled: int = 0
    rules_interpreted: int = 0
    codegen_seconds: float = 0.0
    generated_lines: int = 0
    #: which generator produced the stats: "closure" or "push"
    backend: str = "closure"
    #: fallback reason -> number of rules interpreted for that reason
    fallbacks: Dict[str, int] = field(default_factory=dict)

    def record_fallback(self, reason: str, count: int = 1) -> None:
        self.rules_interpreted += count
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count

    def merge(self, other: "CompileStats") -> None:
        self.rules_compiled += other.rules_compiled
        self.rules_interpreted += other.rules_interpreted
        self.codegen_seconds += other.codegen_seconds
        self.generated_lines += other.generated_lines
        for reason, count in other.fallbacks.items():
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count


def note_fallback(obs, rule, reason: str, backend: str) -> None:
    """Surface one rule's interpreter fallback through the observability
    plane: a trace event plus the ``compile.fallbacks`` counter (labelled by
    reason) when a metrics registry is installed."""
    if obs is None:
        return
    event = getattr(obs, "event", None)
    if event is not None:
        event(
            "compile.fallback",
            cat="compile",
            backend=backend,
            rule=str(rule),
            reason=reason,
        )
    registry = getattr(obs, "registry", None)
    if registry is not None:
        registry.counter(
            "compile.fallbacks",
            "rules interpreted under a compiled backend, by reason",
            ("reason",),
        ).inc(1, reason)


@dataclass
class CompiledRule:
    """A compiled rule body: call ``run(scope, ranges)`` to get an iterator
    of head argument tuples."""

    source: str
    run: Callable
    head_pred: str
    head_arity: int


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 1

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self, name: str) -> str:
        header = f"def {name}(scope, ranges, consts):\n"
        body = "\n".join(self.lines) if self.lines else "    pass"
        return header + body + "\n"


class RuleCompiler:
    """Generates Python for one semi-naive rule at a time."""

    def __init__(self) -> None:
        self.stats = CompileStats()

    def try_compile(self, rule: SNRule, obs=None) -> Optional[CompiledRule]:
        """A :class:`CompiledRule`, or None when the rule falls outside the
        compiled class (aggregation, negation, functor arguments, builtins
        beyond comparisons/arithmetic-=).  Fallbacks are recorded by reason
        in :attr:`stats` and, when ``obs`` is given, on the observability
        plane (:func:`note_fallback`)."""
        started = time.perf_counter()
        try:
            compiled = self._compile(rule)
        except NotCompilable as exc:
            reason = str(exc) or "not compilable"
            self.stats.record_fallback(reason)
            note_fallback(obs, rule, reason, self.stats.backend)
            return None
        finally:
            self.stats.codegen_seconds += time.perf_counter() - started
        self.stats.rules_compiled += 1
        self.stats.generated_lines += compiled.source.count("\n")
        return compiled

    # -- the code generator -----------------------------------------------------

    def _compile(self, rule: SNRule) -> CompiledRule:
        if rule.head_aggregates:
            raise NotCompilable("aggregation")
        emitter = _Emitter()
        consts: List[Arg] = []
        #: vid -> python variable name, assigned at first binding site
        names: Dict[int, str] = {}
        loop_index = 0
        in_loop = False

        def const_ref(value: Arg) -> str:
            consts.append(value)
            return f"consts[{len(consts) - 1}]"

        for item in rule.body:
            literal = item.literal
            if literal.negated:
                raise NotCompilable("negation")
            if literal.pred in _COMPARISONS and literal.arity == 2:
                if not in_loop:
                    raise NotCompilable("guard before the first scan literal")
                self._emit_comparison(emitter, literal, names, const_ref)
                continue
            if literal.pred == "=" and literal.arity == 2:
                if not in_loop:
                    raise NotCompilable("assignment before the first scan literal")
                self._emit_assignment(emitter, literal, names, const_ref)
                continue
            if literal.pred in ("+", "-", "*", "/"):
                raise NotCompilable("bare arithmetic literal")
            self._emit_scan(
                emitter, item, loop_index, names, const_ref
            )
            loop_index += 1
            in_loop = True

        head_parts = []
        for arg in rule.head.args:
            head_parts.append(self._value_ref(arg, names, const_ref, wrap=True))
        emitter.emit(f"yield ({', '.join(head_parts)}{',' if head_parts else ''})")

        name = f"_rule_{rule.head.pred}_{rule.source_index}"
        for bad in "-$.":
            name = name.replace(bad, "_")
        source = emitter.source(name)
        namespace: Dict[str, object] = {
            "Int": Int,
            "Double": Double,
            "MarkedRelation": MarkedRelation,
            "_nonground_error": _nonground_error,
            "_KINDS": {kind.value: kind for kind in ScanKind},
            "_free": Var("_"),
        }
        exec(compile(source, f"<compiled {name}>", "exec"), namespace)
        generated = namespace[name]

        def run(scope, ranges, _fn=generated, _consts=tuple(consts)):
            return _fn(scope, ranges, _consts)

        return CompiledRule(source, run, rule.head.pred, len(rule.head.args))

    # -- pieces ----------------------------------------------------------------------

    def _emit_scan(self, emitter, item, loop_index, names, const_ref) -> None:
        literal = item.literal
        tuple_var = f"_t{loop_index}"
        probe_parts: List[str] = []
        for arg in literal.args:
            if isinstance(arg, Var):
                if arg.vid in names:
                    probe_parts.append(names[arg.vid])
                else:
                    probe_parts.append("None")
            elif isinstance(arg, _PRIMITIVES):
                probe_parts.append(const_ref(arg))
            else:
                raise NotCompilable(f"structured argument {arg}")
        emitter.emit(
            f"_rel{loop_index} = scope.relation("
            f"{literal.pred!r}, {literal.arity})"
        )
        probe_items = ", ".join(
            part if part != "None" else "_free" for part in probe_parts
        )
        emitter.emit(
            f"_probe{loop_index} = [{probe_items}{',' if probe_parts else ''}]"
        )
        kind = item.kind
        emitter.emit(
            f"_rng{loop_index} = ranges(({literal.pred!r}, {literal.arity}), "
            f"_KINDS[{kind.value!r}]) if ranges is not None else None"
        )
        emitter.emit(
            f"_cursor{loop_index} = (_rel{loop_index}.scan(_probe{loop_index}, "
            f"None, since=_rng{loop_index}[0], until=_rng{loop_index}[1]) "
            f"if (_rng{loop_index} is not None and isinstance(_rel{loop_index}, "
            f"MarkedRelation)) else _rel{loop_index}.scan(_probe{loop_index}, None))"
        )
        emitter.emit(f"for {tuple_var} in _cursor{loop_index}:")
        emitter.indent += 1
        emitter.emit(f"if not {tuple_var}.is_ground(): _nonground_error({tuple_var})")
        for position, arg in enumerate(literal.args):
            access = f"{tuple_var}.args[{position}]"
            if isinstance(arg, Var):
                existing = names.get(arg.vid)
                if existing is None:
                    fresh = f"v{arg.vid}"
                    names[arg.vid] = fresh
                    emitter.emit(f"{fresh} = {access}")
                else:
                    emitter.emit(f"if {existing} != {access}: continue")
            else:
                emitter.emit(f"if {const_ref(arg)} != {access}: continue")

    def _emit_comparison(self, emitter, literal, names, const_ref) -> None:
        left = self._numeric_expr(literal.args[0], names, const_ref)
        right = self._numeric_expr(literal.args[1], names, const_ref)
        op = _COMPARISONS[literal.pred]
        emitter.emit(f"if not (({left}) {op} ({right})): continue")

    def _emit_assignment(self, emitter, literal, names, const_ref) -> None:
        target, expr = literal.args
        if not isinstance(target, Var):
            raise NotCompilable("assignment target must be a variable")
        value = self._numeric_expr(expr, names, const_ref)
        existing = names.get(target.vid)
        if existing is not None:
            emitter.emit(f"if {existing}.value != ({value}): continue")
            return
        fresh = f"v{target.vid}"
        names[target.vid] = fresh
        emitter.emit(f"_n = {value}")
        emitter.emit(
            f"{fresh} = Int(_n) if isinstance(_n, int) else Double(_n)"
        )

    def _numeric_expr(self, arg: Arg, names, const_ref) -> str:
        """A Python expression computing the numeric value of an arithmetic
        term over already-bound variables."""
        if isinstance(arg, Var):
            name = names.get(arg.vid)
            if name is None:
                raise NotCompilable(f"unbound variable {arg} in expression")
            return f"{name}.value"
        if isinstance(arg, (Int, Double)):
            return repr(arg.value)
        if isinstance(arg, (Str, Atom)):
            return repr(arg.value)
        from ..terms import Functor

        if isinstance(arg, Functor) and arg.name in _ARITH and len(arg.args) == 2:
            left = self._numeric_expr(arg.args[0], names, const_ref)
            right = self._numeric_expr(arg.args[1], names, const_ref)
            return f"(({left}) {_ARITH[arg.name]} ({right}))"
        raise NotCompilable(f"expression {arg}")

    def _value_ref(self, arg: Arg, names, const_ref, wrap: bool) -> str:
        if isinstance(arg, Var):
            name = names.get(arg.vid)
            if name is None:
                raise NotCompilable(f"head variable {arg} not bound by the body")
            return name
        if isinstance(arg, _PRIMITIVES):
            return const_ref(arg)
        raise NotCompilable(f"structured head argument {arg}")


def _nonground_error(tup) -> None:
    raise EvaluationError(
        f"compiled mode requires ground facts; found {tup} "
        f"(use the interpreted evaluator for non-ground data)"
    )
