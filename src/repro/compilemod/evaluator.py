"""The compiled fixpoint evaluator: SCC evaluation driving generated code.

Shares all of :class:`repro.eval.fixpoint.SCCEvaluator`'s iteration and
delta-window machinery; only the per-rule application is swapped for the
generated function when the rule compiled.  Rules outside the compiled
class (and all aggregation rules) run through the interpreter unchanged —
per-rule fallback, as a realistic codegen would do.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..eval.context import LocalScope
from ..eval.fixpoint import SCCEvaluator, SCCPlan
from ..relations import Tuple
from .codegen import CompiledRule, RuleCompiler


class CompiledSCCEvaluator(SCCEvaluator):
    """An :class:`SCCEvaluator` that runs generated Python where possible."""

    def __init__(
        self,
        scope: LocalScope,
        plan: SCCPlan,
        strategy: str = "bsn",
        use_backjumping: bool = True,
        compiler: Optional[RuleCompiler] = None,
    ) -> None:
        super().__init__(scope, plan, strategy, use_backjumping)
        self.compiler = compiler if compiler is not None else RuleCompiler()
        self._compiled: Dict[int, CompiledRule] = {}
        for rule in (list(plan.once_rules) + list(plan.delta_rules)
                     + list(plan.ext_rules)):
            compiled = self.compiler.try_compile(rule, obs=scope.ctx.obs)
            if compiled is not None:
                self._compiled[id(rule)] = compiled

    def _apply(self, rule, executor) -> None:
        compiled = self._compiled.get(id(rule))
        if compiled is None:
            super()._apply(rule, executor)
            return
        stats = self.scope.ctx.stats
        stats.rule_applications += 1
        obs = self.scope.ctx.obs
        entry = started = None
        if obs is not None:
            entry, started = obs.begin_rule(rule)
        insert = self.scope.insert_fact
        pred, arity = compiled.head_pred, compiled.head_arity
        for head_args in compiled.run(self.scope, self._ranges):
            stats.inferences += 1
            inserted = insert(pred, arity, Tuple(head_args))
            if entry is not None:
                if inserted:
                    entry.derived += 1
                else:
                    entry.duplicates += 1
        if entry is not None:
            obs.end_rule(entry, started)
