"""The push-based whole-SCC compiler (Brass & Stephan's "push method").

The closure backend (:mod:`.codegen`) specializes one semi-naive rule at a
time and still pays the full fixpoint machinery between rules: delta
windows, relation scans, per-rule dispatch.  The push method compiles the
*entire SCC* into one Python function in which every derived tuple is
pushed directly into the rule bodies that consume its predicate:

* ground constants are interned to dense ints (:class:`~repro.terms.hashcons.InternTable`)
  before the run, so the hot loop compares and hashes machine ints — tuple-id
  arithmetic instead of object unification;
* semi-naive evaluation falls out of *push order*: a LIFO worklist holds
  derived tuples, and each popped tuple joins against the full extents
  accumulated so far.  A tuple is inserted into its predicate's extent
  (and indexes) *before* it is pushed, so for any pair of tuples the one
  popped later sees the other — every join combination is produced at
  least once, and a ``seen`` set of interned tuples removes repeats.  No
  delta relations are materialized and no iteration barrier exists;
* base (non-SCC) relations are materialized once into pre-interned column
  tuples ("batches") with hash indexes built per bound-position pattern —
  batch-at-a-time scans instead of cursor calls per probe.

The compilable class is the closure backend's: flat argument patterns over
primitive constants, positive non-builtin literals, comparisons and
arithmetic ``=`` after the first scan, no aggregation.  Out-of-class rules
fall back *per rule* to the interpreter: non-recursive ones run before the
push phase (their heads become push seeds), recursive ones run in the
ordinary delta loop afterwards, with the pushed rules suppressed for the
first iteration (everything push derived is "new", so the triangular
versions with ``prev = 0`` cover the cross product exactly once).  Every
fallback is recorded with its reason in :class:`~.codegen.CompileStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple as PyTuple

from ..eval.context import LocalScope
from ..eval.fixpoint import SCCEvaluator, SCCPlan
from ..relations import Tuple
from ..rewriting.seminaive import recursive_body_positions
from ..terms import Arg, Var
from ..terms.hashcons import InternTable
from .codegen import (
    _ARITH,
    _COMPARISONS,
    _PRIMITIVES,
    CompileStats,
    NotCompilable,
    _nonground_error,
    note_fallback,
)

PredKey = PyTuple[str, int]

#: flush the pending-fact count into EvalStats (and check resource limits)
#: every this many new facts / this many derivation attempts
_TICK_MASK = 1023
_ATTEMPT_MASK = 8191


@dataclass
class PushProgram:
    """One SCC compiled to a single push-evaluation function.

    ``fn(seeds, batches, consts, vals, intern_num, tick)`` returns
    ``(per_pred, attempts)`` where ``per_pred[i]`` is ``(all_tuples,
    seed_count)`` for ``out_preds[i]`` — interned tuples beyond the seed
    prefix are the new facts to flush back into relations.  ``fn`` is None
    when no rule of the SCC was compilable (the evaluator then runs fully
    interpreted); ``fallbacks`` always carries the per-rule reasons.
    """

    source: str
    fn: Optional[Callable]
    #: every predicate of the SCC, in the order the function reports them
    out_preds: List[PredKey]
    #: non-SCC body predicates, in batch order
    static_preds: List[PredKey]
    #: rule constants to intern at run start (``consts[k]`` in generated code)
    const_args: List[Arg]
    #: indexes into ``plan.rules`` of the rules fused into the program
    pushed_sources: FrozenSet[int]
    rules_compiled: int = 0
    #: out-of-class rules with their :class:`NotCompilable` reasons
    fallbacks: List[PyTuple[object, str]] = field(default_factory=list)
    codegen_seconds: float = 0.0


def module_level_push_fallback(compiled_form) -> Optional[str]:
    """A reason the push backend cannot evaluate this module at all (the
    whole module runs interpreted), or None when push applies per-SCC."""
    if compiled_form.save_module:
        return "save_module retains state across calls"
    if compiled_form.constraints:
        return "aggregate selection constraints"
    if compiled_form.multiset_preds:
        return "multiset semantics"
    return None


class PushCompiler:
    """Compiles :class:`SCCPlan`\\ s to :class:`PushProgram`\\ s, caching the
    program on the plan (plans are cached per query form by the module
    manager, so codegen happens once, not once per call)."""

    def __init__(self) -> None:
        self.stats = CompileStats(backend="push")

    def program_for(
        self, plan: SCCPlan, is_builtin, obs=None
    ) -> Optional[PushProgram]:
        program = getattr(plan, "push_program", None)
        fresh = program is None
        if fresh:
            started = time.perf_counter()
            program = _PushCodegen(plan, is_builtin).build()
            program.codegen_seconds = time.perf_counter() - started
            plan.push_program = program
        self.stats.rules_compiled += program.rules_compiled
        for rule, reason in program.fallbacks:
            self.stats.record_fallback(reason)
            note_fallback(obs, rule, reason, "push")
        if fresh:
            self.stats.codegen_seconds += program.codegen_seconds
            self.stats.generated_lines += program.source.count("\n")
        return program if program.fn is not None else None


class _Chunk:
    """Relative-indent line buffer for one rule body; insert sites are
    placeholders resolved once the whole SCC's index set is known."""

    def __init__(self) -> None:
        self.lines: List[PyTuple[int, object]] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append((self.indent, text))

    def insert(self, out_index: int, head_exprs: Sequence[str]) -> None:
        self.lines.append((self.indent, ("insert", out_index, tuple(head_exprs))))


class _PushCodegen:
    """Generates the push function for one SCC."""

    def __init__(self, plan: SCCPlan, is_builtin) -> None:
        self.plan = plan
        self.is_builtin = is_builtin
        self.out_preds: List[PredKey] = sorted(plan.preds)
        self.out_index = {key: i for i, key in enumerate(self.out_preds)}
        #: recursive predicates get worklist tags
        self.dyn_tags = {
            key: tag for tag, key in enumerate(sorted(plan.recursive))
        }
        self.static_preds: List[PredKey] = []
        self._static_of: Dict[PredKey, int] = {}
        #: (batch index, bound positions) -> generated index name
        self.static_indexes: Dict[PyTuple[int, tuple], str] = {}
        #: (out pred index, bound positions) -> generated index name
        self.dyn_indexes: Dict[PyTuple[int, tuple], str] = {}
        self.const_args: List[Arg] = []
        self._const_ids: Dict[object, int] = {}
        self._counter = 0

    # -- shared helpers -------------------------------------------------------

    def _const(self, arg: Arg) -> str:
        key = arg.ground_key()
        ident = self._const_ids.get(key)
        if ident is None:
            ident = len(self.const_args)
            self._const_ids[key] = ident
            self.const_args.append(arg)
        return f"consts[{ident}]"

    def _static_batch(self, key: PredKey) -> int:
        index = self._static_of.get(key)
        if index is None:
            index = len(self.static_preds)
            self._static_of[key] = index
            self.static_preds.append(key)
        return index

    def _static_index(self, batch: int, positions: tuple) -> str:
        name = self.static_indexes.get((batch, positions))
        if name is None:
            name = f"si{len(self.static_indexes)}"
            self.static_indexes[(batch, positions)] = name
        return name

    def _dyn_index(self, out_i: int, positions: tuple) -> str:
        name = self.dyn_indexes.get((out_i, positions))
        if name is None:
            name = f"di{len(self.dyn_indexes)}"
            self.dyn_indexes[(out_i, positions)] = name
        return name

    # -- classification (mirrors the closure backend's compilable class) -------

    def _classify(self, rule) -> None:
        if rule.head_aggregates:
            raise NotCompilable("aggregation")
        bound: Set[int] = set()
        scans = 0
        for literal in rule.body:
            if literal.negated:
                raise NotCompilable("negation")
            if literal.pred in _COMPARISONS and literal.arity == 2:
                if not scans:
                    raise NotCompilable("guard before the first scan literal")
                self._check_expr(literal.args[0], bound)
                self._check_expr(literal.args[1], bound)
                continue
            if literal.pred == "=" and literal.arity == 2:
                if not scans:
                    raise NotCompilable(
                        "assignment before the first scan literal"
                    )
                target, expr = literal.args
                if not isinstance(target, Var):
                    raise NotCompilable("assignment target must be a variable")
                self._check_expr(expr, bound)
                bound.add(target.vid)
                continue
            if self.is_builtin(literal.pred, literal.arity):
                raise NotCompilable(f"builtin {literal.pred}/{literal.arity}")
            for arg in literal.args:
                if isinstance(arg, Var):
                    bound.add(arg.vid)
                elif not isinstance(arg, _PRIMITIVES):
                    raise NotCompilable(f"structured argument {arg}")
            scans += 1
        for arg in rule.head.args:
            if isinstance(arg, Var):
                if arg.vid not in bound:
                    raise NotCompilable(
                        f"head variable {arg} not bound by the body"
                    )
            elif not isinstance(arg, _PRIMITIVES):
                raise NotCompilable(f"structured head argument {arg}")

    def _check_expr(self, arg: Arg, bound: Set[int]) -> None:
        if isinstance(arg, Var):
            if arg.vid not in bound:
                raise NotCompilable(f"unbound variable {arg} in expression")
            return
        if isinstance(arg, _PRIMITIVES):
            return
        from ..terms import Functor

        if isinstance(arg, Functor) and arg.name in _ARITH and len(arg.args) == 2:
            self._check_expr(arg.args[0], bound)
            self._check_expr(arg.args[1], bound)
            return
        raise NotCompilable(f"expression {arg}")

    # -- per-rule emission -----------------------------------------------------

    def _expr(self, arg: Arg, names: Dict[int, str]) -> str:
        """A Python expression over *raw values*: variables go through the
        intern table's ``vals`` list, constants are inlined literals."""
        if isinstance(arg, Var):
            name = names.get(arg.vid)
            if name is None:
                raise NotCompilable(f"unbound variable {arg} in expression")
            return f"vals[{name}]"
        if isinstance(arg, _PRIMITIVES):
            return repr(arg.value)
        from ..terms import Functor

        if isinstance(arg, Functor) and arg.name in _ARITH and len(arg.args) == 2:
            left = self._expr(arg.args[0], names)
            right = self._expr(arg.args[1], names)
            return f"(({left}) {_ARITH[arg.name]} ({right}))"
        raise NotCompilable(f"expression {arg}")

    def _bind_from_tuple(
        self, chunk: _Chunk, tup: str, args, names: Dict[int, str],
        suffix: int, skip=frozenset(),
    ) -> None:
        """Bind fresh variables from (and guard known positions of) an
        already-available interned tuple.  Guards nest ``if`` blocks rather
        than ``continue`` so chunks compose at any loop depth."""
        for position, arg in enumerate(args):
            if position in skip:
                continue
            access = f"{tup}[{position}]"
            if isinstance(arg, Var):
                existing = names.get(arg.vid)
                if existing is None:
                    fresh = f"v{arg.vid}c{suffix}"
                    names[arg.vid] = fresh
                    chunk.emit(f"{fresh} = {access}")
                else:
                    chunk.emit(f"if {existing} == {access}:")
                    chunk.indent += 1
            else:
                chunk.emit(f"if {access} == {self._const(arg)}:")
                chunk.indent += 1

    def _emit_scan(
        self, chunk: _Chunk, literal, names: Dict[int, str], suffix: int
    ) -> None:
        bound_positions: List[int] = []
        key_exprs: List[str] = []
        for position, arg in enumerate(literal.args):
            if isinstance(arg, Var):
                name = names.get(arg.vid)
                if name is not None:
                    bound_positions.append(position)
                    key_exprs.append(name)
            else:
                bound_positions.append(position)
                key_exprs.append(self._const(arg))
        self._counter += 1
        tup = f"_t{self._counter}"
        key = literal.key
        if key in self.out_index:
            out_i = self.out_index[key]
            if bound_positions:
                index = self._dyn_index(out_i, tuple(bound_positions))
                chunk.emit(
                    f"for {tup} in {index}.get(({', '.join(key_exprs)},), ()):"
                )
            else:
                chunk.emit(f"for {tup} in all{out_i}:")
        else:
            batch = self._static_batch(key)
            if bound_positions:
                index = self._static_index(batch, tuple(bound_positions))
                chunk.emit(
                    f"for {tup} in {index}.get(({', '.join(key_exprs)},), ()):"
                )
            else:
                chunk.emit(f"for {tup} in _b{batch}:")
        chunk.indent += 1
        self._bind_from_tuple(
            chunk, tup, literal.args, names, suffix, skip=set(bound_positions)
        )

    def _emit_rule(self, rule, pushed_position: Optional[int]) -> _Chunk:
        """One chunk: either a batch-loop once rule (``pushed_position`` is
        None) or the handler for one recursive body occurrence, joining the
        pushed tuple ``_t`` against everything else."""
        chunk = _Chunk()
        self._counter += 1
        suffix = self._counter
        names: Dict[int, str] = {}
        if pushed_position is not None:
            self._bind_from_tuple(
                chunk, "_t", rule.body[pushed_position].args, names, suffix
            )
        for position, literal in enumerate(rule.body):
            if position == pushed_position:
                continue
            if literal.pred in _COMPARISONS and literal.arity == 2:
                left = self._expr(literal.args[0], names)
                right = self._expr(literal.args[1], names)
                chunk.emit(
                    f"if ({left}) {_COMPARISONS[literal.pred]} ({right}):"
                )
                chunk.indent += 1
                continue
            if literal.pred == "=" and literal.arity == 2:
                target, expr = literal.args
                value = self._expr(expr, names)
                existing = names.get(target.vid)
                if existing is not None:
                    chunk.emit(f"if vals[{existing}] == ({value}):")
                    chunk.indent += 1
                    continue
                self._counter += 1
                tmp = f"_n{self._counter}"
                fresh = f"v{target.vid}c{suffix}"
                names[target.vid] = fresh
                chunk.emit(f"{tmp} = {value}")
                chunk.emit(f"{fresh} = intern_num({tmp})")
                continue
            self._emit_scan(chunk, literal, names, suffix)
        head_exprs = [
            names[arg.vid] if isinstance(arg, Var) else self._const(arg)
            for arg in rule.head.args
        ]
        chunk.insert(self.out_index[rule.head.key], head_exprs)
        return chunk

    # -- whole-SCC assembly ----------------------------------------------------

    def build(self) -> PushProgram:
        pushed: List[int] = []
        fallbacks: List[PyTuple[object, str]] = []
        once_chunks: List[_Chunk] = []
        handler_chunks: Dict[int, List[_Chunk]] = {}
        for index, rule in enumerate(self.plan.rules):
            try:
                self._classify(rule)
                positions = recursive_body_positions(
                    rule, self.plan.recursive, self.is_builtin
                )
                if not positions:
                    once_chunks.append(self._emit_rule(rule, None))
                else:
                    for position in positions:
                        tag = self.dyn_tags[rule.body[position].key]
                        handler_chunks.setdefault(tag, []).append(
                            self._emit_rule(rule, position)
                        )
            except NotCompilable as exc:
                fallbacks.append((rule, str(exc) or "not compilable"))
                continue
            pushed.append(index)

        if not pushed:
            return PushProgram(
                source="",
                fn=None,
                out_preds=self.out_preds,
                static_preds=[],
                const_args=[],
                pushed_sources=frozenset(),
                rules_compiled=0,
                fallbacks=fallbacks,
            )

        lines: List[str] = ["def _push(seeds, batches, consts, vals, intern_num, tick):"]

        def w(indent: int, text: str) -> None:
            lines.append("    " * (indent + 1) + text)

        w(0, "_att = 0")
        w(0, "_new = 0")
        for i in range(len(self.out_preds)):
            w(0, f"seen{i} = set()")
            w(0, f"all{i} = []")
        for batch in range(len(self.static_preds)):
            w(0, f"_b{batch} = batches[{batch}]")
        for (batch, positions), name in self.static_indexes.items():
            w(0, f"{name} = {{}}")
            w(0, f"for _x in _b{batch}:")
            key = ", ".join(f"_x[{p}]" for p in positions)
            w(1, f"{name}.setdefault(({key},), []).append(_x)")
        for name in self.dyn_indexes.values():
            w(0, f"{name} = {{}}")
        w(0, "stack = []")
        for i, key in enumerate(self.out_preds):
            w(0, f"for _x in seeds[{i}]:")
            w(1, f"if _x not in seen{i}:")
            w(2, f"seen{i}.add(_x)")
            w(2, f"all{i}.append(_x)")
            for update in self._dyn_updates(i, "_x"):
                w(2, update)
            if key in self.dyn_tags:
                w(2, f"stack.append(({self.dyn_tags[key]}, _x))")
            w(0, f"_s{i} = len(all{i})")
        for chunk in once_chunks:
            self._splice(w, chunk, base=0)
        if handler_chunks:
            w(0, "while stack:")
            w(1, "_tag, _t = stack.pop()")
            keyword = "if"
            for tag in sorted(handler_chunks):
                w(1, f"{keyword} _tag == {tag}:")
                keyword = "elif"
                for chunk in handler_chunks[tag]:
                    self._splice(w, chunk, base=2)
        w(0, f"tick(_new & {_TICK_MASK})")
        per_pred = ", ".join(
            f"(all{i}, _s{i})" for i in range(len(self.out_preds))
        )
        trailing = "," if len(self.out_preds) == 1 else ""
        w(0, f"return ({per_pred}{trailing}), _att")

        source = "\n".join(lines) + "\n"
        namespace: Dict[str, object] = {}
        exec(compile(source, "<push scc>", "exec"), namespace)
        return PushProgram(
            source=source,
            fn=namespace["_push"],
            out_preds=self.out_preds,
            static_preds=list(self.static_preds),
            const_args=list(self.const_args),
            pushed_sources=frozenset(pushed),
            rules_compiled=len(pushed),
            fallbacks=fallbacks,
        )

    def _dyn_updates(self, out_i: int, var: str) -> List[str]:
        updates = []
        for (index_pred, positions), name in self.dyn_indexes.items():
            if index_pred == out_i:
                key = ", ".join(f"{var}[{p}]" for p in positions)
                updates.append(
                    f"{name}.setdefault(({key},), []).append({var})"
                )
        return updates

    def _splice(self, w, chunk: _Chunk, base: int) -> None:
        for indent, payload in chunk.lines:
            if isinstance(payload, str):
                w(base + indent, payload)
            else:
                _, out_i, head_exprs = payload
                self._render_insert(w, base + indent, out_i, head_exprs)

    def _render_insert(
        self, w, indent: int, out_i: int, head_exprs: Sequence[str]
    ) -> None:
        head = f"({', '.join(head_exprs)}{',' if head_exprs else ''})"
        w(indent, "_att += 1")
        w(indent, f"if not (_att & {_ATTEMPT_MASK}):")
        w(indent + 1, "tick(0)")
        w(indent, f"_h = {head}")
        w(indent, f"if _h not in seen{out_i}:")
        w(indent + 1, f"seen{out_i}.add(_h)")
        w(indent + 1, f"all{out_i}.append(_h)")
        for update in self._dyn_updates(out_i, "_h"):
            w(indent + 1, update)
        key = self.out_preds[out_i]
        if key in self.dyn_tags:
            w(indent + 1, f"stack.append(({self.dyn_tags[key]}, _h))")
        w(indent + 1, "_new += 1")
        w(indent + 1, f"if not (_new & {_TICK_MASK}):")
        w(indent + 2, f"tick({_TICK_MASK + 1})")


class PushSCCEvaluator(SCCEvaluator):
    """An :class:`SCCEvaluator` whose first fixpoint run is the compiled
    push program; out-of-class rules interleave through the interpreter.

    Sequencing per run: (1) out-of-class once rules run interpreted — their
    heads land in the local relations and become push seeds alongside the
    magic seed; (2) the push function runs to its fixpoint over interned
    tuples, and new facts are flushed back into the relations; (3) if any
    recursive rule was *not* pushed, the ordinary delta loop runs with the
    pushed rules suppressed for the first iteration (``prev = 0`` makes the
    last-delta triangular version cover the full cross product, so the
    interpreted rules see every pushed fact exactly once); from the second
    iteration on, all rules participate over real delta windows, so
    interpreter-derived facts flow back into the pushed rules' logic too.
    """

    def __init__(
        self,
        scope: LocalScope,
        plan: SCCPlan,
        strategy: str = "bsn",
        use_backjumping: bool = True,
        compiler: Optional[PushCompiler] = None,
    ) -> None:
        super().__init__(scope, plan, strategy, use_backjumping)
        self.compiler = compiler if compiler is not None else PushCompiler()
        self._program = self.compiler.program_for(
            plan, scope.ctx.is_builtin, obs=scope.ctx.obs
        )
        self._pushed_sources: FrozenSet[int] = (
            self._program.pushed_sources
            if self._program is not None
            else frozenset()
        )
        self._suppress_pushed = False
        self._unpushed_delta = any(
            rule.source_index not in self._pushed_sources
            for _, group in self._groups
            for rule, _ in group
        )

    # -- interpreter interleaving ---------------------------------------------

    def _apply(self, rule, executor) -> None:
        if self._suppress_pushed and rule.source_index in self._pushed_sources:
            return
        super()._apply(rule, executor)

    def iterations(self):
        if self._program is None or self._started:
            # nothing compiled, or a resumption: plain interpreted fixpoint
            yield from super().iterations()
            return
        yield self._push_seed()
        if not self._unpushed_delta:
            # every recursive rule was fused into the push program; its
            # fixpoint is already complete — no verification pass needed
            self._advance_ext_seen()
            return
        self._suppress_pushed = True
        try:
            inner = (
                self._naive_loop()
                if self.strategy == "naive"
                else self._delta_loop()
            )
            for new_facts in inner:
                # the first interpreted iteration has run; re-enable the
                # pushed rules so later deltas flow through all rules
                self._suppress_pushed = False
                yield new_facts
        finally:
            self._suppress_pushed = False
        if self.strategy == "naive":
            self._advance_ext_seen()

    def _push_seed(self) -> int:
        obs = self.scope.ctx.obs
        seed_started = obs.begin_span() if obs is not None else None
        self._started = True
        for pred in self.plan.recursive:
            self.prev[pred] = 0
        for rule, executor in self._once_executors:
            if rule.source_index not in self._pushed_sources:
                self._apply(rule, executor)
        self._run_push()
        for pred in self.plan.recursive:
            self.cur[pred] = self._relation(pred).mark()
        produced = sum(
            self._relation(pred).count_since(0) for pred in self.plan.recursive
        )
        if obs is not None:
            obs.end_span(
                "fixpoint.seed", "eval", seed_started, scc=self._obs_label()
            )
        return produced

    # -- the push run ----------------------------------------------------------

    def _run_push(self) -> None:
        program = self._program
        scope = self.scope
        ctx = scope.ctx
        stats = ctx.stats
        limits = ctx.limits
        intern = InternTable()
        intern_arg = intern.intern

        consts = [intern_arg(arg) for arg in program.const_args]
        batches = []
        for key in program.static_preds:
            batch = []
            append = batch.append
            for tup in scope.relation(*key).scan():
                if not tup.is_ground():
                    _nonground_error(tup)
                append(tuple(intern_arg(arg) for arg in tup.args))
            batches.append(batch)
        seeds = []
        for key in program.out_preds:
            seed = []
            append = seed.append
            for tup in scope.local[key].scan():
                if not tup.is_ground():
                    _nonground_error(tup)
                append(tuple(intern_arg(arg) for arg in tup.args))
            seeds.append(seed)

        def tick(count: int) -> None:
            # the push loop bypasses scope.insert_fact; account for derived
            # facts (and consult the resource guard) in batches instead
            stats.facts_inserted += count
            if limits is not None:
                limits.checkpoint(stats)

        obs = ctx.obs
        if obs is None:
            per_pred, attempts = program.fn(
                seeds, batches, consts, intern.vals, intern.intern_num, tick
            )
        else:
            with obs.span("fixpoint.push", cat="eval", scc=self._obs_label()):
                per_pred, attempts = program.fn(
                    seeds, batches, consts, intern.vals, intern.intern_num, tick
                )

        getter = intern.args.__getitem__
        make = Tuple.ground
        new_facts = 0
        for key, (all_tuples, seed_count) in zip(program.out_preds, per_pred):
            fresh = all_tuples[seed_count:]
            if not fresh:
                continue
            # seen was seeded from this relation's contents, so everything
            # beyond the seed prefix is new — the unchecked bulk path applies
            scope.local[key].extend_new(
                make(tuple(map(getter, ids))) for ids in fresh
            )
            new_facts += len(fresh)
        stats.inferences += attempts
        stats.duplicates += attempts - new_facts
        stats.rule_applications += program.rules_compiled
