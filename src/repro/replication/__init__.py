"""repro.replication — log-shipping replication for the query server.

A primary :class:`~repro.server.CoralServer` appends every committed
base-relation mutation to a CRC-checked, monotonically sequenced
:class:`Changelog` and streams it to read replicas over ``REPL_HELLO`` /
``REPL_SHIP`` / ``REPL_ACK`` frames on the ordinary wire protocol; replicas
apply records idempotently (sequence-gated, crash-safe) via a
:class:`ReplicationClient`, serve read-only queries with incrementally
refreshed memo caches, and can be turned into a writable primary with the
``PROMOTE`` op.  See docs/REPLICATION.md for the topology, the changelog
format, the promotion runbook, and the failure matrix.
"""

from .changelog import (
    CHANGELOG_MAGIC,
    CHANGELOG_VERSION,
    KIND_CONSULT,
    KIND_DELETE,
    KIND_INSERT,
    Changelog,
    ChangelogRecord,
    apply_record,
    decode_records,
    encode_mutation,
    replay_into,
)

def __getattr__(name):
    # lazy: .replica imports repro.server.protocol, and repro.server.core
    # imports this package — an eager import here would make the package
    # unimportable on its own (whichever side loads first loses)
    if name == "ReplicationClient":
        from .replica import ReplicationClient

        return ReplicationClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CHANGELOG_MAGIC",
    "CHANGELOG_VERSION",
    "KIND_CONSULT",
    "KIND_DELETE",
    "KIND_INSERT",
    "Changelog",
    "ChangelogRecord",
    "ReplicationClient",
    "apply_record",
    "decode_records",
    "encode_mutation",
    "replay_into",
]
