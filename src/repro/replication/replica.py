"""The replica's shipping client: dial the primary, stream the changelog,
apply, acknowledge — and keep doing it across failures.

A read replica runs an ordinary :class:`~repro.server.CoralServer` (role
``"replica"``: writes refused) plus one :class:`ReplicationClient` thread.
The thread connects to the primary as a protocol client, performs the normal
``HELLO`` handshake, then sends ``REPL_HELLO`` carrying the replica's last
applied sequence — after which the *roles on the socket invert*: the primary
pushes ``REPL_SHIP`` frames (one changelog record, or a heartbeat, each) and
this thread answers each with ``REPL_ACK``.

Applying is sequence-gated and crash-safe: each record is applied to the
session first and only then appended to the replica's *own* changelog (with
the shipped sequence), so the changelog never claims a record the session
does not have — a failed apply leaves the sequence untouched and the next
``REPL_HELLO`` re-requests exactly the record that failed.  A duplicate is
acknowledged and dropped; a gap forces a reconnect, which self-heals because
the new ``REPL_HELLO`` names the exact sequence the replica is missing.

Failures (a dead primary, a torn frame, a corrupt record) never kill the
thread: it disconnects, waits an exponentially backed-off interval with
jitter, and redials, forever, until :meth:`stop` — a replica whose primary
is down keeps serving reads, merely reporting growing lag and a degraded
``/healthz``.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Optional, Tuple as PyTuple

from ..errors import CoralError, ProtocolError, StorageError
from ..faults import SimulatedCrash
from ..server.protocol import (
    PROTOCOL_VERSION,
    FrameTimeout,
    read_frame,
    write_frame,
)
from .changelog import record_crc


class ReplicationClient:
    """The background thread that keeps one replica fed from its primary."""

    def __init__(
        self,
        server,  # the replica CoralServer (avoids a circular import)
        upstream: PyTuple[str, int],
        *,
        name: Optional[str] = None,
        connect_timeout: float = 5.0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self.server = server
        self.upstream = upstream
        self.name = name or f"replica-{id(server) & 0xFFFF:04x}"
        self.connect_timeout = connect_timeout
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: monotonic time of the last frame (record or heartbeat) from the
        #: primary; None = never connected.  /healthz degrades on its age.
        self.last_contact: Optional[float] = None
        #: the primary's advertised last sequence (lag_records reference)
        self.upstream_seq = 0
        self.connected = False
        self.reconnects = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicationClient":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"coral-repl-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop streaming and drain: the in-flight record (if any) finishes
        applying before the thread exits — the PROMOTE precondition."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        self.connected = False

    def retarget(self, upstream: PyTuple[str, int]) -> None:
        """Point at a new primary (after a promotion elsewhere) and
        restart the stream from the replica's current sequence."""
        self.stop()
        self.upstream = upstream
        self.start()

    # -- health --------------------------------------------------------------

    def stalled_for(self) -> Optional[float]:
        """Seconds since the primary was last heard from; None if the
        stream has never been up."""
        if self.last_contact is None:
            return None
        return max(0.0, time.monotonic() - self.last_contact)

    def lag_records(self) -> int:
        return max(0, self.upstream_seq - self.server.changelog.last_seq)

    # -- the stream ----------------------------------------------------------

    def _run(self) -> None:
        delay = self.backoff
        while not self._stop.is_set():
            try:
                self._stream()
                delay = self.backoff  # clean EOF: primary restarting, redial
            except SimulatedCrash:
                raise  # chaos tests: a simulated crash kills this thread
            except (CoralError, OSError, ValueError, TypeError):
                # CoralError/OSError: the stream died; ValueError/TypeError:
                # the primary shipped a malformed field — either way redial,
                # never let garbage kill the thread
                self.server.repl_metric("errors")
            finally:
                self.connected = False
            if self._stop.is_set():
                return
            self.reconnects += 1
            self.server.repl_metric("reconnects")
            # full jitter on the capped exponential: herds of replicas must
            # not redial a recovering primary in lockstep
            self._stop.wait(random.uniform(0.0, delay))
            delay = min(self.backoff_cap, delay * 2)

    def _stream(self) -> None:
        host, port = self.upstream
        with socket.create_connection(
            (host, port), timeout=self.connect_timeout
        ) as sock:
            self._roundtrip(
                sock,
                {
                    "op": "HELLO",
                    "version": PROTOCOL_VERSION,
                    "client": f"repro.replica/{self.name}",
                },
            )
            header, _ = self._roundtrip(
                sock,
                {
                    "op": "REPL_HELLO",
                    "last_seq": self.server.changelog.last_seq,
                    "replica": self.name,
                },
            )
            self.upstream_seq = int(header.get("last_seq", 0))
            self.last_contact = time.monotonic()
            self.connected = True
            self.server.repl_metric("connects")
            # the socket timeout now paces heartbeat detection: silence
            # longer than this is a stalled primary, so reconnect
            sock.settimeout(max(self.server.heartbeat * 4, 2.0))
            while not self._stop.is_set():
                try:
                    frame = read_frame(sock)
                except FrameTimeout:
                    raise ProtocolError(
                        f"primary {host}:{port} went silent "
                        f"(no ship or heartbeat)"
                    ) from None
                if frame is None:
                    return  # primary closed cleanly
                header, payload = frame
                self._on_frame(sock, header, payload)

    def _on_frame(self, sock, header, payload: bytes) -> None:
        op = str(header.get("op", ""))
        if op != "REPL_SHIP":
            raise ProtocolError(
                f"expected REPL_SHIP on the replication stream, got {op!r}"
            )
        self.last_contact = time.monotonic()
        seq = int(header.get("seq", 0))
        self.upstream_seq = max(self.upstream_seq, seq)
        if not header.get("heartbeat"):
            kind = int(header.get("kind", 0))
            pred = str(header.get("pred", ""))
            shipped_crc = record_crc(seq, kind, pred.encode("utf-8"), payload)
            if shipped_crc != int(header.get("crc", -1)):
                raise StorageError(
                    f"shipped record #{seq} failed its checksum "
                    f"(truncated or corrupted in flight)"
                )
            self.server.faults.check("repl.apply")
            # the optional trace field carries the originating write's
            # distributed-trace context (repro.obs.disttrace): the apply
            # records a replica-side span under the same trace id
            self.server.apply_replicated(
                seq, kind, pred, payload, trace=header.get("trace")
            )
        write_frame(
            sock, {"op": "REPL_ACK", "seq": self.server.changelog.last_seq}
        )

    @staticmethod
    def _roundtrip(sock, header) -> PyTuple[dict, bytes]:
        write_frame(sock, header)
        try:
            frame = read_frame(sock)
        except FrameTimeout:
            raise ProtocolError("timed out waiting for the primary") from None
        if frame is None:
            raise ProtocolError("primary closed during the handshake")
        response, body = frame
        if not response.get("ok"):
            raise ProtocolError(
                f"primary refused {header.get('op')}: "
                f"{response.get('message', 'no reason given')}"
            )
        return response, body

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return (
            f"<ReplicationClient {self.name} -> "
            f"{self.upstream[0]}:{self.upstream[1]} {state}>"
        )
