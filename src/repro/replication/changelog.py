"""The replication changelog: every committed base-relation mutation, CRC-
checked and monotonically sequenced.

The PR-1 undo journal is a *rollback* log — before-images that recovery
applies to erase an unfinished transaction.  Replication needs the opposite:
a *redo* stream of what actually happened, in commit order, that a replica
can replay to converge on the primary's state.  This module is that stream.

A :class:`Changelog` keeps the full record tail in memory (the ship loops
read from it without touching disk) and, when given a path, also persists
every record append-only with an fsync — the durability point a primary
acknowledges writes at.  Reopening the path reloads the tail, so a restarted
primary (or a promoted replica) resumes its sequence where it left off.

On-disk format (all integers big-endian)::

    header:  magic "CORALL1\\n" | version:u16
    record:  seq:u64 | kind:u8 | pred_len:u16 | payload_len:u32 | crc:u32
             | pred (UTF-8) | payload

``kind`` is ``KIND_INSERT`` / ``KIND_DELETE`` (payload: one
:func:`repro.storage.serde.encode_batch` block of the inserted/deleted
tuples — the same versioned codec the wire protocol and heap records use,
so the replication format cannot drift from either) or ``KIND_CONSULT``
(payload: UTF-8 program source; ``pred`` is empty).  ``crc`` is CRC32 over
seq, kind, pred, and payload.  Like the undo journal, a *truncated* trailing
record (a crash mid-append) is silently dropped, but a *corrupted* record
mid-file raises :class:`~repro.errors.StorageError`: replaying garbage would
silently diverge a replica, which is strictly worse than stopping.

Sequence numbers start at 1 and are dense: ``append`` either mints
``last_seq + 1`` or (replica side) accepts an explicit sequence that must be
exactly the successor — the gate that makes applying shipped records
idempotent (a duplicate is detected by its old sequence, a gap by its
too-new one).
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Iterable, List, Optional, Tuple as PyTuple

from ..errors import StorageError
from ..faults import PASSIVE, FaultInjector
from ..relations import Tuple
from ..storage.serde import decode_batch, encode_batch
from ..terms import Arg

CHANGELOG_MAGIC = b"CORALL1\n"
CHANGELOG_VERSION = 1

_FILE_HEADER = struct.Struct(">8sH")  # magic, version
_RECORD_HEADER = struct.Struct(">QBHII")  # seq, kind, pred len, payload len, crc

#: record kinds
KIND_INSERT = 1  # payload = encode_batch of inserted tuples
KIND_DELETE = 2  # payload = encode_batch of deleted tuples
KIND_CONSULT = 3  # payload = UTF-8 program source, pred = ""

_KINDS = (KIND_INSERT, KIND_DELETE, KIND_CONSULT)

#: refuse records claiming more payload than this (a corrupt length field
#: must not trigger a giant allocation)
MAX_RECORD_BYTES = 64 * 1024 * 1024


def record_crc(seq: int, kind: int, pred_bytes: bytes, payload: bytes) -> int:
    crc = zlib.crc32(struct.pack(">QB", seq, kind))
    crc = zlib.crc32(pred_bytes, crc)
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


class ChangelogRecord:
    """One committed mutation: sequence, kind, predicate, payload bytes."""

    __slots__ = ("seq", "kind", "pred", "payload", "crc")

    def __init__(self, seq: int, kind: int, pred: str, payload: bytes) -> None:
        if kind not in _KINDS:
            raise StorageError(f"unknown changelog record kind {kind}")
        self.seq = seq
        self.kind = kind
        self.pred = pred
        self.payload = payload
        self.crc = record_crc(seq, kind, pred.encode("utf-8"), payload)

    def encode(self) -> bytes:
        pred_bytes = self.pred.encode("utf-8")
        return (
            _RECORD_HEADER.pack(
                self.seq, self.kind, len(pred_bytes), len(self.payload), self.crc
            )
            + pred_bytes
            + self.payload
        )

    def __repr__(self) -> str:
        kind = {KIND_INSERT: "insert", KIND_DELETE: "delete", KIND_CONSULT: "consult"}
        return (
            f"<ChangelogRecord #{self.seq} {kind.get(self.kind, self.kind)}"
            f" {self.pred or '(program)'} {len(self.payload)}B>"
        )


def decode_records(data: bytes, source: str = "<bytes>") -> List[ChangelogRecord]:
    """Parse a changelog byte string back into records.

    A truncated trailing record is dropped (a crash mid-append — the write
    it described was never acknowledged); a corrupted record (CRC mismatch,
    unknown kind, non-successor sequence) raises :class:`StorageError`.
    """
    if len(data) < _FILE_HEADER.size:
        return []
    magic, version = _FILE_HEADER.unpack_from(data, 0)
    if magic != CHANGELOG_MAGIC:
        raise StorageError(
            f"changelog {source} has bad magic {magic!r}; refusing to replay "
            f"an unrecognized log"
        )
    if version != CHANGELOG_VERSION:
        raise StorageError(
            f"changelog {source} has unsupported version {version} "
            f"(expected {CHANGELOG_VERSION})"
        )
    records: List[ChangelogRecord] = []
    offset = _FILE_HEADER.size
    size = len(data)
    while offset < size:
        if offset + _RECORD_HEADER.size > size:
            break  # torn trailing header
        seq, kind, pred_len, payload_len, crc = _RECORD_HEADER.unpack_from(
            data, offset
        )
        if kind not in _KINDS:
            raise StorageError(
                f"changelog {source} has a record of unknown kind {kind} at "
                f"offset {offset}; replay halted"
            )
        if payload_len > MAX_RECORD_BYTES:
            raise StorageError(
                f"changelog {source} record at offset {offset} claims an "
                f"implausible {payload_len}-byte payload; replay halted"
            )
        end = offset + _RECORD_HEADER.size + pred_len + payload_len
        if end > size:
            break  # torn trailing record
        pred_start = offset + _RECORD_HEADER.size
        pred_bytes = data[pred_start : pred_start + pred_len]
        payload = data[pred_start + pred_len : end]
        if record_crc(seq, kind, pred_bytes, payload) != crc:
            raise StorageError(
                f"changelog {source} has a corrupted record at offset "
                f"{offset} (checksum mismatch); replay halted"
            )
        expected = records[-1].seq + 1 if records else seq
        if seq != expected:
            raise StorageError(
                f"changelog {source} sequence break at offset {offset}: "
                f"record #{seq} follows #{expected - 1}; replay halted"
            )
        try:
            pred = pred_bytes.decode("utf-8")
        except UnicodeDecodeError:
            raise StorageError(
                f"changelog {source} record at offset {offset} has an "
                f"invalid UTF-8 predicate name"
            ) from None
        records.append(ChangelogRecord(seq, kind, pred, payload))
        offset = end
    return records


class Changelog:
    """The sequenced mutation log one server ships (or applies) from.

    Thread-safe: appenders hold the internal condition, ship loops block in
    :meth:`wait_for` until the record they need exists.  With a ``path`` the
    log is durable (append + fsync per record); without one it lives only in
    memory — fine for tests and for replicas whose base data is re-shipped
    on reconnect anyway.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.path = path
        self.faults = faults if faults is not None else PASSIVE
        self._cond = threading.Condition()
        self._records: List[ChangelogRecord] = []
        self._handle = None
        if path is not None:
            try:
                if os.path.exists(path):
                    with open(path, "rb") as handle:
                        self._records = decode_records(handle.read(), path)
                self._handle = open(path, "ab", buffering=0)
                if not self._records and self._handle.tell() == 0:
                    self._handle.write(
                        _FILE_HEADER.pack(CHANGELOG_MAGIC, CHANGELOG_VERSION)
                    )
                    os.fsync(self._handle.fileno())
                elif self._records:
                    # drop any torn trailing bytes so the next append starts
                    # at a record boundary
                    valid = _FILE_HEADER.size + sum(
                        _RECORD_HEADER.size
                        + len(r.pred.encode("utf-8"))
                        + len(r.payload)
                        for r in self._records
                    )
                    self._handle.truncate(valid)
            except OSError as exc:
                raise StorageError(
                    f"cannot open changelog {path}: {exc}"
                ) from exc

    # -- appends -------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._records[-1].seq if self._records else 0

    @property
    def first_seq(self) -> int:
        with self._cond:
            return self._records[0].seq if self._records else 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._records)

    def append(
        self, kind: int, pred: str, payload: bytes, seq: Optional[int] = None
    ) -> ChangelogRecord:
        """Append one record; mints ``last_seq + 1`` unless an explicit
        ``seq`` is given (replica side), which must be exactly the successor
        — the sequence gate that keeps replicas from silently diverging."""
        with self._cond:
            expected = (self._records[-1].seq if self._records else 0) + 1
            if seq is None:
                seq = expected
            elif seq != expected:
                raise StorageError(
                    f"changelog sequence break: appending #{seq} after "
                    f"#{expected - 1}"
                )
            record = ChangelogRecord(seq, kind, pred, payload)
            self.faults.check("repl.log")
            if self._handle is not None:
                try:
                    self._handle.write(record.encode())
                    os.fsync(self._handle.fileno())
                except OSError as exc:
                    raise StorageError(
                        f"changelog append failed for {self.path}: {exc}"
                    ) from exc
            self._records.append(record)
            self._cond.notify_all()
            return record

    # -- reads (ship loops, replay) ------------------------------------------

    def get(self, seq: int) -> Optional[ChangelogRecord]:
        with self._cond:
            return self._get_locked(seq)

    def _get_locked(self, seq: int) -> Optional[ChangelogRecord]:
        if not self._records:
            return None
        index = seq - self._records[0].seq
        if 0 <= index < len(self._records):
            return self._records[index]
        return None

    def wait_for(
        self, seq: int, timeout: Optional[float] = None
    ) -> Optional[ChangelogRecord]:
        """Block until record ``seq`` exists (a ship loop waiting for new
        work); None on timeout."""
        with self._cond:
            record = self._get_locked(seq)
            if record is None:
                self._cond.wait(timeout)
                record = self._get_locked(seq)
            return record

    def since(self, seq: int) -> List[ChangelogRecord]:
        """All records with sequence strictly greater than ``seq``."""
        with self._cond:
            if not self._records:
                return []
            start = max(0, seq + 1 - self._records[0].seq)
            return list(self._records[start:])

    def records(self) -> List[ChangelogRecord]:
        with self._cond:
            return list(self._records)

    def close(self) -> None:
        with self._cond:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
            self._cond.notify_all()

    def __repr__(self) -> str:
        return (
            f"<Changelog {self.path or '(memory)'} "
            f"{len(self)} records, last #{self.last_seq}>"
        )


# -- building and applying records -------------------------------------------


def encode_mutation(rows: Iterable[PyTuple[Arg, ...]]) -> bytes:
    """The INSERT/DELETE payload: one serde batch of the mutated tuples."""
    return encode_batch([list(row) for row in rows])


def apply_record(session, record: ChangelogRecord) -> None:
    """Replay one record against a session, firing the same memo and
    live-view hooks a local update would (docs/MEMO.md, docs/LIVE.md) so a
    replica's answer cache is incrementally refreshed rather than cold and
    subscriptions attached to a replica stream the replicated deltas.

    Callers are responsible for the sequence gate (``Changelog.append`` with
    an explicit seq); the apply itself is a plain redo.
    """
    if record.kind == KIND_CONSULT:
        try:
            source = record.payload.decode("utf-8")
        except UnicodeDecodeError:
            raise StorageError(
                f"changelog record #{record.seq} has an invalid UTF-8 "
                f"program payload"
            ) from None
        for result in session.consult_string(source):
            result.close()  # replicas apply programs, they don't run queries
        return
    rows = decode_batch(record.payload)
    memo = session.ctx.memo
    live = session.ctx.live
    if record.kind == KIND_INSERT:
        changed = False
        relation = None
        for row in rows:
            relation = session.relation(record.pred, len(row))
            changed = relation.insert(Tuple(tuple(row))) or changed
        if changed and rows:
            if memo is not None:
                memo.on_insert((record.pred, len(rows[0])))
            if live is not None:
                live.on_insert((record.pred, len(rows[0])))
        return
    for row in rows:
        relation = session.ctx.base_relations.get((record.pred, len(row)))
        if relation is None:
            continue
        tup = Tuple(tuple(row))
        if relation.delete(tup):
            if memo is not None:
                memo.on_delete((record.pred, len(row)), tup)
            if live is not None:
                live.on_delete((record.pred, len(row)), tup)


def replay_into(session, records: Iterable[ChangelogRecord]) -> int:
    """Replay a record sequence (a boot-time rebuild); returns the count."""
    count = 0
    for record in records:
        apply_record(session, record)
        count += 1
    return count
