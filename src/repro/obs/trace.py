"""Structured event tracing: spans and instants, exportable to JSON-lines
and the Chrome ``chrome://tracing`` / Perfetto trace-event format.

The span taxonomy mirrors the evaluation pipeline::

    query                   one QueryResult drain (api/session.py)
      rewrite               one optimizer compilation (modules/manager.py)
      fixpoint.seed         the once-rules pass of an SCC (eval/fixpoint.py)
      fixpoint.iteration    one semi-naive iteration
        rule                one rule application
      subgoal               one pipelined / ordered-search subgoal
    <fault-point name>      storage instants (buffer.writeback, journal.sync,
                            disk.write_page, ... — exactly the injection-point
                            names of :mod:`repro.faults`, so a trace and a
                            crash schedule speak the same vocabulary)

Events carry ``time.perf_counter`` timestamps; exporters rebase them to
microseconds from the tracer's first event, which is what the Chrome format
expects.  The tracer is bounded (``limit``): past the cap events are counted
but dropped, so profiling a pathological query cannot exhaust memory.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, IO, List, Optional, Tuple, Union


class TraceEvent:
    """One trace event: a completed span (phase ``X``) or an instant (``i``)."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: float = 0.0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts  # perf_counter seconds (rebased at export)
        self.dur = dur  # seconds; 0 for instants
        self.args = args

    def __repr__(self) -> str:
        return f"<TraceEvent {self.ph} {self.cat}:{self.name} @{self.ts:.6f}>"


class _Span:
    """Context-manager handle returned by :meth:`EventTracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "EventTracer", name: str, cat: str, args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.complete(
            self._name, self._cat, self._start, **(self._args or {})
        )


class EventTracer:
    """An append-only, bounded buffer of trace events."""

    def __init__(
        self,
        limit: int = 200_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped = 0
        #: optional callable invoked (outside the lock, best-effort) once
        #: per event dropped at the cap — the server points this at an
        #: ``obs.trace.dropped`` counter so span loss is visible in
        #: /metrics and STATS, not just inside an exported profile
        self.on_drop: Optional[Callable[[], None]] = None
        self._clock = clock
        # server handler threads share one tracer; the lock keeps the
        # bounded append (a check-then-act) and the exporters' snapshots
        # atomic, so concurrent writers can neither overshoot the limit nor
        # interleave half-written export state
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.events)

    # -- recording -----------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self.events) >= self.limit:
                self.dropped += 1
                hook = self.on_drop
            else:
                self.events.append(event)
                return
        if hook is not None:
            try:
                hook()
            except Exception:
                pass

    def _snapshot(self) -> Tuple[List[TraceEvent], int]:
        with self._lock:
            return list(self.events), self.dropped

    def complete(self, name: str, cat: str, start: float, **args) -> None:
        """Record a span that began at ``start`` (a :meth:`now` value) and
        ends now — the Chrome 'complete' (X) phase."""
        end = self._clock()
        self._append(
            TraceEvent(name, cat, "X", start, end - start, args or None)
        )

    def instant(self, name: str, cat: str, **args) -> None:
        self._append(TraceEvent(name, cat, "i", self._clock(), 0.0, args or None))

    def span(self, name: str, cat: str = "eval", **args) -> _Span:
        """``with tracer.span("rewrite", module="tc"): ...``"""
        return _Span(self, name, cat, args)

    # -- export --------------------------------------------------------------

    @staticmethod
    def _origin_of(events: List[TraceEvent]) -> float:
        return min((event.ts for event in events), default=0.0)

    def _origin(self) -> float:
        return self._origin_of(self.events)

    def chrome_trace(self, pid: int = 1, tid: int = 1) -> Dict[str, object]:
        """The trace as a Chrome/Perfetto trace-event JSON object.

        Load the written file at ``chrome://tracing`` or ui.perfetto.dev.
        Timestamps/durations are microseconds relative to the first event.
        """
        events, dropped = self._snapshot()
        origin = self._origin_of(events)
        trace_events: List[Dict[str, object]] = []
        for event in events:
            entry: Dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": round((event.ts - origin) * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
            if event.ph == "X":
                entry["dur"] = round(event.dur * 1e6, 3)
            if event.ph == "i":
                entry["s"] = "t"  # thread-scoped instant
            if event.args:
                entry["args"] = event.args
            trace_events.append(entry)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "dropped_events": dropped,
            },
        }

    def write_chrome_trace(self, target: Union[str, IO[str]]) -> None:
        payload = self.chrome_trace()
        if hasattr(target, "write"):
            json.dump(payload, target)
        else:
            with open(target, "w") as handle:
                json.dump(payload, handle)

    def to_jsonl(self) -> str:
        """One JSON object per line per event (ingestion-friendly)."""
        events, _ = self._snapshot()
        origin = self._origin_of(events)
        lines = []
        for event in events:
            record: Dict[str, object] = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts_us": round((event.ts - origin) * 1e6, 3),
            }
            if event.ph == "X":
                record["dur_us"] = round(event.dur * 1e6, 3)
            if event.args:
                record["args"] = event.args
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w") as handle:
                handle.write(text)
