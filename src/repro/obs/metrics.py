"""The metrics registry: typed, labeled counters for the whole system.

Brass & Stephan (*Bottom-Up Evaluation of Datalog*, PAPERS.md) compare
evaluation strategies via rule-application and tuple-derivation counts;
Behrend's uniform fixpoint treatment motivates iteration-level accounting.
This module makes those counters first-class: a :class:`MetricsRegistry`
holds named metrics of three kinds —

* :class:`Counter` — a monotonically increasing count (rule applications,
  tuples derived, buffer misses);
* :class:`Gauge` — a value that can go both ways (live subgoal stack depth,
  pool occupancy);
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  (per-rule evaluation time, iteration sizes), so merging and rendering
  never re-bins.

Metrics may declare label names (``("rule",)``, ``("pred",)``,
``("file",)``); each distinct label tuple gets its own time series.  Hot
paths bind a label tuple once (:meth:`Counter.labels`) and increment a cell
— one dict hit at bind time, one float add per event afterwards.

Cost discipline: the evaluator and storage layers never consult a registry
directly.  They hold an optional observer (``ctx.obs``, installed by
:class:`~repro.obs.profiler.Profiler`) and guard every hook with a single
``if obs is not None`` branch; with observability off that branch is the
*entire* cost.  A registry constructed with ``enabled=False`` additionally
returns shared null metrics whose mutators are no-ops, so library code can
keep unconditional ``metric.inc()`` calls if it prefers that style.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..errors import CoralError


class MetricError(CoralError):
    """Registry misuse: kind mismatch, bad labels, unknown metric."""


#: default histogram boundaries for durations in seconds (powers of ~4 from
#: 100 microseconds to ~1.6 s; the +inf bucket is implicit)
TIME_BUCKETS = (0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384)

#: default boundaries for sizes/counts (powers of 4; +inf implicit)
SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384)


class _BoundCounter:
    """A counter cell bound to one label tuple: the hot-path handle."""

    __slots__ = ("_cell",)

    def __init__(self, cell: List[float]) -> None:
        self._cell = cell

    def inc(self, amount: float = 1) -> None:
        self._cell[0] += amount

    @property
    def value(self) -> float:
        return self._cell[0]


class Counter:
    """A monotonically increasing metric, optionally labeled."""

    kind = "counter"
    __slots__ = ("name", "help", "labelnames", "_cells")

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._cells: Dict[PyTuple[str, ...], List[float]] = {}

    def labels(self, *labelvalues: str) -> _BoundCounter:
        if len(labelvalues) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )
        cell = self._cells.get(labelvalues)
        if cell is None:
            cell = self._cells[labelvalues] = [0.0]
        return _BoundCounter(cell)

    def inc(self, amount: float = 1, *labelvalues: str) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.labels(*labelvalues).inc(amount)

    def value(self, *labelvalues: str) -> float:
        cell = self._cells.get(labelvalues)
        return cell[0] if cell else 0.0

    def collect(self) -> Dict[PyTuple[str, ...], float]:
        return {labels: cell[0] for labels, cell in self._cells.items()}


class Gauge:
    """A metric that can rise and fall."""

    kind = "gauge"
    __slots__ = ("name", "help", "labelnames", "_cells")

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._cells: Dict[PyTuple[str, ...], List[float]] = {}

    def _cell(self, labelvalues: PyTuple[str, ...]) -> List[float]:
        if len(labelvalues) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )
        cell = self._cells.get(labelvalues)
        if cell is None:
            cell = self._cells[labelvalues] = [0.0]
        return cell

    def set(self, value: float, *labelvalues: str) -> None:
        self._cell(labelvalues)[0] = value

    def inc(self, amount: float = 1, *labelvalues: str) -> None:
        self._cell(labelvalues)[0] += amount

    def dec(self, amount: float = 1, *labelvalues: str) -> None:
        self._cell(labelvalues)[0] -= amount

    def value(self, *labelvalues: str) -> float:
        cell = self._cells.get(labelvalues)
        return cell[0] if cell else 0.0

    def collect(self) -> Dict[PyTuple[str, ...], float]:
        return {labels: cell[0] for labels, cell in self._cells.items()}


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets  # one extra for +inf
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Observations bucketed against fixed boundaries.

    ``boundaries`` are upper-inclusive bucket edges; an implicit final
    bucket collects everything above the last edge.  Fixed edges mean two
    histograms of the same metric are mergeable bucket-by-bucket — the
    property the benchmark trajectory relies on.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labelnames", "boundaries", "_series")

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        boundaries: Sequence[float] = TIME_BUCKETS,
    ) -> None:
        edges = tuple(boundaries)
        if not edges or list(edges) != sorted(edges):
            raise MetricError(
                f"histogram {name} needs sorted, non-empty boundaries"
            )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.boundaries = edges
        self._series: Dict[PyTuple[str, ...], _HistogramSeries] = {}

    def _get(self, labelvalues: PyTuple[str, ...]) -> _HistogramSeries:
        if len(labelvalues) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )
        series = self._series.get(labelvalues)
        if series is None:
            series = self._series[labelvalues] = _HistogramSeries(
                len(self.boundaries) + 1
            )
        return series

    def observe(self, value: float, *labelvalues: str) -> None:
        series = self._get(labelvalues)
        # bisect_left keeps edges upper-inclusive (Prometheus 'le' style):
        # a value equal to an edge lands in that edge's bucket
        series.bucket_counts[bisect_left(self.boundaries, value)] += 1
        series.sum += value
        series.count += 1

    def percentile(self, q: float, *labelvalues: str) -> float:
        """An estimate of the ``q``-quantile (``0 < q <= 1``) by linear
        interpolation inside the bucket holding the target rank — the same
        estimator as Prometheus's ``histogram_quantile``.  Values above the
        last edge are clamped to it (the +inf bucket has no width to
        interpolate across); an empty series estimates 0.0."""
        if not 0.0 < q <= 1.0:
            raise MetricError(f"percentile wants 0 < q <= 1, got {q}")
        series = self._series.get(labelvalues)
        if series is None or series.count == 0:
            return 0.0
        target = q * series.count
        boundaries = self.boundaries
        cumulative = 0
        for index, bucket_count in enumerate(series.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(boundaries):
                    return float(boundaries[-1])
                upper = float(boundaries[index])
                lower = float(boundaries[index - 1]) if index else min(0.0, upper)
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return float(boundaries[-1])

    def snapshot(self, *labelvalues: str) -> Dict[str, object]:
        series = self._get(labelvalues)
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(series.bucket_counts),
            "sum": series.sum,
            "count": series.count,
            "p50": self.percentile(0.50, *labelvalues),
            "p90": self.percentile(0.90, *labelvalues),
            "p99": self.percentile(0.99, *labelvalues),
        }

    def collect(self) -> Dict[PyTuple[str, ...], Dict[str, object]]:
        return {labels: self.snapshot(*labels) for labels in self._series}


class LabelCapper:
    """Bound the cardinality of one labeled counter family.

    Metrics labeled by uncontrolled input (client host, query predicate)
    are a cardinality bomb: a million distinct clients would mint a million
    time series and an unboundedly large ``/metrics`` payload.  The capper
    admits the first ``k`` distinct label values it sees and collapses
    every later new value into a single ``overflow`` bucket (``"other"``),
    so the family can never exceed ``k + 1`` series.  First-come admission
    keeps the steady long-lived labels (a fleet's real clients, an
    application's hot predicates) and sheds the churn.
    """

    __slots__ = ("counter", "k", "overflow", "overflowed", "_seen", "_lock")

    def __init__(self, counter, k: int = 32, overflow: str = "other") -> None:
        if k < 1:
            raise MetricError(f"label cap must be >= 1, got {k}")
        self.counter = counter
        self.k = k
        self.overflow = overflow
        #: label values collapsed into the overflow bucket so far
        self.overflowed = 0
        self._seen: set = set()
        self._lock = threading.Lock()

    def inc(self, amount: float = 1, label: str = "") -> None:
        with self._lock:
            if label not in self._seen:
                if len(self._seen) < self.k:
                    self._seen.add(label)
                else:
                    self.overflowed += 1
                    label = self.overflow
        self.counter.inc(amount, label)


class _NullBound:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    value = 0.0


class _NullMetric:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    kind = "null"
    name = ""
    labelnames = ()

    def labels(self, *labelvalues: str) -> _NullBound:
        return _NULL_BOUND

    def inc(self, amount: float = 1, *labelvalues: str) -> None:
        pass

    def dec(self, amount: float = 1, *labelvalues: str) -> None:
        pass

    def set(self, value: float, *labelvalues: str) -> None:
        pass

    def observe(self, value: float, *labelvalues: str) -> None:
        pass

    def value(self, *labelvalues: str) -> float:
        return 0.0

    def collect(self) -> dict:
        return {}


_NULL_BOUND = _NullBound()
_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metrics, created on first use and type-checked thereafter.

    A disabled registry (``enabled=False``) returns a shared null metric
    from every factory: the single branch lives here, at *registration*
    time, and instrumented code pays nothing per event.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _register(self, factory, name: str, **kwargs):
        if not self.enabled:
            return _NULL_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name, **kwargs)
            return metric
        if not isinstance(metric, factory):
            raise MetricError(
                f"metric {name} already registered as {metric.kind}"
            )
        labelnames = tuple(kwargs.get("labelnames", ()))
        if labelnames != metric.labelnames:
            raise MetricError(
                f"metric {name} already registered with labels "
                f"{metric.labelnames}, re-registration asked for {labelnames}"
            )
        boundaries = kwargs.get("boundaries")
        if boundaries is not None and tuple(boundaries) != metric.boundaries:
            raise MetricError(
                f"histogram {name} already registered with boundaries "
                f"{metric.boundaries}, re-registration asked for "
                f"{tuple(boundaries)}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help=help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        boundaries: Sequence[float] = TIME_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames,
            boundaries=boundaries,
        )

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def metrics(self) -> List[object]:
        """The live metric objects, sorted by name — the exposition
        renderer works from these (label tuples intact) rather than from
        :meth:`collect`, whose JSON-friendly keys are lossy."""
        return [metric for _, metric in sorted(self._metrics.items())]

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Everything, JSON-friendly: label tuples become '|'-joined keys."""
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in sorted(self._metrics.items()):
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "values": {
                    "|".join(labels) if labels else "": value
                    for labels, value in metric.collect().items()
                },
            }
        return out
