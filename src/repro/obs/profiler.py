"""The query profiler: one context manager that turns every counter the
system keeps into a structured, renderable :class:`QueryProfile`.

Usage (the only public entry points are ``session.profile()`` and the
shell's ``@profile`` command)::

    with session.profile() as prof:
        session.query("path(1, X)").all()
    print(prof.profile.render())
    prof.profile.write_chrome_trace("query.trace.json")

While the ``with`` block is active the profiler is installed as the
evaluation context's *observer* (``ctx.obs``) and as the storage fault
injector's observer; the instrumentation hooks in ``eval/`` and ``storage/``
are all guarded by a single ``if obs is not None`` branch, so a session that
never profiles pays one predictable branch per hook site and nothing else.

What a profile contains:

* **eval** — deltas of the session's :class:`~repro.eval.context.EvalStats`
  (inferences, facts inserted, duplicates, iterations, rule applications,
  subgoals, module calls);
* **rules** — per semi-naive rule: applications, tuples derived vs.
  rejected as duplicates, and inclusive evaluation time;
* **iterations** — per fixpoint iteration: new facts and wall time;
* **subgoals** — per pipelined / ordered-search subgoal predicate: calls
  and *inclusive* wall time (a recursive subgoal's time includes its
  callees');
* **scans** — per body predicate: scans opened, tuples probed, unification
  matches (the nested-loops join's probe-side accounting);
* **storage** — buffer pool hits/misses/evictions/writebacks, server page
  I/O, B-tree node reads/writes/splits, journal appends/fsyncs, and the
  raw per-injection-point arrival deltas of :mod:`repro.faults`;
* **metrics** — the same data as a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot (stable names, see docs/OBSERVABILITY.md);
* a bounded :class:`~repro.obs.trace.EventTracer` with the span taxonomy
  query > rewrite > fixpoint iteration > rule application, exportable to
  JSON-lines and Chrome ``chrome://tracing`` format.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple as PyTuple

from ..errors import CoralError
from .flight import FlightRecorder
from .metrics import MetricsRegistry, SIZE_BUCKETS, TIME_BUCKETS
from .trace import EventTracer

PredKey = PyTuple[str, int]


class _RuleEntry:
    """Hot-path accumulator for one semi-naive rule; merged by rule text
    into the profile at exit."""

    __slots__ = ("text", "applications", "derived", "duplicates", "time")

    def __init__(self, text: str) -> None:
        self.text = text
        self.applications = 0
        self.derived = 0
        self.duplicates = 0
        self.time = 0.0


class _SubgoalEntry:
    __slots__ = ("calls", "time")

    def __init__(self) -> None:
        self.calls = 0
        self.time = 0.0


class _ScanEntry:
    __slots__ = ("scans", "tuples", "matches")

    def __init__(self) -> None:
        self.scans = 0
        self.tuples = 0
        self.matches = 0


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


class QueryProfile:
    """The immutable result of one profiled block."""

    def __init__(
        self,
        wall_time: float,
        eval_stats: Dict[str, int],
        rules: List[Dict[str, object]],
        iterations: List[Dict[str, object]],
        subgoals: Dict[str, Dict[str, Dict[str, object]]],
        scans: Dict[str, Dict[str, int]],
        storage: Optional[Dict[str, object]],
        registry: MetricsRegistry,
        tracer: Optional[EventTracer],
        memo: Optional[Dict[str, int]] = None,
    ) -> None:
        self.wall_time = wall_time
        self.eval = eval_stats
        self.rules = rules
        self.iterations = iterations
        self.subgoals = subgoals
        self.scans = scans
        self.storage = storage
        self.registry = registry
        self.tracer = tracer
        #: cross-query memo-cache counter deltas over the profiled block
        #: (hits, misses, invalidations, ...; None when memoization is off)
        self.memo = memo

    # -- the headline numbers ------------------------------------------------

    @property
    def iteration_count(self) -> int:
        return self.eval.get("iterations", 0)

    @property
    def rule_applications(self) -> int:
        return self.eval.get("rule_applications", 0)

    @property
    def buffer_hit_rate(self) -> Optional[float]:
        if not self.storage:
            return None
        buffer = self.storage["buffer"]
        total = buffer["hits"] + buffer["misses"]
        return buffer["hits"] / total if total else 0.0

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe structured form (what the benchmarks emit)."""
        payload = {
            "wall_time": self.wall_time,
            "eval": dict(self.eval),
            "rules": [dict(rule) for rule in self.rules],
            "iterations": [dict(item) for item in self.iterations],
            "subgoals": {
                kind: {pred: dict(entry) for pred, entry in by_pred.items()}
                for kind, by_pred in self.subgoals.items()
            },
            "scans": {pred: dict(entry) for pred, entry in self.scans.items()},
            "storage": self.storage,
            "metrics": self.registry.collect(),
        }
        if self.memo is not None:  # only sessions with the cache enabled
            payload["memo"] = self.memo
        return payload

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    def chrome_trace(self) -> Dict[str, object]:
        if self.tracer is None:
            raise CoralError("profiling ran with trace=False; no trace to export")
        return self.tracer.chrome_trace()

    def write_chrome_trace(self, target) -> None:
        if self.tracer is None:
            raise CoralError("profiling ran with trace=False; no trace to export")
        self.tracer.write_chrome_trace(target)

    def write_jsonl(self, target) -> None:
        if self.tracer is None:
            raise CoralError("profiling ran with trace=False; no trace to export")
        self.tracer.write_jsonl(target)

    # -- rendering -----------------------------------------------------------

    def render(self, max_rules: int = 10) -> str:
        """A human-readable profile tree (the ``@profile`` output)."""
        lines: List[str] = [f"query profile ({_fmt_seconds(self.wall_time)} wall)"]

        lines.append("+- evaluation")
        e = self.eval
        lines.append(
            f"|    iterations: {e.get('iterations', 0)}"
            f"   rule applications: {e.get('rule_applications', 0)}"
            f"   inferences: {e.get('inferences', 0)}"
        )
        lines.append(
            f"|    facts inserted: {e.get('facts_inserted', 0)}"
            f"   duplicates: {e.get('duplicates', 0)}"
            f"   subgoals: {e.get('subgoals', 0)}"
            f"   module calls: {e.get('module_calls', 0)}"
        )

        if self.rules:
            lines.append(f"+- rules (top {min(max_rules, len(self.rules))} by time)")
            for rule in self.rules[:max_rules]:
                lines.append(
                    f"|    {rule['applications']:>5} apps"
                    f"  {rule['derived']:>6} derived"
                    f"  {rule['duplicates']:>6} dup"
                    f"  {_fmt_seconds(rule['time']):>8}"
                    f"  {rule['rule']}"
                )

        if self.iterations:
            lines.append(f"+- fixpoint iterations ({len(self.iterations)})")
            shown = self.iterations[:8]
            for item in shown:
                lines.append(
                    f"|    #{item['index']:<3} {item['new_facts']:>6} new facts"
                    f"  {_fmt_seconds(item['time']):>8}  [{item['scc']}]"
                )
            if len(self.iterations) > len(shown):
                lines.append(f"|    ... {len(self.iterations) - len(shown)} more")

        for kind in sorted(self.subgoals):
            by_pred = self.subgoals[kind]
            if not by_pred:
                continue
            lines.append(f"+- subgoal timings ({kind}, inclusive)")
            ranked = sorted(
                by_pred.items(), key=lambda item: item[1]["time"], reverse=True
            )
            for pred, entry in ranked[:max_rules]:
                lines.append(
                    f"|    {pred}: {entry['calls']} calls,"
                    f" {_fmt_seconds(entry['time'])}"
                )

        if self.scans:
            lines.append("+- join scans (probe side)")
            ranked = sorted(
                self.scans.items(), key=lambda item: item[1]["tuples"], reverse=True
            )
            for pred, entry in ranked[:max_rules]:
                lines.append(
                    f"|    {pred}: {entry['scans']} scans,"
                    f" {entry['tuples']} tuples probed,"
                    f" {entry['matches']} matches"
                )

        if self.storage is not None:
            s = self.storage
            buffer, server = s["buffer"], s["server"]
            rate = self.buffer_hit_rate
            lines.append("+- storage")
            lines.append(
                f"     buffer: {buffer['hits']} hits / {buffer['misses']} misses"
                f" ({rate:.1%} hit rate), {buffer['evictions']} evictions,"
                f" {buffer['writebacks']} writebacks"
            )
            lines.append(
                f"     server: {server['page_reads']} page reads,"
                f" {server['page_writes']} page writes,"
                f" {server['allocations']} allocations"
            )
            btree = s["btree"]
            lines.append(
                f"     b-tree: {btree['node_reads']} node reads,"
                f" {btree['node_writes']} node writes, {btree['splits']} splits"
            )
            journal = s["journal"]
            lines.append(
                f"     journal: {journal['appends']} appends,"
                f" {journal['fsyncs']} fsyncs"
            )
        if self.tracer is not None:
            suffix = (
                f" (+{self.tracer.dropped} dropped)" if self.tracer.dropped else ""
            )
            lines.append(f"+- trace: {len(self.tracer)} events{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<QueryProfile wall={self.wall_time:.4f}s"
            f" iterations={self.iteration_count}"
            f" rule_applications={self.rule_applications}>"
        )


class Profiler:
    """The installable observer; a context manager yielding itself.

    ``Profiler(ctx=...)`` is the embedding-level constructor (the benchmarks
    use it directly); ``session.profile()`` fills in the session's context,
    buffer pool, and storage server.  Only one profiler may be installed on
    a context at a time.
    """

    def __init__(
        self,
        ctx,
        pool=None,
        server=None,
        trace: bool = True,
        trace_limit: int = 200_000,
        clock=time.perf_counter,
    ) -> None:
        self.ctx = ctx
        self.pool = pool
        self.server = server
        self.registry = MetricsRegistry()
        self.tracer = EventTracer(limit=trace_limit, clock=clock) if trace else None
        self.profile: Optional[QueryProfile] = None
        self._clock = clock
        self._rules: Dict[int, _RuleEntry] = {}
        self._subgoals: Dict[PyTuple[str, str], _SubgoalEntry] = {}
        self._scans: Dict[PredKey, _ScanEntry] = {}
        self._iterations: List[Dict[str, object]] = []
        self._storage_counter = None
        self._installed = False
        self._used = False
        self._prev_obs = None

    # -- install / uninstall -------------------------------------------------

    def __enter__(self) -> "Profiler":
        if self._used:
            raise CoralError(
                "this Profiler was already used; its counters would be "
                "corrupted by re-entry — create a fresh one "
                "(session.profile())"
            )
        previous = self.ctx.obs
        if previous is not None and not isinstance(previous, FlightRecorder):
            raise CoralError("a profiler is already installed on this context")
        # everything that can fail happens before any observer is installed,
        # so an exception here leaves the context and injector untouched
        self._t0 = self._clock()
        self._eval_before = self.ctx.stats.snapshot()
        memo = getattr(self.ctx, "memo", None)
        self._memo_before = memo.snapshot() if memo is not None else None
        if self.pool is not None:
            self._buffer_before = self.pool.stats.snapshot()
            btree = self.pool.btree_stats
            self._btree_before = btree.snapshot() if btree is not None else None
        if self.server is not None:
            self._server_before = self.server.stats.snapshot()
            self._faults_before = dict(self.server.faults.counts)
        self._storage_counter = self.registry.counter(
            "storage.events", "arrivals per fault-injection point", ("point",)
        )
        if self.server is not None:
            self._prev_faults_observer = self.server.faults.observer
            self.server.faults.observer = self
        # a flight recorder yields the slot for the block; restored at exit
        self._prev_obs = previous
        self.ctx.obs = self
        self._installed = True
        self._used = True
        return self

    def __exit__(self, *exc_info) -> bool:
        wall = self._clock() - self._t0
        self.ctx.obs = self._prev_obs
        if self.server is not None:
            self.server.faults.observer = self._prev_faults_observer
        self._installed = False
        self.profile = self._finalize(wall)
        return False

    # -- hooks: fixpoint rules -----------------------------------------------

    def begin_rule(self, rule) -> PyTuple[_RuleEntry, float]:
        entry = self._rules.get(id(rule))
        if entry is None:
            entry = self._rules[id(rule)] = _RuleEntry(str(rule))
        entry.applications += 1
        return entry, self._clock()

    def end_rule(self, entry: _RuleEntry, start: float) -> None:
        elapsed = self._clock() - start
        entry.time += elapsed
        if self.tracer is not None:
            self.tracer.complete(
                f"rule {entry.text.split('(', 1)[0]}", "eval", start,
                rule=entry.text,
            )

    # -- hooks: fixpoint iterations ------------------------------------------

    def begin_iteration(self, scc_label: str, index: int) -> float:
        return self._clock()

    def end_iteration(
        self, scc_label: str, index: int, new_facts: int, start: float
    ) -> None:
        elapsed = self._clock() - start
        self._iterations.append(
            {
                "scc": scc_label,
                "index": index,
                "new_facts": new_facts,
                "time": elapsed,
            }
        )
        if self.tracer is not None:
            self.tracer.complete(
                "fixpoint.iteration", "eval", start,
                scc=scc_label, index=index, new_facts=new_facts,
            )

    # -- hooks: pipelined / ordered-search subgoals --------------------------

    def begin_subgoal(
        self, kind: str, pred: str, arity: int
    ) -> PyTuple[_SubgoalEntry, float, str]:
        key = (kind, f"{pred}/{arity}")
        entry = self._subgoals.get(key)
        if entry is None:
            entry = self._subgoals[key] = _SubgoalEntry()
        entry.calls += 1
        return entry, self._clock(), key[1]

    def end_subgoal(self, token: PyTuple[_SubgoalEntry, float, str]) -> None:
        entry, start, label = token
        entry.time += self._clock() - start
        if self.tracer is not None:
            self.tracer.complete("subgoal", "eval", start, pred=label)

    # -- hooks: join scans ----------------------------------------------------

    def on_scan(self, key: PredKey, tuples: int, matches: int) -> None:
        entry = self._scans.get(key)
        if entry is None:
            entry = self._scans[key] = _ScanEntry()
        entry.scans += 1
        entry.tuples += tuples
        entry.matches += matches

    # -- hooks: storage (called by FaultInjector.check) ----------------------

    def storage_event(self, point: str) -> None:
        self._storage_counter.inc(1, point)
        if self.tracer is not None:
            self.tracer.instant(point, "storage")

    # -- hooks: generic spans (query, rewrite, module calls) -----------------

    def begin_span(self) -> float:
        return self._clock()

    def end_span(self, name: str, cat: str, start: float, **args) -> None:
        if self.tracer is not None:
            self.tracer.complete(name, cat, start, **args)

    def span(self, name: str, cat: str = "eval", **args):
        """Context-manager form for non-generator call sites."""
        if self.tracer is not None:
            return self.tracer.span(name, cat, **args)
        import contextlib

        return contextlib.nullcontext()

    def event(self, name: str, cat: str = "eval", **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, cat, **args)

    # -- finalization ---------------------------------------------------------

    def _delta(self, before: Dict[str, float], after: Dict[str, float]):
        return {key: after[key] - before.get(key, 0) for key in after}

    def _finalize(self, wall: float) -> QueryProfile:
        eval_after = self.ctx.stats.snapshot()
        eval_stats = self._delta(self._eval_before, eval_after)

        # merge rule entries by text (the same rule object exists once per
        # evaluator instance; a re-compiled module yields equal text)
        merged: Dict[str, Dict[str, object]] = {}
        for entry in self._rules.values():
            slot = merged.get(entry.text)
            if slot is None:
                merged[entry.text] = {
                    "rule": entry.text,
                    "applications": entry.applications,
                    "derived": entry.derived,
                    "duplicates": entry.duplicates,
                    "time": entry.time,
                }
            else:
                slot["applications"] += entry.applications
                slot["derived"] += entry.derived
                slot["duplicates"] += entry.duplicates
                slot["time"] += entry.time
        rules = sorted(merged.values(), key=lambda r: r["time"], reverse=True)

        subgoals: Dict[str, Dict[str, Dict[str, object]]] = {}
        for (kind, pred), entry in self._subgoals.items():
            subgoals.setdefault(kind, {})[pred] = {
                "calls": entry.calls,
                "time": entry.time,
            }
        scans = {
            f"{pred}/{arity}": {
                "scans": entry.scans,
                "tuples": entry.tuples,
                "matches": entry.matches,
            }
            for (pred, arity), entry in self._scans.items()
        }

        storage: Optional[Dict[str, object]] = None
        if self.pool is not None or self.server is not None:
            storage = {}
            if self.pool is not None:
                storage["buffer"] = self._delta(
                    self._buffer_before, self.pool.stats.snapshot()
                )
                btree = self.pool.btree_stats
                if btree is not None:
                    before = self._btree_before or {
                        key: 0 for key in btree.snapshot()
                    }
                    storage["btree"] = self._delta(before, btree.snapshot())
                else:
                    storage["btree"] = {
                        "node_reads": 0, "node_writes": 0, "splits": 0,
                    }
            if self.server is not None:
                storage["server"] = self._delta(
                    self._server_before, self.server.stats.snapshot()
                )
                faults_after = dict(self.server.faults.counts)
                points = self._delta(self._faults_before, faults_after)
                storage["fault_points"] = {
                    point: count for point, count in sorted(points.items()) if count
                }
                storage["journal"] = {
                    "appends": points.get("journal.record", 0),
                    "fsyncs": points.get("journal.sync", 0),
                }
            storage.setdefault("buffer", {
                "hits": 0, "misses": 0, "evictions": 0, "writebacks": 0,
            })
            storage.setdefault("server", {
                "page_reads": 0, "page_writes": 0, "allocations": 0,
            })
            storage.setdefault("btree", {
                "node_reads": 0, "node_writes": 0, "splits": 0,
            })
            storage.setdefault("journal", {"appends": 0, "fsyncs": 0})
            storage.setdefault("fault_points", {})

        memo_stats: Optional[Dict[str, int]] = None
        memo = getattr(self.ctx, "memo", None)
        if memo is not None and self._memo_before is not None:
            after = memo.snapshot()
            memo_stats = self._delta(self._memo_before, after)
            # entries/bytes are gauges, not counters: report the level
            memo_stats["entries"] = after["entries"]
            memo_stats["bytes"] = after["bytes"]

        self._publish_metrics(
            eval_stats, rules, subgoals, scans, storage, memo_stats
        )
        return QueryProfile(
            wall_time=wall,
            eval_stats=eval_stats,
            rules=rules,
            iterations=list(self._iterations),
            subgoals=subgoals,
            scans=scans,
            storage=storage,
            registry=self.registry,
            tracer=self.tracer,
            memo=memo_stats,
        )

    def _publish_metrics(
        self, eval_stats, rules, subgoals, scans, storage, memo_stats=None
    ):
        """Flush the hot-path accumulators into the registry so a single
        ``registry.collect()`` (or ``profile.to_dict()["metrics"]``) carries
        every counter under its stable name."""
        registry = self.registry
        eval_counter = registry.counter(
            "eval.stats", "EvalStats deltas over the profiled block", ("stat",)
        )
        for stat, value in eval_stats.items():
            if value:
                eval_counter.inc(value, stat)
        rule_apps = registry.counter(
            "eval.rule.applications", "rule applications", ("rule",)
        )
        rule_derived = registry.counter(
            "eval.rule.derived", "tuples derived (pre-dedup)", ("rule",)
        )
        rule_dups = registry.counter(
            "eval.rule.duplicates", "derivations rejected as duplicates", ("rule",)
        )
        rule_time = registry.histogram(
            "eval.rule.seconds", "inclusive per-application time", ("rule",),
            boundaries=TIME_BUCKETS,
        )
        for rule in rules:
            rule_apps.inc(rule["applications"], rule["rule"])
            rule_derived.inc(rule["derived"], rule["rule"])
            rule_dups.inc(rule["duplicates"], rule["rule"])
            rule_time.observe(rule["time"], rule["rule"])
        iteration_sizes = registry.histogram(
            "eval.iteration.new_facts", "facts per fixpoint iteration",
            boundaries=SIZE_BUCKETS,
        )
        for item in self._iterations:
            iteration_sizes.observe(item["new_facts"])
        subgoal_calls = registry.counter(
            "eval.subgoal.calls", "subgoal activations", ("kind", "pred")
        )
        for kind, by_pred in subgoals.items():
            for pred, entry in by_pred.items():
                subgoal_calls.inc(entry["calls"], kind, pred)
        scan_tuples = registry.counter(
            "eval.scan.tuples", "tuples probed by the join", ("pred",)
        )
        scan_matches = registry.counter(
            "eval.scan.matches", "tuples that unified", ("pred",)
        )
        for pred, entry in scans.items():
            scan_tuples.inc(entry["tuples"], pred)
            scan_matches.inc(entry["matches"], pred)
        if storage:
            for group in ("buffer", "server", "btree", "journal"):
                counter = registry.counter(
                    f"storage.{group}", f"{group} counters", ("stat",)
                )
                for stat, value in storage[group].items():
                    if value:
                        counter.inc(value, stat)
        if memo_stats:
            memo_counter = registry.counter(
                "memo.events",
                "cross-query memo cache activity over the profiled block",
                ("stat",),
            )
            for stat, value in memo_stats.items():
                if stat in ("entries", "bytes"):
                    continue
                if value:
                    memo_counter.inc(value, stat)
            registry.gauge(
                "memo.entries", "retained memo entries"
            ).set(memo_stats["entries"])
            registry.gauge(
                "memo.bytes", "estimated bytes retained by the memo cache"
            ).set(memo_stats["bytes"])
