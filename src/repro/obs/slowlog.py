"""The slow-query log: queries whose evaluation exceeds a threshold are
appended, with their plan, to a JSON-lines file an operator can tail.

Each entry is one JSON object::

    {"wall_seconds": 1.73, "query": "path(1, X)", "answers": 212,
     "finished": true, "eval": {...EvalStats deltas...},
     "plan": "EXPLAIN path(1, X)\\n+- predicate: ...", "ts": 1754500000.0}

``wall_seconds`` counts only time spent *inside* evaluation (the generator
frames between pulls), not time the consumer sat on a lazy cursor — a
client that fetches one answer per minute does not make a fast query
"slow".  ``finished`` distinguishes a drained cursor from one abandoned
mid-stream.  The plan is the same rendering as ``Session.explain`` (module,
rewriting, SCC order, per-rule join order); with ``analyze=True`` the query
is re-run under a trace-free profiler and the entry gains a ``profile``
section with per-rule applications/derived/duplicates/time.  The re-run is
guarded by a reentrancy flag so the analysis query can never log itself.

When a distributed trace context is active on the session (the server sets
``session.current_trace`` around each traced request — docs/OBSERVABILITY.md),
the entry also carries a ``trace`` field with the trace id and the context
is flipped to sampled, so a p99 outlier always links to its cross-process
trace even when head-based sampling would have skipped it.

Wire it up with ``session.enable_slow_query_log(path, threshold=...)`` or
``python -m repro.server --slow-query-log FILE --slow-query-seconds S``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional


class SlowQueryLog:
    """Append-only JSON-lines log of queries slower than ``threshold``."""

    def __init__(
        self,
        path: str,
        threshold: float = 1.0,
        analyze: bool = False,
        max_plan_chars: int = 8000,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"slow-query threshold must be >= 0, got {threshold}")
        self.path = path
        self.threshold = threshold
        self.analyze = analyze
        self.max_plan_chars = max_plan_chars
        self.entries_written = 0
        self.last_entry: Optional[Dict[str, object]] = None
        self._lock = threading.Lock()
        self._busy = False

    def observe(
        self,
        session,
        literal,
        wall_seconds: float,
        answers: int,
        eval_delta: Dict[str, int],
        finished: bool,
    ) -> Optional[Dict[str, object]]:
        """Called by the session when a query's cursor closes.  Returns the
        entry written, or None when the query was fast enough (or this is
        the log's own analysis re-run)."""
        if wall_seconds < self.threshold or self._busy:
            return None
        from ..errors import CoralError
        from ..explain.plan import explain_literal

        entry: Dict[str, object] = {
            "ts": time.time(),
            "query": str(literal),
            "wall_seconds": wall_seconds,
            "answers": answers,
            "finished": finished,
            "eval": {k: v for k, v in eval_delta.items() if v},
        }
        # distributed tracing (repro.obs.disttrace): a query slow enough to
        # log is always worth a trace — tag the entry with the active trace
        # id and flip the context to sampled so every hop that sees it
        # afterwards records its spans (tail-based forced sampling)
        ctx = getattr(session, "current_trace", None)
        if ctx is not None:
            entry["trace"] = ctx.trace_id
            ctx.sampled = True
        self._busy = True  # the plan (and any analyze re-run) must not re-log
        try:
            plan = explain_literal(session, literal, analyze=self.analyze)
            entry["plan"] = plan[: self.max_plan_chars]
        except CoralError as exc:
            entry["plan_error"] = str(exc)
        finally:
            self._busy = False
        with self._lock:
            try:
                with open(self.path, "a") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            except OSError:
                return None  # the log must never fail the query it records
            self.entries_written += 1
            self.last_entry = entry
        return entry

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog {self.path!r} threshold={self.threshold}s"
            f" entries={self.entries_written}>"
        )
