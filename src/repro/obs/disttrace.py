"""repro.obs.disttrace — the distributed tracing plane.

A request entering the cluster (shell -> router -> workers, or a write
rippling primary -> replicas) crosses processes whose telemetry was, until
now, uncorrelated.  This module supplies the three pieces that stitch it
back together:

* :class:`TraceContext` — a W3C-traceparent-style context (128-bit trace
  id, 64-bit span id, sampling flag) minted at the client and carried as an
  optional ``trace`` field on every wire op.  Old clients simply omit the
  field; old servers ignore it — the protocol version does not change.
* :class:`SpanBuffer` — a bounded, thread-safe per-process buffer of
  completed spans, optionally drained to a JSON-lines file (one per
  process under ``--span-dir``).  Past the cap spans are counted and
  dropped (surfaced as the ``obs.trace.dropped`` counter), so a sampling
  storm cannot exhaust memory.
* :class:`TraceCollector` — loads per-process span files (or in-memory
  span dicts fetched over the wire) and assembles everything recorded
  under one trace id into a single Chrome/Perfetto trace (pid = process,
  tid = connection) and a rendered hop tree.  Assembly orders by **parent
  links, not timestamps** — the processes' clocks are not assumed to be
  synchronized — and stays well-formed under out-of-order arrival,
  duplicate span ids (first write wins) and missing hops (orphaned spans
  attach under a synthesized root).

Sampling is head-based: the caller mints a sampled context for a fraction
of requests (``--trace-sample`` / ``RemoteSession(trace_sample=...)``).
One tail-based escape hatch exists: a query that trips the slow-query-log
threshold flips its context to sampled (see :mod:`repro.obs.slowlog`), so
p99 outliers always link to a trace.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: the traceparent version octet we emit; parsers accept any two hex digits
WIRE_VERSION = "00"

_FLAG_SAMPLED = 0x01


def _hex_ok(value: str, width: int) -> bool:
    if len(value) != width:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


class TraceContext:
    """One hop's view of a distributed trace.

    ``trace_id`` (32 hex chars) names the whole request; ``span_id``
    (16 hex chars) names this hop's span; ``parent_id`` is the upstream
    hop's span id (None at the root).  ``sampled`` is mutable on purpose:
    the slow-query log flips it to force-sample threshold outliers.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        sampled: bool = True,
        parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context (new 128-bit trace id, new span id)."""
        return cls(secrets.token_hex(16), secrets.token_hex(8), sampled)

    def child(self) -> "TraceContext":
        """The context for the next hop: same trace, fresh span id, this
        span as the parent.  The receiving process records its work under
        the child and forwards the child onward."""
        return TraceContext(
            self.trace_id, secrets.token_hex(8), self.sampled, self.span_id
        )

    def to_wire(self) -> str:
        """The W3C-traceparent-style string carried on wire headers:
        ``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return f"{WIRE_VERSION}-{self.trace_id}-{self.span_id}-{flags:02x}"

    @classmethod
    def from_wire(cls, value: object) -> Optional["TraceContext"]:
        """Parse a wire ``trace`` field; None for absent or malformed
        values (a bad context must never fail the request carrying it)."""
        if not isinstance(value, str):
            return None
        parts = value.split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if not (
            _hex_ok(version, 2)
            and _hex_ok(trace_id, 32)
            and _hex_ok(span_id, 16)
            and _hex_ok(flags, 2)
        ):
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id, bool(int(flags, 16) & _FLAG_SAMPLED))

    def __repr__(self) -> str:
        return f"<TraceContext {self.to_wire()}>"


class HeadSampler:
    """Deterministic head-based rate sampler: of every ``1/rate`` decisions,
    exactly the expected fraction say yes (no RNG, so tests and benchmarks
    are reproducible).  ``rate`` 0 never samples, 1 always does."""

    __slots__ = ("rate", "_accum", "_lock")

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"trace sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._accum = 0.0
        self._lock = threading.Lock()

    def decide(self) -> bool:
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        with self._lock:
            self._accum += self.rate
            if self._accum >= 1.0:
                self._accum -= 1.0
                return True
            return False


class SpanBuffer:
    """A bounded per-process buffer of completed spans.

    Each span is a plain dict (JSON-ready).  With ``path`` set, every
    record is also appended to that JSON-lines file and flushed, so a
    process killed mid-query still leaves its spans on disk for the
    collector — that is what makes missing-hop traces partially
    assemblable.  ``on_drop`` (if set) is called once per span dropped at
    the cap, letting the server surface loss as a metric.
    """

    def __init__(
        self,
        process: str,
        limit: int = 20_000,
        path: Optional[str] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        self.process = process
        self.pid = os.getpid()
        self.limit = limit
        self.path = path
        self.on_drop = on_drop
        self.dropped = 0
        self.recorded = 0
        self._spans: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._handle = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a")

    def __len__(self) -> int:
        return len(self._spans)

    @staticmethod
    def now() -> float:
        """Span timestamps are wall-clock epoch seconds: good enough for
        cross-process display, never trusted for ordering (the collector
        orders by parent links)."""
        return time.time()

    def record(
        self,
        ctx: TraceContext,
        name: str,
        start: float,
        end: Optional[float] = None,
        conn: object = None,
        **args: object,
    ) -> Optional[Dict[str, object]]:
        """Record a completed span for ``ctx`` (its span_id/parent_id pair
        is the tree edge).  ``end=None`` records an instant.  Unsampled
        contexts record nothing."""
        if not ctx.sampled:
            return None
        span: Dict[str, object] = {
            "trace": ctx.trace_id,
            "id": ctx.span_id,
            "parent": ctx.parent_id,
            "name": name,
            "process": self.process,
            "os_pid": self.pid,
            "ts": start,
        }
        if end is not None:
            span["dur"] = max(0.0, end - start)
        if conn is not None:
            span["conn"] = conn
        if args:
            span["args"] = args
        with self._lock:
            if len(self._spans) >= self.limit:
                self.dropped += 1
                hook = self.on_drop
                if hook is not None:
                    try:
                        hook()
                    except Exception:
                        pass
                return None
            self._spans.append(span)
            self.recorded += 1
            if self._handle is not None:
                try:
                    self._handle.write(json.dumps(span, sort_keys=True) + "\n")
                    self._handle.flush()
                except OSError:
                    pass  # the drain file must never fail the request
        return span

    def spans_for(self, trace_id: str) -> List[Dict[str, object]]:
        with self._lock:
            return [s for s in self._spans if s["trace"] == trace_id]

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._spans)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


class TraceCollector:
    """Assembles per-process spans into cross-process traces.

    Feed it span dicts (:meth:`add_span`), JSONL files (:meth:`load`) or a
    whole ``--span-dir`` (:meth:`load_dir`); then :meth:`assemble` renders
    one trace id as a Chrome trace and :meth:`tree` as a text hop tree.

    Robustness contract (exercised directly by tests/test_disttrace.py):

    * **out-of-order arrival** — spans may be added in any order;
    * **clock skew** — parent/child edges come from span ids, never from
      comparing timestamps across processes;
    * **duplicate span ids** — the first span recorded under an id wins,
      later duplicates are counted and ignored;
    * **missing hops** — spans whose parent never arrived (a worker killed
      mid-query) are attached under a synthesized ``(unparented)`` root so
      the partial trace still renders and exports.
    """

    def __init__(self) -> None:
        #: trace id -> span id -> span dict (first writer wins)
        self._traces: Dict[str, Dict[str, Dict[str, object]]] = {}
        self.duplicates = 0
        self.malformed = 0

    def add_span(self, span: Dict[str, object]) -> bool:
        trace_id = span.get("trace")
        span_id = span.get("id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            self.malformed += 1
            return False
        by_id = self._traces.setdefault(trace_id, {})
        if span_id in by_id:
            self.duplicates += 1
            return False
        by_id[span_id] = span
        return True

    def add_spans(self, spans: Iterable[Dict[str, object]]) -> int:
        return sum(1 for span in spans if self.add_span(span))

    def load(self, path: str) -> int:
        """Load one process's JSONL span file; unparseable lines (a torn
        final write from a killed process) are counted as malformed."""
        added = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except ValueError:
                    self.malformed += 1
                    continue
                if isinstance(span, dict) and self.add_span(span):
                    added += 1
        return added

    def load_dir(self, directory: str) -> int:
        added = 0
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".jsonl"):
                added += self.load(os.path.join(directory, entry))
        return added

    def trace_ids(self) -> List[str]:
        return sorted(self._traces)

    def spans(self, trace_id: str) -> List[Dict[str, object]]:
        return list(self._traces.get(trace_id, {}).values())

    def processes(self, trace_id: str) -> List[str]:
        """The distinct process names that contributed spans to a trace."""
        return sorted(
            {
                str(span.get("process", "?"))
                for span in self._traces.get(trace_id, {}).values()
            }
        )

    # -- tree assembly (parent links, not timestamps) -----------------------

    def _edges(
        self, trace_id: str
    ) -> Tuple[List[str], Dict[str, List[str]], Dict[str, Dict[str, object]]]:
        by_id = self._traces.get(trace_id, {})
        children: Dict[str, List[str]] = {}
        roots: List[str] = []
        for span_id, span in by_id.items():
            parent = span.get("parent")
            if isinstance(parent, str) and parent in by_id:
                children.setdefault(parent, []).append(span_id)
            else:
                # a true root (parent None) or an orphan whose parent hop
                # never reported (killed worker): both render at top level
                roots.append(span_id)

        def order(ids: List[str]) -> List[str]:
            # stable, skew-immune ordering: within one process a clock is
            # self-consistent, so (process, ts) only ranks siblings that
            # share a process by time and never compares across clocks
            return sorted(
                ids,
                key=lambda sid: (
                    str(by_id[sid].get("process", "")),
                    float(by_id[sid].get("ts", 0.0) or 0.0),
                    sid,
                ),
            )

        for parent in children:
            children[parent] = order(children[parent])
        return order(roots), children, by_id

    def tree(self, trace_id: str) -> str:
        """A rendered hop tree, e.g. for the shell's ``@trace <id>``."""
        roots, children, by_id = self._edges(trace_id)
        if not by_id:
            return f"trace {trace_id}: no spans"
        lines = [f"trace {trace_id} ({len(by_id)} spans)"]

        def walk(span_id: str, depth: int) -> None:
            span = by_id[span_id]
            dur = span.get("dur")
            timing = f" {float(dur) * 1e3:.2f}ms" if dur is not None else ""
            conn = span.get("conn")
            where = f"{span.get('process', '?')}"
            if conn is not None:
                where += f"/{conn}"
            orphan = ""
            parent = span.get("parent")
            if isinstance(parent, str) and parent not in by_id and depth == 0:
                orphan = " (orphaned: parent hop missing)"
            lines.append(
                "  " * depth
                + f"- {span.get('name', '?')} [{where}]{timing}{orphan}"
            )
            for child in children.get(span_id, ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)

    def assemble(self, trace_id: str) -> Dict[str, object]:
        """One trace id as a Chrome/Perfetto trace-event JSON object.

        pid = contributing process (named via metadata events), tid = the
        connection a span was recorded under.  Timestamps are rebased to
        microseconds from the earliest span so the trace loads at time 0;
        cross-process skew shifts lanes against each other but the parent
        links (exported as ``args.span``/``args.parent``) stay exact.
        """
        roots, children, by_id = self._edges(trace_id)
        spans = list(by_id.values())
        origin = min(
            (float(s.get("ts", 0.0) or 0.0) for s in spans), default=0.0
        )
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[int, str], int] = {}
        trace_events: List[Dict[str, object]] = []
        for process in sorted({str(s.get("process", "?")) for s in spans}):
            pids[process] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )

        def depth_order(span_id: str, depth: int):
            yield span_id, depth
            for child in children.get(span_id, ()):
                yield from depth_order(child, depth + 1)

        ordered: List[Tuple[str, int]] = []
        for root in roots:
            ordered.extend(depth_order(root, 0))
        for span_id, depth in ordered:
            span = by_id[span_id]
            process = str(span.get("process", "?"))
            pid = pids[process]
            conn = str(span.get("conn", "-"))
            tid_key = (pid, conn)
            if tid_key not in tids:
                tids[tid_key] = len([k for k in tids if k[0] == pid]) + 1
            entry: Dict[str, object] = {
                "name": str(span.get("name", "?")),
                "cat": "disttrace",
                "ph": "X" if "dur" in span else "i",
                "ts": round(
                    (float(span.get("ts", 0.0) or 0.0) - origin) * 1e6, 3
                ),
                "pid": pid,
                "tid": tids[tid_key],
                "args": {
                    "span": span_id,
                    "parent": span.get("parent"),
                    "depth": depth,
                },
            }
            if "dur" in span:
                entry["dur"] = round(float(span["dur"]) * 1e6, 3)
            else:
                entry["s"] = "t"
            extra = span.get("args")
            if isinstance(extra, dict):
                entry["args"].update(extra)
            trace_events.append(entry)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "trace_id": trace_id,
                "processes": self.processes(trace_id),
                "duplicate_spans": self.duplicates,
                "malformed_spans": self.malformed,
            },
        }

    def write_chrome_trace(self, trace_id: str, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.assemble(trace_id), handle)
