"""Prometheus text-format exposition and the telemetry HTTP endpoint.

The ROADMAP's north star is a server under heavy multi-client traffic;
that is undrivable without scrapeable metrics.  This module renders any
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format 0.0.4 (``# HELP``/``# TYPE`` comments, escaped label
values, and for histograms the cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``) and serves it from a stdlib ``http.server`` thread:

* ``GET /metrics``  — the rendered registries (the scrape target);
* ``GET /healthz``  — liveness: ``200 ok`` (or ``503`` if a health
  callable says otherwise);
* ``GET /debug/flight`` — the live flight-recorder ring as JSON lines
  (404 when no recorder is attached);
* ``GET /debug/trace/<id>`` — one assembled cross-process Chrome trace
  for a distributed trace id (:mod:`repro.obs.disttrace`); 404 when no
  trace lookup is attached or the id recorded no spans.

Start it through ``CoralServer(telemetry_port=...)`` — which wires in the
server's registry and flight recorder and ties the endpoint's lifecycle to
the query server's — or standalone::

    telemetry = TelemetryServer(port=9464, registries=[registry])
    telemetry.start()
    ... urllib.request.urlopen(telemetry.url + "/metrics") ...
    telemetry.shutdown()

No third-party client library is involved: the format is line-oriented
text, and ``tests/prom_parser.py`` round-trips it in CI.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Tuple as PyTuple

from .flight import FlightRecorder
from .metrics import MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = "coral") -> str:
    """Our dotted metric names (``server.request.seconds``) as legal
    Prometheus names (``coral_server_request_seconds``)."""
    flat = _SANITIZE.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels_text(names, values, extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _SnapshotMetric:
    """A metric reconstructed from a ``MetricsRegistry.collect()`` entry,
    with extra labels appended to every series.

    This is how a shard router re-exposes its workers' metrics: each
    worker's STATS payload carries ``registry.collect()``, and the router
    renders those snapshots next to its own live registry with a
    ``worker="N"`` label — one scrape shows the whole fleet.  Histogram
    snapshot values already carry ``boundaries``/``bucket_counts``/``sum``/
    ``count``, exactly what the renderer reads off a live histogram.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "_values", "_extra")

    def __init__(
        self,
        name: str,
        entry: Dict[str, object],
        extra_names: PyTuple[str, ...],
        extra_values: PyTuple[str, ...],
    ) -> None:
        self.name = name
        self.kind = str(entry.get("kind", "counter"))
        self.help = str(entry.get("help", "") or name)
        self.labelnames = tuple(entry.get("labels", ())) + extra_names
        self._values = entry.get("values", {})
        self._extra = extra_values

    def collect(self) -> Dict[PyTuple[str, ...], object]:
        out: Dict[PyTuple[str, ...], object] = {}
        for key, value in self._values.items():
            # collect() flattened the label tuple with '|'; reverse it
            base = tuple(key.split("|")) if key else ()
            out[base + self._extra] = value
        return out


def snapshot_metrics(
    snapshots: Iterable[
        PyTuple[Dict[str, str], Dict[str, Dict[str, object]]]
    ],
) -> List[_SnapshotMetric]:
    """Adapter metrics for ``(extra_labels, collected)`` pairs, ready to
    render alongside live registries."""
    out: List[_SnapshotMetric] = []
    for extra_labels, collected in snapshots:
        if not isinstance(collected, dict):
            continue
        extra_names = tuple(extra_labels.keys())
        extra_values = tuple(str(v) for v in extra_labels.values())
        for name in sorted(collected):
            entry = collected[name]
            if isinstance(entry, dict):
                out.append(
                    _SnapshotMetric(name, entry, extra_names, extra_values)
                )
    return out


def render_prometheus(
    registries: Iterable[MetricsRegistry],
    namespace: str = "coral",
    snapshots: Iterable[
        PyTuple[Dict[str, str], Dict[str, Dict[str, object]]]
    ] = (),
) -> str:
    """Every metric of every registry, one text payload.

    Same-named metrics from different registries merge into one family
    when their kinds agree; a kind clash keeps the first and skips the
    rest (exposition must never raise into a scrape handler).
    ``snapshots`` adds ``(extra_labels, collected)`` pairs — remote
    registries captured as :meth:`MetricsRegistry.collect` dicts, each
    rendered with its extra labels (see :class:`_SnapshotMetric`).
    """
    families: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    sources: List[PyTuple[object, ...]] = [
        tuple(registry.metrics()) for registry in registries
    ]
    sources.append(tuple(snapshot_metrics(snapshots)))
    for metrics in sources:
        for metric in metrics:
            family = metric_name(metric.name, namespace)
            slot = families.get(family)
            if slot is None:
                families[family] = {
                    "kind": metric.kind,
                    "help": metric.help or metric.name,
                    "metrics": [metric],
                }
                order.append(family)
            elif slot["kind"] == metric.kind:
                slot["metrics"].append(metric)
    lines: List[str] = []
    for family in order:
        slot = families[family]
        kind = slot["kind"]
        lines.append(f"# HELP {family} {_escape_help(slot['help'])}")
        lines.append(f"# TYPE {family} {kind}")
        for metric in slot["metrics"]:
            names = metric.labelnames
            if kind == "histogram":
                for values, snap in sorted(metric.collect().items()):
                    cumulative = 0
                    for edge, count in zip(
                        snap["boundaries"], snap["bucket_counts"]
                    ):
                        cumulative += count
                        le = f'le="{_format_value(edge)}"'
                        lines.append(
                            f"{family}_bucket"
                            f"{_labels_text(names, values, le)}"
                            f" {cumulative}"
                        )
                    inf_label = 'le="+Inf"'
                    lines.append(
                        f"{family}_bucket"
                        f"{_labels_text(names, values, inf_label)}"
                        f" {snap['count']}"
                    )
                    lines.append(
                        f"{family}_sum{_labels_text(names, values)}"
                        f" {_format_value(snap['sum'])}"
                    )
                    lines.append(
                        f"{family}_count{_labels_text(names, values)}"
                        f" {snap['count']}"
                    )
            else:
                for values, value in sorted(metric.collect().items()):
                    lines.append(
                        f"{family}{_labels_text(names, values)}"
                        f" {_format_value(value)}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


class _Handler(BaseHTTPRequestHandler):
    server: "ThreadingHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes every few seconds must not spam stderr

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = telemetry.render().encode("utf-8")
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    body,
                )
            elif path == "/healthz":
                healthy, detail = telemetry.health()
                payload = json.dumps(
                    {"status": "ok" if healthy else "unhealthy",
                     "detail": detail}
                ).encode("utf-8")
                self._send(
                    200 if healthy else 503, "application/json", payload
                )
            elif path == "/debug/flight":
                flight = telemetry.flight
                if flight is None:
                    self._send(
                        404, "text/plain; charset=utf-8",
                        b"no flight recorder attached\n",
                    )
                else:
                    body = "".join(
                        json.dumps(record, sort_keys=True) + "\n"
                        for record in flight.snapshot()
                    ).encode("utf-8")
                    self._send(200, "application/x-ndjson", body)
            elif path.startswith("/debug/trace/"):
                trace_id = path[len("/debug/trace/"):]
                assembled = None
                if telemetry.trace_lookup is not None and trace_id:
                    assembled = telemetry.trace_lookup(trace_id)
                if assembled is None:
                    self._send(
                        404, "text/plain; charset=utf-8",
                        b"no such trace\n",
                    )
                else:
                    self._send(
                        200, "application/json",
                        json.dumps(assembled, sort_keys=True).encode("utf-8"),
                    )
            else:
                self._send(
                    404, "text/plain; charset=utf-8", b"not found\n"
                )
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # scraper hung up mid-response; nothing to salvage


class TelemetryServer:
    """The operator endpoint: a daemon HTTP thread serving ``/metrics``,
    ``/healthz``, ``/debug/flight``, and ``/debug/trace/<id>``."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registries: Iterable[MetricsRegistry] = (),
        flight: Optional[FlightRecorder] = None,
        health: Optional[Callable[[], PyTuple[bool, str]]] = None,
        namespace: str = "coral",
        snapshots: Optional[
            Callable[
                [],
                Iterable[
                    PyTuple[Dict[str, str], Dict[str, Dict[str, object]]]
                ],
            ]
        ] = None,
        trace_lookup: Optional[
            Callable[[str], Optional[Dict[str, object]]]
        ] = None,
    ) -> None:
        self._registries: List[MetricsRegistry] = list(registries)
        self.flight = flight
        self._health = health
        #: trace id -> assembled Chrome trace dict (or None when unknown);
        #: backs ``/debug/trace/<id>``
        self.trace_lookup = trace_lookup
        #: called per scrape: (extra_labels, collected) pairs for remote
        #: registries — a shard router's cached worker snapshots
        self._snapshots = snapshots
        self.namespace = namespace
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- composition ---------------------------------------------------------

    def add_registry(self, registry: MetricsRegistry) -> None:
        self._registries.append(registry)

    def render(self) -> str:
        snapshots: Iterable = ()
        if self._snapshots is not None:
            try:
                snapshots = list(self._snapshots())
            except Exception:  # a scrape must render what it can
                snapshots = ()
        return render_prometheus(self._registries, self.namespace, snapshots)

    def health(self) -> PyTuple[bool, str]:
        if self._health is None:
            return True, "ok"
        try:
            return self._health()
        except Exception as exc:  # health probes must degrade, not raise
            return False, f"health check failed: {exc}"

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> PyTuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="coral-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
