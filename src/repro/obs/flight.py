"""The flight recorder: an always-on, bounded ring of recent evaluation and
storage events, dumped to a JSON-lines file when something goes wrong.

A profiler answers "what did this query cost?" — but it must be installed
*before* the interesting query runs.  Production failures arrive unannounced:
a storage fault mid-writeback, a runaway query tripping its resource limits.
The :class:`FlightRecorder` closes that gap the way an aircraft recorder
does: it implements the same observer protocol as
:class:`~repro.obs.profiler.Profiler` (so every ``if obs is not None`` hook
site feeds it at the same single-branch cost discipline), but instead of
accumulating a full profile it keeps only the last ``capacity`` events in a
ring (``collections.deque(maxlen=...)``).  Memory is bounded no matter how
long the session runs, and the per-event cost is one clock read plus one
deque append — cheap enough to leave enabled on a live server.

Two triggers write the ring out as a post-mortem dump (when ``dump_path``
is configured):

* ``on_fault(point, action)`` — called by :meth:`repro.faults.FaultInjector
  .check` *before* it raises an injected crash/failure, so the dump's final
  events include the arrival instant at the faulting injection point;
* ``on_error(exc)`` — called by :class:`~repro.api.session.QueryResult`
  when a pull dies with a :class:`~repro.errors.StorageError` or
  :class:`~repro.errors.ResourceLimitError`.

Install via ``session.enable_flight_recorder(...)`` (which also registers
the recorder as the storage fault injector's observer) or serve the live
ring over HTTP at ``/debug/flight`` (:mod:`repro.obs.exposition`).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Dict, List, Optional, Tuple as PyTuple

from ..errors import ResourceLimitError, StorageError


class _RuleToken:
    """Per-rule handle returned by :meth:`FlightRecorder.begin_rule`; the
    evaluator mutates ``derived``/``duplicates`` on it (the same contract
    the profiler's rule entries satisfy)."""

    __slots__ = ("text", "derived", "duplicates")

    def __init__(self, text: str) -> None:
        self.text = text
        self.derived = 0
        self.duplicates = 0


class _Span:
    __slots__ = ("_recorder", "_name", "_cat", "_args", "_start")

    def __init__(self, recorder: "FlightRecorder", name, cat, args) -> None:
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._recorder._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._recorder._push(
            "X", self._start,
            self._recorder._clock() - self._start,
            self._name, self._cat, self._args or None,
        )


class FlightRecorder:
    """A bounded ring buffer observer, installable as ``ctx.obs``.

    ``capacity`` bounds the ring; ``dump_path`` enables automatic
    post-mortem dumps (None = record only, dump on demand via
    :meth:`dump`).  ``session.profile()`` may be entered while a recorder
    is installed: the profiler takes the observer slot for the block and
    restores the recorder on exit.
    """

    def __init__(
        self,
        capacity: int = 4096,
        dump_path: Optional[str] = None,
        clock=time.perf_counter,
        scan_stride: int = 16,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        if scan_stride < 1:
            raise ValueError(f"scan_stride must be >= 1, got {scan_stride}")
        self.capacity = capacity
        self.dump_path = dump_path
        self._clock = clock
        # relation probes outnumber every other event by ~50:1; recording
        # each one would dominate the recorder's standing cost, so only
        # every ``scan_stride``-th probe enters the ring (1 = record all)
        self.scan_stride = scan_stride
        self._scan_tick = 0
        # event tuples: (ph, ts, dur, name, cat, args-or-None); deque with
        # maxlen discards the oldest entry on overflow in C, so the ring
        # never grows and never needs trimming.  Appends are lock-free —
        # deque.append is atomic under the GIL — and snapshots copy with a
        # retry loop instead, keeping the recording path at one clock read
        # plus one append (the cost that lets the ring stay always-on)
        self._ring: deque = deque(maxlen=capacity)
        self._rules: Dict[int, _RuleToken] = {}
        #: events recorded over the recorder's lifetime (approximate only
        #: if multiple threads record simultaneously; a session evaluates
        #: on one thread at a time, so in practice it is exact)
        self.recorded = 0
        self.dump_count = 0
        self.last_dump_reason: Optional[str] = None
        #: the distributed trace context active when the next dump fires
        #: (repro.obs.disttrace) — the server mirrors the session's
        #: ``current_trace`` here so a crash dump's header names the trace
        #: id of the request that died; None when untraced
        self.current_trace = None

    def __len__(self) -> int:
        return len(self._ring)

    def _push(self, ph, ts, dur, name, cat, args) -> None:
        self._ring.append((ph, ts, dur, name, cat, args))
        self.recorded += 1

    # -- the observer protocol (mirrors Profiler's hook surface) -------------

    def begin_span(self) -> float:
        return self._clock()

    def end_span(self, name: str, cat: str, start: float, **args) -> None:
        self._push("X", start, self._clock() - start, name, cat, args or None)

    def span(self, name: str, cat: str = "eval", **args) -> _Span:
        return _Span(self, name, cat, args)

    def event(self, name: str, cat: str = "eval", **args) -> None:
        self._push("i", self._clock(), 0.0, name, cat, args or None)

    def begin_rule(self, rule) -> PyTuple[_RuleToken, float]:
        token = self._rules.get(id(rule))
        if token is None:
            token = self._rules[id(rule)] = _RuleToken(str(rule))
        return token, self._clock()

    def end_rule(self, token: _RuleToken, start: float) -> None:
        self._push(
            "X", start, self._clock() - start, "rule", "eval",
            {"rule": token.text},
        )

    def begin_iteration(self, scc_label: str, index: int) -> float:
        return self._clock()

    def end_iteration(
        self, scc_label: str, index: int, new_facts: int, start: float
    ) -> None:
        self._push(
            "X", start, self._clock() - start, "fixpoint.iteration", "eval",
            {"scc": scc_label, "index": index, "new_facts": new_facts},
        )

    def begin_subgoal(self, kind: str, pred: str, arity: int):
        return (f"{pred}/{arity}", kind, self._clock())

    def end_subgoal(self, token) -> None:
        label, kind, start = token
        self._push(
            "X", start, self._clock() - start, "subgoal", "eval",
            {"pred": label, "kind": kind},
        )

    def on_scan(self, key, tuples: int, matches: int) -> None:
        # the hottest hook by far (one call per relation probe): sample by
        # stride, store the raw key, and defer string formatting to
        # snapshot()/dump() time
        self._scan_tick = tick = self._scan_tick + 1
        if tick % self.scan_stride:
            return
        self._push("i", self._clock(), 0.0, "scan", "eval", (key, tuples, matches))

    # -- storage + failure hooks ---------------------------------------------

    def storage_event(self, point: str) -> None:
        """One arrival at a fault-injection point (same vocabulary as the
        profiler's storage instants and docs/OBSERVABILITY.md's table)."""
        self._push("i", self._clock(), 0.0, point, "storage", None)

    def on_fault(self, point: str, action: str) -> None:
        """An injected fault is about to fire at ``point``; the arrival
        instant for the point is already in the ring (``storage_event`` ran
        first), so the dump's tail shows exactly where the crash hit."""
        self._push(
            "i", self._clock(), 0.0, f"fault.{action}", "storage",
            {"point": point},
        )
        self.dump(reason=f"fault.{action}:{point}")

    def on_error(self, exc: BaseException) -> None:
        """A query pull died.  Every error becomes a ring instant; only the
        classes worth a post-mortem (storage failures, resource-limit
        trips) trigger an automatic dump."""
        self._push(
            "i", self._clock(), 0.0, f"error.{type(exc).__name__}", "error",
            {"message": str(exc)[:200]},
        )
        if isinstance(exc, (StorageError, ResourceLimitError)):
            self.dump(reason=type(exc).__name__)

    # -- snapshots and dumps --------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        """The ring, oldest first, as JSON-safe dicts with timestamps
        rebased to microseconds from the oldest retained event."""
        while True:
            try:
                events = list(self._ring)
                break
            except RuntimeError:
                # the ring mutated mid-copy (an evaluation thread appended);
                # appends are bounded-rate, so a retry converges immediately
                continue
        origin = events[0][1] if events else 0.0
        out: List[Dict[str, object]] = []
        for ph, ts, dur, name, cat, args in events:
            record: Dict[str, object] = {
                "ph": ph,
                "name": name,
                "cat": cat,
                "ts_us": round((ts - origin) * 1e6, 3),
            }
            if ph == "X":
                record["dur_us"] = round(dur * 1e6, 3)
            if args:
                if type(args) is tuple:  # a deferred scan record
                    key, tuples, matches = args
                    args = {
                        "pred": f"{key[0]}/{key[1]}",
                        "tuples": tuples,
                        "matches": matches,
                    }
                record["args"] = args
            out.append(record)
        return out

    def clear(self) -> None:
        self._ring.clear()

    def to_jsonl(self, reason: str = "manual") -> str:
        """A header line (dump metadata) followed by one JSON object per
        retained event, oldest first."""
        events = self.snapshot()
        header = {
            "flight": True,
            "reason": reason,
            "capacity": self.capacity,
            "events": len(events),
            "recorded_total": self.recorded,
            "wall_time": time.time(),
        }
        ctx = self.current_trace
        if ctx is not None:
            header["trace"] = ctx.trace_id
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in events)
        return "\n".join(lines) + "\n"

    def dump(self, path: Optional[str] = None, reason: str = "manual"):
        """Write the ring to ``path`` (default: the configured
        ``dump_path``).  Returns the path written, or None when no target
        is configured or the write itself failed — a flight recorder must
        never turn a crash it is documenting into a second crash."""
        target = path if path is not None else self.dump_path
        if target is None:
            return None
        try:
            payload = self.to_jsonl(reason)
            with open(target, "w") as handle:
                handle.write(payload)
        except OSError:
            return None
        self.dump_count += 1
        self.last_dump_reason = reason
        return target

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity} events,"
            f" {self.dump_count} dumps>"
        )
