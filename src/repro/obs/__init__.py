"""repro.obs — the observability subsystem: metrics, query profiling, and
structured event tracing across evaluation and storage.

Three layers, one install point:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with labeled
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (fixed bucket
  boundaries);
* :mod:`repro.obs.trace` — :class:`EventTracer` spans and instants with
  JSON-lines and Chrome ``chrome://tracing`` exporters;
* :mod:`repro.obs.profiler` — :class:`Profiler`, the context manager
  ``session.profile()`` returns, producing a :class:`QueryProfile`.

Everything hot is gated behind ``ctx.obs is None`` single-branch guards;
see docs/OBSERVABILITY.md for metric names and the span taxonomy.
"""

from .disttrace import HeadSampler, SpanBuffer, TraceCollector, TraceContext
from .exposition import TelemetryServer, render_prometheus
from .flight import FlightRecorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelCapper,
    MetricError,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from .profiler import Profiler, QueryProfile
from .slowlog import SlowQueryLog
from .trace import EventTracer, TraceEvent

__all__ = [
    "Counter",
    "EventTracer",
    "FlightRecorder",
    "Gauge",
    "HeadSampler",
    "Histogram",
    "LabelCapper",
    "MetricError",
    "MetricsRegistry",
    "Profiler",
    "QueryProfile",
    "SIZE_BUCKETS",
    "SlowQueryLog",
    "SpanBuffer",
    "TIME_BUCKETS",
    "TelemetryServer",
    "TraceCollector",
    "TraceContext",
    "TraceEvent",
    "render_prometheus",
]
