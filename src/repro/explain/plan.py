"""EXPLAIN / EXPLAIN ANALYZE: render the plan the optimizer would run a
query with, optionally annotated with measured per-rule costs.

The paper's CORAL writes the rewritten program to a text file "useful as a
debugging aid" (Section 2) — :meth:`CompiledForm.listing` reproduces that.
``explain`` goes further and answers the operator questions a slow-query
log raises: which module served the call, which declared query form was
chosen for the call's bindings, which rewriting technique and fixpoint
strategy apply, the SCC evaluation order, and each semi-naive rule with
its body in join order (:mod:`repro.optimizer.joinorder` reordering, when
the module asked for it, is already baked into the compiled rules).

``analyze=True`` additionally *runs* the query under a trace-free
:class:`~repro.obs.profiler.Profiler` and appends measured counts: answers,
wall time, per-rule applications/derived/duplicates/time, and fixpoint
iterations.  This is the rendering shared by ``Session.explain``, the
shell's ``@explain``, and the slow-query log (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CoralError
from ..language import Literal, parse_query


def _is_bound(arg) -> bool:
    for _ in arg.variables():
        return False
    return True


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def _render_rules(lines: List[str], label: str, rules) -> None:
    if not rules:
        return
    lines.append(f"|      {label}:")
    for rule in rules:
        lines.append(f"|        {rule}")
        body = [str(lit) for lit in rule.body]
        if len(body) > 1:
            lines.append(f"|          join order: {' -> '.join(body)}")


def _explain_module(session, literal: Literal, lines: List[str]) -> None:
    module_name, export = session.modules.exports[(literal.pred, literal.arity)]
    module = session.modules.modules[module_name]
    bound = [_is_bound(arg) for arg in literal.args]
    call_adornment = "".join("b" if flag else "f" for flag in bound)
    form = session.modules.choose_form(export, bound)
    flags = " ".join(
        f"@{f.name}({f.argument})" if f.argument else f"@{f.name}"
        for f in module.flags
    )
    lines.append(
        f"+- predicate: {literal.pred}/{literal.arity}"
        f"   module: {module_name}"
        f"   declared forms: {', '.join(export.forms)}"
    )
    lines.append(
        f"+- call adornment: {call_adornment}"
        f"   chosen form: {form}"
        + (f"   module flags: {flags}" if flags else "")
    )
    if module.has_flag("pipelining"):
        lines.append(
            "+- evaluation: pipelined (tuple-at-a-time, no materialization)"
        )
        for rule in module.rules:
            lines.append(f"|      {rule}")
        return
    compiled = session.modules.compiled_form(module_name, literal.pred, form)
    rewritten = compiled.rewritten
    mode = (
        f"compiled to Python ({compiled.compiled})"
        if compiled.compiled
        else "interpreted"
    )
    lines.append(
        f"+- rewriting: {rewritten.technique}"
        f"   strategy: {compiled.strategy}"
        f"   answers: {'lazy' if compiled.lazy else 'eager'}"
        f"   {mode}"
    )
    if compiled.compiled:
        from ..compilemod import compile_report

        report = compile_report(compiled, session.ctx.is_builtin)
        lines.append(
            f"|      compile ({report.backend}): "
            f"{report.rules_compiled} rule(s) compiled, "
            f"{report.rules_interpreted} interpreted"
        )
        for reason, count in sorted(report.fallbacks.items()):
            lines.append(f"|        fallback x{count}: {reason}")
    details = []
    if rewritten.magic_pred:
        details.append(f"magic predicate: {rewritten.magic_pred}")
    if rewritten.bound_positions:
        positions = ", ".join(str(p) for p in rewritten.bound_positions)
        details.append(f"bound positions: {positions}")
    if compiled.use_backjumping:
        details.append("intelligent backtracking")
    if compiled.save_module:
        details.append("save_module (retains state across calls)")
    if compiled.ordered_search:
        details.append("ordered search")
    if details:
        lines.append(f"|      {';  '.join(details)}")
    index_count = sum(len(v) for v in compiled.index_specs.values()) + sum(
        len(v) for v in compiled.base_index_specs.values()
    )
    if index_count:
        lines.append(f"|      indexes selected: {index_count}")
    lines.append(f"+- scc order ({len(compiled.scc_plans)} component(s))")
    for position, plan in enumerate(compiled.scc_plans, start=1):
        preds = ", ".join(f"{n}/{a}" for n, a in sorted(plan.preds))
        kind = "recursive" if plan.recursive else "non-recursive"
        lines.append(f"|    {position}. [{preds}]  {kind}")
        _render_rules(lines, "once rules", plan.once_rules)
        _render_rules(lines, "delta rules", plan.delta_rules)


def _explain_base(session, literal: Literal, lines: List[str]) -> None:
    relation = session.ctx.base_relations.get((literal.pred, literal.arity))
    if relation is None:
        raise CoralError(
            f"nothing known about {literal.pred}/{literal.arity}: neither a "
            f"module export nor a base relation"
        )
    try:
        size = len(relation)
    except (TypeError, CoralError):
        size = None
    described = type(relation).__name__
    lines.append(
        f"+- base relation scan: {literal.pred}/{literal.arity}"
        f"   [{described}]"
        + (f"   {size} tuples" if size is not None else "")
    )
    bound = [_is_bound(arg) for arg in literal.args]
    if any(bound):
        positions = ", ".join(
            str(i) for i, flag in enumerate(bound) if flag
        )
        lines.append(f"|      selection on argument(s): {positions}")
    else:
        lines.append("|      full scan (no bound arguments)")


def _analyze(session, literal: Literal, lines: List[str]) -> None:
    with session.profile(trace=False) as prof:
        answers = session.query_literal(literal).all()
    profile = prof.profile
    lines.append(
        f"+- ANALYZE: {len(answers)} answer(s)"
        f" in {_fmt_seconds(profile.wall_time)}"
    )
    e = profile.eval
    lines.append(
        f"|      iterations: {e.get('iterations', 0)}"
        f"   rule applications: {e.get('rule_applications', 0)}"
        f"   facts: {e.get('facts_inserted', 0)}"
        f"   duplicates: {e.get('duplicates', 0)}"
    )
    for rule in profile.rules:
        lines.append(
            f"|      {rule['applications']:>4} apps"
            f"  {rule['derived']:>6} derived"
            f"  {rule['duplicates']:>6} dup"
            f"  {_fmt_seconds(rule['time']):>8}"
            f"  {rule['rule']}"
        )
    rate = profile.buffer_hit_rate
    if rate is not None:
        lines.append(f"|      buffer hit rate: {rate:.1%}")


def explain_literal(
    session, literal: Literal, analyze: bool = False
) -> str:
    """The rendered plan for one query literal against ``session``."""
    lines: List[str] = [f"EXPLAIN {literal}"]
    if (literal.pred, literal.arity) in session.modules.exports:
        _explain_module(session, literal, lines)
    else:
        _explain_base(session, literal, lines)
    if analyze:
        _analyze(session, literal, lines)
    return "\n".join(lines)


def explain(session, query: str, analyze: bool = False) -> str:
    """The rendered plan for a textual query (``Session.explain``)."""
    return explain_literal(session, parse_query(query).literal, analyze)
