"""Derivation tracing — the Explanation tool (paper acknowledgements:
*"Bill Roth ... implemented the Explanation tool"*).

When tracing is enabled on a session, every successful rule application in
materialized evaluation records the rule text, the derived fact, and the
(resolved) body facts that supported it.  :meth:`DerivationTracer.why`
then reconstructs proof trees: which rule produced a fact, from which
facts, recursively.

Tracing costs time and memory, so it is off by default and switched on per
session (``session.enable_tracing()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple


@dataclass
class Derivation:
    """One recorded rule application."""

    pred: str
    fact: str
    rule: str
    body_facts: PyTuple[str, ...]

    def __str__(self) -> str:
        if not self.body_facts:
            return f"{self.fact}  [fact]"
        support = ", ".join(self.body_facts)
        return f"{self.fact}  <=  {support}   via {self.rule}"


class DerivationTracer:
    """Records derivations and answers 'why' questions."""

    def __init__(self, limit: int = 100_000) -> None:
        self.limit = limit
        self._by_fact: Dict[str, List[Derivation]] = {}
        self._count = 0
        #: True once any derivation was dropped because the limit was hit;
        #: ``why`` answers are incomplete from that point on and say so
        self.overflowed = False

    # -- recording (called by the evaluator) ----------------------------------

    def record(
        self,
        pred: str,
        fact: str,
        rule: str,
        body_facts: Sequence[str],
    ) -> None:
        if self._count >= self.limit:
            self.overflowed = True
            return
        self._count += 1
        self._by_fact.setdefault(fact, []).append(
            Derivation(pred, fact, rule, tuple(body_facts))
        )

    def __len__(self) -> int:
        return self._count

    # -- querying -----------------------------------------------------------------

    def derivations_of(self, fact: str) -> List[Derivation]:
        """Every recorded way ``fact`` (printed form) was derived."""
        return list(self._by_fact.get(fact, ()))

    def find(self, substring: str, limit: int = 20) -> List[str]:
        """Recorded fact texts containing ``substring`` — the discovery aid
        for ``why`` (rewritten programs rename predicates, e.g. ``path`` to
        ``path_bf``; find shows what was actually recorded)."""
        matches = []
        for fact in self._by_fact:
            if substring in fact:
                matches.append(fact)
                if len(matches) >= limit:
                    break
        return matches

    def why(self, fact: str, depth: int = 5) -> str:
        """A proof tree for ``fact``, one line per derivation step.

        Shows the first recorded derivation at each level (a fact may have
        many); facts with no recorded derivation are base facts or arrived
        from outside the traced module.

        Once the tracer has overflowed its recording limit, every answer
        carries a warning: a "[base]" line may then mean "dropped", not
        "underived"."""
        lines: List[str] = []
        self._why(fact, 0, depth, lines, set())
        text = "\n".join(lines) if lines else f"{fact}: no derivation recorded"
        if self.overflowed:
            text += (
                f"\n(warning: trace overflowed its limit of {self.limit} "
                f"derivations; this proof may be incomplete — raise the "
                f"limit in enable_tracing)"
            )
        return text

    def _why(
        self,
        fact: str,
        indent: int,
        depth: int,
        lines: List[str],
        seen: set,
    ) -> None:
        prefix = "  " * indent
        derivations = self._by_fact.get(fact)
        if not derivations:
            lines.append(f"{prefix}{fact}  [base]")
            return
        derivation = derivations[0]
        lines.append(f"{prefix}{fact}  via {derivation.rule}")
        if indent >= depth or fact in seen:
            return
        seen = seen | {fact}
        for body_fact in derivation.body_facts:
            self._why(body_fact, indent + 1, depth, lines, seen)


from .plan import explain, explain_literal  # noqa: E402  (plan imports nothing from here)

__all__ = ["Derivation", "DerivationTracer", "explain", "explain_literal"]
