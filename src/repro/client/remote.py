"""The remote session: the :class:`~repro.api.Session` API over a socket,
with optional replica-set failover.

:class:`RemoteSession` mirrors the local embedding interface (paper
Section 6) so host code can switch between in-process and client-server
deployment by changing one constructor::

    with RemoteSession("127.0.0.1", 4242) as db:
        for answer in db.query("path(msn, X)"):
            print(answer["X"])

Iteration is *lazy across the wire*: a query opens a server-side cursor and
each batch is pulled with ``FETCH`` only when iteration needs it — the
get-next-tuple discipline of Sections 3/5.6, with the network hop amortized
over ``batch_size`` answers.  Abandoning a result (:meth:`RemoteQueryResult.
close`, or just dropping it and closing the session) closes the server-side
cursor, exactly like abandoning a local lazy evaluation (Section 5.4.3).

Replica sets (docs/REPLICATION.md): pass a *list* of ``"host:port"``
endpoints instead of one host and the session fails over transparently::

    with RemoteSession(["10.0.0.1:4242", "10.0.0.2:4242"]) as db:
        db.insert("edge", 1, 2)        # routed to whichever node is primary
        db.query("edge(X, Y)").all()   # served by any reachable node

Reads run on one connection to any reachable endpoint; when it dies the
next request retries against the next endpoint with capped exponential
backoff plus jitter.  Writes run on a second connection that the session
resolves to the primary by probing — a node answering ``ReadOnlyError`` is
a replica, so the probe moves on — and re-resolves after a promotion.  An
*in-flight cursor* cannot move between servers (its state lives on the
connection that opened it), so losing that connection surfaces a typed
:class:`~repro.errors.FailoverError` — as does exhausting the retry budget.
With a single ``host``/``port`` (the classic constructor) none of this
machinery engages: one shared connection, no retries, errors exactly as
before.

Answers reuse the local :class:`~repro.api.session.Answer` class, so
``answer["X"]``, ``answer.tuple`` and ``answer.variables()`` behave
identically on both sides of the wire.  Server-side failures are re-raised
under their original :class:`~repro.errors.CoralError` subclass; transport
failures raise :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
    Union,
)

from .. import errors as _errors
from ..api.session import Answer
from ..errors import (
    CoralError,
    FailoverError,
    ProtocolError,
    ReadOnlyError,
    WorkerRestartingError,
)
from ..obs.disttrace import HeadSampler, SpanBuffer, TraceContext
from ..relations import Tuple
from ..server.protocol import (
    PROTOCOL_VERSION,
    FrameTimeout,
    read_frame,
    write_frame,
)
from ..storage.serde import decode_batch

#: error-name -> exception class, so remote failures re-raise as their
#: original type (unknown names fall back to CoralError)
_ERROR_CLASSES: Dict[str, type] = {
    name: value
    for name, value in vars(_errors).items()
    if isinstance(value, type) and issubclass(value, CoralError)
}


class _TransportLost(Exception):
    """Internal marker: the round trip failed at the socket layer (as
    opposed to the server answering with an error).  Carries the cause;
    ``closed`` flags a clean server-side close (EOF at a frame boundary)."""

    def __init__(self, cause: Exception, closed: bool = False) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.closed = closed


class _Link:
    """One live connection: socket, endpoint index, and a generation that
    increments on every reconnect — a cursor opened on generation N is dead
    the moment the link moves to N+1."""

    __slots__ = ("sock", "index", "generation", "info")

    def __init__(self, sock, index: int, generation: int, info: str) -> None:
        self.sock = sock
        self.index = index
        self.generation = generation
        self.info = info


class RemoteQueryResult:
    """A pull-based cursor over a remote query's answers — the client half
    of a server-side cursor.  Mirrors :class:`~repro.api.session.QueryResult`:
    iterate lazily, or ``all()`` / ``list(...)`` / ``len(...)`` to drain."""

    def __init__(
        self,
        session: "RemoteSession",
        link: _Link,
        cursor_id: int,
        variables: List[str],
        arity: int,
        batch_size: int,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self._session = session
        self._link = link
        self._generation = link.generation
        self._cursor_id = cursor_id
        self._vars = variables
        self._arity = arity
        self._batch_size = batch_size
        self._cache: List[Answer] = []
        self._pending: List[Answer] = []
        self._done = False
        #: the trace context minted for the QUERY that opened this cursor;
        #: every FETCH runs under a child of it, so the whole drain shares
        #: one trace id
        self._trace = trace
        self.trace_id = trace.trace_id if trace is not None else None

    # -- the get-next-tuple interface ---------------------------------------

    def get_next(self) -> Optional[Answer]:
        if not self._pending and not self._done:
            self._fetch_batch()
        if self._pending:
            answer = self._pending.pop(0)
            self._cache.append(answer)
            return answer
        return None

    def __iter__(self) -> Iterator[Answer]:
        for answer in self._cache:
            yield answer
        while True:
            answer = self.get_next()
            if answer is None:
                return
            yield answer

    def all(self) -> List[Answer]:
        while self.get_next() is not None:
            pass
        return list(self._cache)

    def __len__(self) -> int:
        return len(self.all())

    def tuples(self) -> List[tuple]:
        from ..terms import from_arg

        return [
            tuple(from_arg(arg) for arg in answer.tuple.args)
            for answer in self.all()
        ]

    def close(self) -> None:
        """Abandon the cursor: tells the server to free it.  Idempotent;
        already-fetched answers stay readable."""
        if self._done:
            return
        self._done = True
        header: Dict[str, object] = {
            "op": "CLOSE_CURSOR",
            "cursor": self._cursor_id,
        }
        if self._trace is not None:
            header["trace"] = self._trace.to_wire()
        try:
            self._session._cursor_request(self._link, self._generation, header)
        except (ProtocolError, OSError):
            pass  # connection already gone: the server freed it on its side

    # -- internals ----------------------------------------------------------

    def _fetch_batch(self) -> None:
        request: Dict[str, object] = {
            "op": "FETCH",
            "cursor": self._cursor_id,
            "max": self._batch_size,
        }
        # each FETCH gets its own child span: the server's request.FETCH
        # span then nests under this hop's client.fetch in the assembly
        child = self._trace.child() if self._trace is not None else None
        started = 0.0
        if child is not None:
            request["trace"] = child.to_wire()
            started = SpanBuffer.now()
        try:
            header, body = self._session._cursor_request(
                self._link, self._generation, request
            )
        except CoralError:
            self._done = True  # server freed the cursor before erroring
            raise
        rows = decode_batch(body)
        if child is not None:
            self._session.spans.record(
                child,
                "client.fetch",
                started,
                SpanBuffer.now(),
                cursor=self._cursor_id,
                rows=len(rows),
            )
        for row in rows:
            args = tuple(row[: self._arity])
            bindings = dict(zip(self._vars, row[self._arity :]))
            self._pending.append(Answer(Tuple(args), bindings))
        if header.get("done"):
            self._done = True

    def __repr__(self) -> str:
        state = "done" if self._done else "open"
        return (
            f"<RemoteQueryResult cursor={self._cursor_id} {state} "
            f"cached={len(self._cache)}>"
        )


class RemoteSubscription:
    """The client half of one live query (docs/LIVE.md).

    Owns a **dedicated connection**: ``DELTA`` is a long-poll that parks on
    the socket until a delta arrives, so a subscription sharing the
    session's request link would starve every other call.  The server binds
    the subscription to this connection — closing it (or dying with it)
    reclaims the server-side view.

    The subscription keeps a *folded view*: the initial snapshot with every
    received delta applied, in order.  :meth:`poll` drives it::

        sub = session.subscribe("?- path(1, X).")
        kind, payload = sub.poll(timeout=5.0)
        # kind: "deltas" (payload: [(sign, values), ...]),
        #       "resnapshot" (payload: the replacement view),
        #       "none" (empty poll), "closed" (payload: the reason)

    or iterate :meth:`deltas`, which polls forever and yields one
    ``(sign, values)`` pair per delta (resnapshots are folded silently —
    read :meth:`view` for the authoritative state after any yield)."""

    def __init__(
        self,
        session: "RemoteSession",
        link: _Link,
        sub_id: int,
        arity: int,
        query: str,
        snapshot_rows: List[list],
    ) -> None:
        self._session = session
        self._link = link
        self.sub_id = sub_id
        self.arity = arity
        self.query = query
        self.closed = False
        self.close_reason: Optional[str] = None
        self.deltas_received = 0
        self.resnapshots = 0
        self._state: Dict[object, tuple] = {}
        for row in snapshot_rows:
            key, values = self._decode_row(row)
            self._state[key] = values

    @staticmethod
    def _decode_row(row: list) -> PyTuple[object, tuple]:
        from ..terms import from_arg

        args = tuple(row)
        return Tuple(args).key(), tuple(from_arg(a) for a in args)

    def view(self) -> List[tuple]:
        """The folded answer set: snapshot plus every delta received so
        far, as plain Python value tuples."""
        return sorted(self._state.values(), key=repr)

    def poll(
        self, timeout: float = 10.0, max: Optional[int] = None
    ) -> PyTuple[str, object]:
        """One DELTA long-poll; blocks up to ``timeout`` seconds server-side.

        Folds the response into :meth:`view` and returns ``(kind,
        payload)`` — see the class docstring for the four kinds."""
        if self.closed:
            return "closed", self.close_reason
        header: Dict[str, object] = {
            "op": "DELTA",
            "sub": self.sub_id,
            "timeout": timeout,
        }
        if max is not None:
            header["max"] = max
        # the server answers within its clamped timeout; give the socket
        # room on top so an idle poll is never misread as a wedged server
        self._link.sock.settimeout(min(timeout, 30.0) + 10.0)
        try:
            frame = self._session._transport(self._link, header, b"")
            response, body = self._session._unwrap(frame)
        except _TransportLost as exc:
            self.closed = True
            self.close_reason = f"connection lost: {exc.cause}"
            raise exc.cause from None
        except CoralError:
            raise
        kind = str(response.get("kind", "none"))
        if kind == "closed":
            self.close_reason = str(response.get("reason", "server closed"))
            self.closed = True
            self._hang_up(say_bye=True)
            return "closed", self.close_reason
        if kind == "resnapshot":
            self.resnapshots += 1
            self._state = {}
            for row in decode_batch(body):
                key, values = self._decode_row(row)
                self._state[key] = values
            return "resnapshot", self.view()
        if kind == "deltas":
            signs = list(response.get("signs", []))
            out = []
            for sign, row in zip(signs, decode_batch(body)):
                key, values = self._decode_row(row)
                if sign > 0:
                    self._state[key] = values
                else:
                    self._state.pop(key, None)
                out.append((sign, values))
            self.deltas_received += len(out)
            return "deltas", out
        return "none", []

    def deltas(self, poll_timeout: float = 10.0) -> Iterator[PyTuple[int, tuple]]:
        """Poll forever, yielding one ``(sign, values)`` pair per delta.
        Resnapshots fold into :meth:`view` without yielding; the iterator
        ends when the subscription closes (either side)."""
        while not self.closed:
            kind, payload = self.poll(timeout=poll_timeout)
            if kind == "deltas":
                for delta in payload:
                    yield delta
            elif kind == "closed":
                return

    def close(self) -> None:
        """Unsubscribe and drop the dedicated connection.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.close_reason = "closed by client"
        try:
            frame = self._session._transport(
                self._link, {"op": "UNSUBSCRIBE", "sub": self.sub_id}, b""
            )
            self._session._unwrap(frame)
        except (_TransportLost, CoralError, OSError):
            pass  # connection already gone: the server reclaims the view
        self._hang_up(say_bye=True)

    def _hang_up(self, say_bye: bool) -> None:
        if say_bye:
            try:
                write_frame(self._link.sock, {"op": "BYE"})
                read_frame(self._link.sock)
            except (FrameTimeout, ProtocolError, OSError):
                pass
        try:
            self._link.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            f"closed ({self.close_reason})" if self.closed else
            f"open view={len(self._state)}"
        )
        return f"<RemoteSubscription #{self.sub_id} {self.query!r} {state}>"


def _parse_endpoint(value: Union[str, PyTuple[str, int]]) -> PyTuple[str, int]:
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if not sep or not port.isdigit():
            raise ProtocolError(
                f"replica-set endpoint must look like 'host:port', "
                f"got {value!r}"
            )
        return host, int(port)
    host, port = value
    return str(host), int(port)


class RemoteSession:
    """A connection to one :class:`~repro.server.CoralServer` — or to a
    replica set of them.

    ``host`` is either a hostname (classic single-server mode, with
    ``port``) or a list of ``"host:port"`` endpoints (replica-set mode with
    transparent failover — see the module docstring).  ``batch_size`` is
    the answers each FETCH requests and ``timeout`` bounds any single
    round trip.  In replica-set mode ``retries`` is the number of full
    passes over the endpoint list before a request gives up with
    :class:`FailoverError`, backing off exponentially from ``backoff`` up
    to ``backoff_cap`` seconds (with full jitter) between attempts.

    ``counters`` tracks the failover machinery: ``reconnects`` (links
    established beyond each role's first), ``retries`` (request attempts
    beyond the first), and ``failovers`` (connections abandoned after a
    transport failure).
    """

    def __init__(
        self,
        host: Union[str, Sequence[Union[str, PyTuple[str, int]]]] = "127.0.0.1",
        port: int = 4242,
        batch_size: int = 64,
        timeout: Optional[float] = 30.0,
        *,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        restart_retries: int = 10,
        trace_sample: float = 0.0,
        trace_dir: Optional[str] = None,
        process_name: str = "client",
    ) -> None:
        if batch_size < 1:
            raise ProtocolError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.timeout = timeout
        #: distributed tracing (docs/OBSERVABILITY.md): mint a sampled
        #: trace context for this fraction of logical operations and carry
        #: it on their wire headers; client-side spans land in ``spans``
        #: (and, with ``trace_dir``, in <trace_dir>/<process_name>.jsonl)
        self.trace_sampler = HeadSampler(trace_sample)
        self.spans = SpanBuffer(
            process_name,
            path=(
                os.path.join(trace_dir, f"{process_name}.jsonl")
                if trace_dir
                else None
            ),
        )
        #: the trace id of the most recently sampled operation (what the
        #: shell prints so ``@trace <id>`` has something to look up)
        self.last_trace_id: Optional[str] = None
        self.retries = max(1, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        #: extra attempts when a shard router answers WorkerRestartingError
        #: — the worker is rebooting (process spawn plus handshake), so the
        #: budget is deliberately larger than the transport-failure one
        self.restart_retries = max(0, restart_retries)
        self._lock = threading.Lock()
        self._closed = False
        self._generation = 0
        self._subscriptions: List[RemoteSubscription] = []
        self.counters = {"reconnects": 0, "retries": 0, "failovers": 0}
        if isinstance(host, (list, tuple)):
            if not host:
                raise ProtocolError("replica set needs at least one endpoint")
            self.endpoints = [_parse_endpoint(item) for item in host]
            self.replica_set = True
            self._read: Optional[_Link] = None
            self._write: Optional[_Link] = None
            #: endpoint index believed to be the primary; None = unresolved
            self._primary_index: Optional[int] = None
            with self._lock:
                self._read = self._connect_any(start=0)
            self.address = self.endpoints[self._read.index]
            self.server_info = self._read.info
        else:
            self.endpoints = [(host, int(port))]
            self.replica_set = False
            self._primary_index = 0
            link = self._connect(0)
            self._read = link
            self._write = link
            self.address = self.endpoints[0]
            self.server_info = link.info

    # -- distributed tracing --------------------------------------------------

    def _begin_trace(self) -> Optional[TraceContext]:
        """One head-based sampling decision; a yes mints a fresh root
        context and remembers its trace id as :attr:`last_trace_id`."""
        if not self.trace_sampler.decide():
            return None
        ctx = TraceContext.mint(sampled=True)
        self.last_trace_id = ctx.trace_id
        return ctx

    def trace(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """All spans recorded under ``trace_id`` (default: the last trace
        this session sampled): the server's — gathered cluster-wide by a
        router — via the ``TRACE`` op, merged with this client's own."""
        target = trace_id if trace_id is not None else self.last_trace_id
        if target is None:
            raise ProtocolError(
                "no trace id given and no operation has been sampled yet "
                "(construct the session with trace_sample > 0)"
            )
        _, (header, _) = self._request({"op": "TRACE", "id": target})
        spans = [
            span
            for span in header.get("spans", [])
            if isinstance(span, dict)
        ]
        spans.extend(self.spans.spans_for(target))
        return spans

    # -- queries ------------------------------------------------------------

    def query(self, text: str, batch_size: Optional[int] = None) -> RemoteQueryResult:
        """Open a server-side cursor for a textual query."""
        request: Dict[str, object] = {"op": "QUERY", "query": text}
        ctx = self._begin_trace()
        started = 0.0
        if ctx is not None:
            request["trace"] = ctx.to_wire()
            started = SpanBuffer.now()
        link, (header, _) = self._request(request)
        if ctx is not None:
            self.spans.record(
                ctx, "client.query", started, SpanBuffer.now(), query=text
            )
        return RemoteQueryResult(
            self,
            link,
            int(header["cursor"]),
            list(header["vars"]),
            int(header["arity"]),
            batch_size or self.batch_size,
            trace=ctx,
        )

    def query_values(self, pred: str, *values: Any) -> RemoteQueryResult:
        """Programmatic query mirroring :meth:`Session.query_values`:
        ``None`` leaves an argument free."""
        parts = []
        for index, value in enumerate(values):
            parts.append(f"V{index}" if value is None else _format_value(value))
        return self.query(f"{pred}({', '.join(parts)})" if parts else pred)

    def consult_string(self, source: str) -> List[RemoteQueryResult]:
        """Load program text into the shared server database; queries in the
        text come back as open cursors (one per query, in order).  A write:
        routed to the primary in replica-set mode."""
        request: Dict[str, object] = {"op": "CONSULT", "source": source}
        ctx = self._begin_trace()
        started = 0.0
        if ctx is not None:
            request["trace"] = ctx.to_wire()
            started = SpanBuffer.now()
        link, (header, _) = self._request(request, write=True)
        if ctx is not None:
            self.spans.record(
                ctx, "client.consult", started, SpanBuffer.now(),
                bytes=len(source),
            )
        return [
            RemoteQueryResult(
                self,
                link,
                int(item["cursor"]),
                list(item["vars"]),
                int(item["arity"]),
                self.batch_size,
                trace=ctx,
            )
            for item in header.get("cursors", [])
        ]

    # -- updates and introspection ------------------------------------------

    def insert(self, pred: str, *values: Any) -> bool:
        return self._update("INSERT", pred, list(values))

    def delete(self, pred: str, *values: Any) -> bool:
        return self._update("DELETE", pred, list(values))

    def _update(self, op: str, pred: str, values: List[Any]) -> bool:
        request: Dict[str, object] = {"op": op, "pred": pred, "values": values}
        ctx = self._begin_trace()
        started = 0.0
        if ctx is not None:
            request["trace"] = ctx.to_wire()
            started = SpanBuffer.now()
        _, (header, _) = self._request(request, write=True)
        if ctx is not None:
            self.spans.record(
                ctx, f"client.{op.lower()}", started, SpanBuffer.now(),
                pred=pred,
            )
        return bool(header.get("changed"))

    def stats(self) -> Dict[str, Any]:
        """The server's STATS payload: connections, cursors, requests, the
        shared session's evaluation counters, and the metrics registry."""
        _, (header, _) = self._request({"op": "STATS"})
        return header["stats"]

    def subscribe(self, query: str) -> RemoteSubscription:
        """Register a live query (docs/LIVE.md): the server answers with an
        initial snapshot, then streams ``+``/``-`` deltas as base facts
        change.  Opens a **dedicated connection** — DELTA long-polls park on
        the socket, so sharing the session's request link would starve it.

        Raises :class:`~repro.errors.SubscriptionError` when the query's
        program cannot be maintained incrementally (negation, aggregation,
        compiled modules, ... — the refusal matrix in docs/LIVE.md)."""
        if self._closed:
            raise ProtocolError("remote session is closed")
        with self._lock:
            index = self._read.index if self._read is not None else 0
            link = self._connect(index)
        request: Dict[str, object] = {"op": "SUBSCRIBE", "query": query}
        ctx = self._begin_trace()
        started = 0.0
        if ctx is not None:
            request["trace"] = ctx.to_wire()
            started = SpanBuffer.now()
        try:
            frame = self._transport(link, request, b"")
            header, body = self._unwrap(frame)
        except _TransportLost as exc:
            try:
                link.sock.close()
            except OSError:
                pass
            raise exc.cause from None
        except BaseException:
            try:
                link.sock.close()
            except OSError:
                pass
            raise
        if ctx is not None:
            self.spans.record(
                ctx, "client.subscribe", started, SpanBuffer.now(),
                query=query,
            )
        sub = RemoteSubscription(
            self,
            link,
            int(header["sub"]),
            int(header["arity"]),
            query,
            decode_batch(body),
        )
        with self._lock:
            self._subscriptions = [
                s for s in self._subscriptions if not s.closed
            ]
            self._subscriptions.append(sub)
        return sub

    def promote(
        self, endpoint: Union[None, int, str, PyTuple[str, int]] = None
    ) -> Dict[str, Any]:
        """Send ``PROMOTE`` — turn a replica into a writable primary.

        In replica-set mode ``endpoint`` picks the node (an index into the
        endpoint list, a ``"host:port"`` string, or a tuple; default: the
        node the read connection is on) over a one-shot connection, and the
        session forgets its cached primary so the next write re-resolves.
        In single-server mode the PROMOTE goes to the connected server.
        """
        if not self.replica_set:
            _, (header, _) = self._request({"op": "PROMOTE"})
            return header
        with self._lock:
            if endpoint is None:
                index = self._read.index if self._read is not None else 0
            elif isinstance(endpoint, int):
                index = endpoint
            else:
                target = _parse_endpoint(endpoint)
                if target not in self.endpoints:
                    self.endpoints.append(target)
                index = self.endpoints.index(target)
            link = self._connect(index)
            try:
                frame = self._transport(link, {"op": "PROMOTE"}, b"")
                header, _ = self._unwrap(frame)
            finally:
                try:
                    link.sock.close()
                except OSError:
                    pass
            # the topology changed: re-resolve the primary on the next write
            self._primary_index = index
            self._drop("_write")
            return header

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Say BYE and drop the connection(s).  Idempotent; the server
        frees any cursors this client still holds."""
        if self._closed:
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            links = {id(l): l for l in (self._read, self._write) if l is not None}
            self._read = None
            self._write = None
            subscriptions = self._subscriptions
            self._subscriptions = []
        for sub in subscriptions:
            sub.close()
        for link in links.values():
            try:
                write_frame(link.sock, {"op": "BYE"})
                read_frame(link.sock)
            except (FrameTimeout, ProtocolError, OSError):
                pass
            finally:
                try:
                    link.sock.close()
                except OSError:
                    pass
        self.spans.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connections ----------------------------------------------------------

    def _connect(self, index: int) -> _Link:
        """Dial one endpoint and complete the HELLO handshake."""
        host, port = self.endpoints[index]
        try:
            sock = socket.create_connection((host, port), timeout=self.timeout)
        except OSError as exc:
            raise ProtocolError(
                f"cannot connect to coral server at {host}:{port}: {exc}"
            ) from exc
        try:
            self._generation += 1
            link = _Link(sock, index, self._generation, "?")
            frame = self._transport(
                link,
                {
                    "op": "HELLO",
                    "version": PROTOCOL_VERSION,
                    "client": "repro.client/1",
                },
                b"",
            )
            header, _ = self._unwrap(frame)
            link.info = str(header.get("server", "?"))
            return link
        except _TransportLost as exc:
            sock.close()
            raise exc.cause from None
        except BaseException:
            sock.close()
            raise

    def _connect_any(self, start: int) -> _Link:
        """Dial endpoints round-robin from ``start``; first success wins."""
        last: Optional[Exception] = None
        for offset in range(len(self.endpoints)):
            index = (start + offset) % len(self.endpoints)
            try:
                return self._connect(index)
            except (ProtocolError, OSError) as exc:
                last = exc
        raise FailoverError(
            f"no reachable server among "
            f"{[f'{h}:{p}' for h, p in self.endpoints]}: {last}"
        )

    def _drop(self, role: str) -> None:
        """Close and forget one link (``_read`` or ``_write``)."""
        link: Optional[_Link] = getattr(self, role)
        setattr(self, role, None)
        if link is not None:
            self.counters["failovers"] += 1
            try:
                link.sock.close()
            except OSError:
                pass
            # the two roles may share one link (they never do in replica-set
            # mode, but be safe): a dead socket must not linger under the
            # other name
            for other in ("_read", "_write"):
                if other != role and getattr(self, other) is link:
                    setattr(self, other, None)

    # -- the wire ------------------------------------------------------------

    def _transport(
        self, link: _Link, header: Dict[str, object], body: bytes
    ) -> PyTuple[Dict[str, object], bytes]:
        """One raw round trip; socket-layer failures raise
        :class:`_TransportLost` so callers can tell them from server-
        reported errors (which must never be retried)."""
        try:
            write_frame(link.sock, header, body)
            frame = read_frame(link.sock)
        except FrameTimeout as exc:
            raise _TransportLost(
                ProtocolError("timed out waiting for the server's response")
            ) from exc
        except (ProtocolError, OSError) as exc:
            raise _TransportLost(exc) from exc
        if frame is None:
            raise _TransportLost(
                ProtocolError("server closed the connection mid-conversation"),
                closed=True,
            )
        return frame

    @staticmethod
    def _unwrap(
        frame: PyTuple[Dict[str, object], bytes]
    ) -> PyTuple[Dict[str, object], bytes]:
        """Raise a server-reported error as its original class."""
        response, rbody = frame
        if not response.get("ok"):
            name = str(response.get("error", "CoralError"))
            message = str(response.get("message", "remote error"))
            raise _ERROR_CLASSES.get(name, CoralError)(message)
        return response, rbody

    def _request(
        self,
        header: Dict[str, object],
        body: bytes = b"",
        write: bool = False,
    ) -> PyTuple[_Link, PyTuple[Dict[str, object], bytes]]:
        """One request with routing and (in replica-set mode) retries.

        Returns the link it ran on — cursors returned in the response are
        bound to that link's generation.
        """
        if self._closed:
            raise ProtocolError("remote session is closed")
        with self._lock:
            if not self.replica_set:
                link = self._read
                delay = self.backoff
                for attempt in range(self.restart_retries + 1):
                    try:
                        frame = self._transport(link, header, body)
                    except _TransportLost as exc:
                        if exc.closed:
                            self._closed = True
                        raise exc.cause from None
                    try:
                        return link, self._unwrap(frame)
                    except WorkerRestartingError:
                        # the shard owning this request is mid-restart; the
                        # connection (to the router) is healthy, so the same
                        # request re-sent after a pause will land on the
                        # restarted worker.  ReadOnlyError and FailoverError
                        # deliberately do NOT take this path: re-sending
                        # cannot fix a role mismatch or a dead cursor.
                        if attempt >= self.restart_retries:
                            raise
                        self.counters["retries"] += 1
                        time.sleep(random.uniform(delay * 0.5, delay))
                        delay = min(self.backoff_cap, delay * 2)
                raise ProtocolError("unreachable: retry loop exhausted")
            return self._request_failover(header, body, write)

    def _request_failover(
        self, header: Dict[str, object], body: bytes, write: bool
    ) -> PyTuple[_Link, PyTuple[Dict[str, object], bytes]]:
        role = "_write" if write else "_read"
        budget = self.retries * len(self.endpoints)
        delay = self.backoff
        last: Optional[Exception] = None
        for attempt in range(budget):
            if attempt:
                self.counters["retries"] += 1
                # full jitter on the capped exponential: a herd of clients
                # must not hammer a recovering server in lockstep
                time.sleep(random.uniform(0.0, delay))
                delay = min(self.backoff_cap, delay * 2)
            link: Optional[_Link] = getattr(self, role)
            try:
                if link is None:
                    start = self._start_index(role, attempt)
                    link = self._connect_any(start)
                    if attempt:
                        self.counters["reconnects"] += 1
                    setattr(self, role, link)
                frame = self._transport(link, header, body)
            except _TransportLost as exc:
                self._drop(role)
                last = exc.cause
                continue
            except FailoverError as exc:
                last = exc
                continue
            try:
                return link, self._unwrap(frame)
            except WorkerRestartingError as exc:
                # a shard behind the endpoint is rebooting: the link itself
                # is healthy, so keep it and retry after the backoff —
                # dropping it would misread a worker restart as a failover
                last = exc
                continue
            except ReadOnlyError as exc:
                if not write:
                    raise
                # this endpoint is a replica: remember that, try the next
                # one as the primary candidate
                last = exc
                if self._primary_index == link.index:
                    self._primary_index = None
                self._drop(role)
                self._bump_primary_guess(link.index)
        raise FailoverError(
            f"{header.get('op', 'request')} failed after {budget} attempts "
            f"across {[f'{h}:{p}' for h, p in self.endpoints]}: {last}"
        )

    def _start_index(self, role: str, attempt: int) -> int:
        """Where a reconnect starts probing: writes at the believed primary,
        reads wherever the rotation left off."""
        if role == "_write" and self._primary_index is not None:
            return self._primary_index
        if role == "_write" and self._write_guess is not None:
            return self._write_guess
        return attempt % len(self.endpoints)

    _write_guess: Optional[int] = None

    def _bump_primary_guess(self, failed_index: int) -> None:
        self._write_guess = (failed_index + 1) % len(self.endpoints)

    def _cursor_request(
        self, link: _Link, generation: int, header: Dict[str, object]
    ) -> PyTuple[Dict[str, object], bytes]:
        """FETCH/CLOSE_CURSOR: pinned to the link (and generation) whose
        server holds the cursor — a cursor cannot fail over, so a lost
        connection surfaces :class:`FailoverError` instead of retrying."""
        if self._closed:
            raise ProtocolError("remote session is closed")
        with self._lock:
            if not self.replica_set:
                try:
                    frame = self._transport(link, header, b"")
                except _TransportLost as exc:
                    if exc.closed:
                        self._closed = True
                    raise exc.cause from None
                return self._unwrap(frame)
            if link.generation != generation or (
                link is not self._read and link is not self._write
            ):
                raise FailoverError(
                    f"cursor {header.get('cursor')} was lost: its connection "
                    f"failed over (reissue the query)"
                )
            try:
                frame = self._transport(link, header, b"")
            except _TransportLost as exc:
                for role in ("_read", "_write"):
                    if getattr(self, role) is link:
                        self._drop(role)
                raise FailoverError(
                    f"cursor {header.get('cursor')} was lost mid-stream: "
                    f"{exc.cause} (reissue the query)"
                ) from exc.cause
            return self._unwrap(frame)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self.replica_set:
            eps = ",".join(f"{h}:{p}" for h, p in self.endpoints)
            return f"<RemoteSession replica-set [{eps}] {state}>"
        return f"<RemoteSession {self.address[0]}:{self.address[1]} {state}>"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # bool before int; matches terms.to_arg
        return "true" if value else "false"
    if isinstance(value, str):
        if value.isidentifier() and value[:1].islower():
            return value
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return repr(value)
