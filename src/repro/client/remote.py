"""The remote session: the :class:`~repro.api.Session` API over a socket.

:class:`RemoteSession` mirrors the local embedding interface (paper
Section 6) so host code can switch between in-process and client-server
deployment by changing one constructor::

    with RemoteSession("127.0.0.1", 4242) as db:
        for answer in db.query("path(msn, X)"):
            print(answer["X"])

Iteration is *lazy across the wire*: a query opens a server-side cursor and
each batch is pulled with ``FETCH`` only when iteration needs it — the
get-next-tuple discipline of Sections 3/5.6, with the network hop amortized
over ``batch_size`` answers.  Abandoning a result (:meth:`RemoteQueryResult.
close`, or just dropping it and closing the session) closes the server-side
cursor, exactly like abandoning a local lazy evaluation (Section 5.4.3).

Answers reuse the local :class:`~repro.api.session.Answer` class, so
``answer["X"]``, ``answer.tuple`` and ``answer.variables()`` behave
identically on both sides of the wire.  Server-side failures are re-raised
under their original :class:`~repro.errors.CoralError` subclass; transport
failures raise :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple as PyTuple

from .. import errors as _errors
from ..api.session import Answer
from ..errors import CoralError, ProtocolError
from ..relations import Tuple
from ..server.protocol import PROTOCOL_VERSION, read_frame, write_frame
from ..storage.serde import decode_batch

#: error-name -> exception class, so remote failures re-raise as their
#: original type (unknown names fall back to CoralError)
_ERROR_CLASSES: Dict[str, type] = {
    name: value
    for name, value in vars(_errors).items()
    if isinstance(value, type) and issubclass(value, CoralError)
}


class RemoteQueryResult:
    """A pull-based cursor over a remote query's answers — the client half
    of a server-side cursor.  Mirrors :class:`~repro.api.session.QueryResult`:
    iterate lazily, or ``all()`` / ``list(...)`` / ``len(...)`` to drain."""

    def __init__(
        self,
        session: "RemoteSession",
        cursor_id: int,
        variables: List[str],
        arity: int,
        batch_size: int,
    ) -> None:
        self._session = session
        self._cursor_id = cursor_id
        self._vars = variables
        self._arity = arity
        self._batch_size = batch_size
        self._cache: List[Answer] = []
        self._pending: List[Answer] = []
        self._done = False

    # -- the get-next-tuple interface ---------------------------------------

    def get_next(self) -> Optional[Answer]:
        if not self._pending and not self._done:
            self._fetch_batch()
        if self._pending:
            answer = self._pending.pop(0)
            self._cache.append(answer)
            return answer
        return None

    def __iter__(self) -> Iterator[Answer]:
        for answer in self._cache:
            yield answer
        while True:
            answer = self.get_next()
            if answer is None:
                return
            yield answer

    def all(self) -> List[Answer]:
        while self.get_next() is not None:
            pass
        return list(self._cache)

    def __len__(self) -> int:
        return len(self.all())

    def tuples(self) -> List[tuple]:
        from ..terms import from_arg

        return [
            tuple(from_arg(arg) for arg in answer.tuple.args)
            for answer in self.all()
        ]

    def close(self) -> None:
        """Abandon the cursor: tells the server to free it.  Idempotent;
        already-fetched answers stay readable."""
        if self._done:
            return
        self._done = True
        try:
            self._session._request(
                {"op": "CLOSE_CURSOR", "cursor": self._cursor_id}
            )
        except (ProtocolError, OSError):
            pass  # connection already gone: the server freed it on its side

    # -- internals ----------------------------------------------------------

    def _fetch_batch(self) -> None:
        try:
            header, body = self._session._request(
                {
                    "op": "FETCH",
                    "cursor": self._cursor_id,
                    "max": self._batch_size,
                }
            )
        except CoralError:
            self._done = True  # server freed the cursor before erroring
            raise
        rows = decode_batch(body)
        for row in rows:
            args = tuple(row[: self._arity])
            bindings = dict(zip(self._vars, row[self._arity :]))
            self._pending.append(Answer(Tuple(args), bindings))
        if header.get("done"):
            self._done = True

    def __repr__(self) -> str:
        state = "done" if self._done else "open"
        return (
            f"<RemoteQueryResult cursor={self._cursor_id} {state} "
            f"cached={len(self._cache)}>"
        )


class RemoteSession:
    """A connection to a :class:`~repro.server.CoralServer`.

    Constructor arguments: server ``host``/``port``, the answer
    ``batch_size`` each FETCH requests, and a socket-level ``timeout``
    (seconds) bounding how long any single round trip may block.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4242,
        batch_size: int = 64,
        timeout: Optional[float] = 30.0,
    ) -> None:
        if batch_size < 1:
            raise ProtocolError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ProtocolError(
                f"cannot connect to coral server at {host}:{port}: {exc}"
            ) from exc
        self.address = (host, port)
        header, _ = self._request(
            {"op": "HELLO", "version": PROTOCOL_VERSION, "client": "repro.client/1"}
        )
        self.server_info = header.get("server", "?")

    # -- queries ------------------------------------------------------------

    def query(self, text: str, batch_size: Optional[int] = None) -> RemoteQueryResult:
        """Open a server-side cursor for a textual query."""
        header, _ = self._request({"op": "QUERY", "query": text})
        return RemoteQueryResult(
            self,
            int(header["cursor"]),
            list(header["vars"]),
            int(header["arity"]),
            batch_size or self.batch_size,
        )

    def query_values(self, pred: str, *values: Any) -> RemoteQueryResult:
        """Programmatic query mirroring :meth:`Session.query_values`:
        ``None`` leaves an argument free."""
        parts = []
        for index, value in enumerate(values):
            parts.append(f"V{index}" if value is None else _format_value(value))
        return self.query(f"{pred}({', '.join(parts)})" if parts else pred)

    def consult_string(self, source: str) -> List[RemoteQueryResult]:
        """Load program text into the shared server database; queries in the
        text come back as open cursors (one per query, in order)."""
        header, _ = self._request({"op": "CONSULT", "source": source})
        return [
            RemoteQueryResult(
                self,
                int(item["cursor"]),
                list(item["vars"]),
                int(item["arity"]),
                self.batch_size,
            )
            for item in header.get("cursors", [])
        ]

    # -- updates and introspection ------------------------------------------

    def insert(self, pred: str, *values: Any) -> bool:
        header, _ = self._request(
            {"op": "INSERT", "pred": pred, "values": list(values)}
        )
        return bool(header.get("changed"))

    def delete(self, pred: str, *values: Any) -> bool:
        header, _ = self._request(
            {"op": "DELETE", "pred": pred, "values": list(values)}
        )
        return bool(header.get("changed"))

    def stats(self) -> Dict[str, Any]:
        """The server's STATS payload: connections, cursors, requests, the
        shared session's evaluation counters, and the metrics registry."""
        header, _ = self._request({"op": "STATS"})
        return header["stats"]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Say BYE and drop the connection.  Idempotent; the server frees
        any cursors this connection still holds."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                write_frame(self._sock, {"op": "BYE"})
                read_frame(self._sock)
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def _request(
        self, header: Dict[str, object], body: bytes = b""
    ) -> PyTuple[Dict[str, object], bytes]:
        """One round trip; raises the server's error as its original class."""
        if self._closed:
            raise ProtocolError("remote session is closed")
        with self._lock:
            write_frame(self._sock, header, body)
            frame = read_frame(self._sock)
        if frame is None:
            self._closed = True
            raise ProtocolError(
                "server closed the connection mid-conversation"
            )
        response, rbody = frame
        if not response.get("ok"):
            name = str(response.get("error", "CoralError"))
            message = str(response.get("message", "remote error"))
            raise _ERROR_CLASSES.get(name, CoralError)(message)
        return response, rbody

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<RemoteSession {self.address[0]}:{self.address[1]} {state}>"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # bool before int; matches terms.to_arg
        return "true" if value else "false"
    if isinstance(value, str):
        if value.isidentifier() and value[:1].islower():
            return value
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return repr(value)
