"""repro.client — the remote counterpart of :class:`repro.api.Session`.

``RemoteSession`` speaks the :mod:`repro.server` wire protocol; its
``RemoteQueryResult`` lazily issues FETCH per batch, so iterating a remote
query drives the server's get-next-tuple cursor on demand.
"""

from ..errors import FailoverError, ShardRoutingError, WorkerRestartingError
from .remote import RemoteQueryResult, RemoteSession, RemoteSubscription

__all__ = [
    "FailoverError",
    "RemoteQueryResult",
    "RemoteSession",
    "RemoteSubscription",
    "ShardRoutingError",
    "WorkerRestartingError",
]
