"""Extensibility: user-defined data types, relation implementations, and
index implementations (paper Section 7).

*"The user can define new abstract data types, new relation implementations,
or new indexing methods, and use the query evaluation system with no (or in
a few cases, minor) changes ... 'Locality' refers to the ability to extend
the type system by adding new code, without modifying existing system
code."*

Three extension points, each demonstrated in ``tests/test_extensibility.py``
and ``examples/python_integration.py``:

* **Data types** — subclass :class:`repro.terms.Arg`, implement the
  virtual-method contract (``equals``, ``hash_value``, ``__str__``,
  ``construct``), and optionally register a *constructor name* with
  :class:`TypeRegistry` so consulted text files re-create instances from
  their printed representation (the paper's ``construct`` path).
* **Relations** — subclass :class:`repro.relations.Relation`; anything with
  the cursor interface can sit behind a predicate.  :class:`FunctionRelation`
  covers the common case the paper calls "relations defined by C++
  functions" (Section 7.2): a Python generator computes matching tuples on
  demand.
* **Indexes** — subclass :class:`repro.relations.IndexSpec`; hash relations
  accept any spec that maps tuples and probes to bucket keys.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Type

from ..errors import ExtensibilityError
from ..relations import GeneratorTupleIterator, Relation, Tuple, TupleIterator
from ..terms import Arg, BindEnv, Functor, resolve


class TypeRegistry:
    """Maps constructor (functor) names to abstract data types.

    After registration, :meth:`reconstruct` rewrites parsed ground functor
    terms ``name(arg1, ..., argN)`` into ``cls.construct(arg1, ..., argN)``
    — the paper's mechanism for re-creating objects from printed
    representations.  The rest of the system needs no change: the new type
    is an :class:`Arg` and every subsystem manipulates it through the
    virtual-method contract (Section 7.1).
    """

    def __init__(self) -> None:
        self._types: Dict[str, Type[Arg]] = {}

    def register(self, name: str, cls: Type[Arg], replace: bool = False) -> None:
        if not issubclass(cls, Arg):
            raise ExtensibilityError(
                f"{cls.__name__} must subclass Arg to be a CORAL data type"
            )
        for required in ("equals", "hash_value", "construct", "__str__"):
            if not callable(getattr(cls, required, None)):
                raise ExtensibilityError(
                    f"{cls.__name__} is missing the {required} method of the "
                    f"abstract-data-type contract (Section 7.1)"
                )
        if name in self._types and not replace:
            raise ExtensibilityError(f"type constructor {name!r} already registered")
        self._types[name] = cls

    def lookup(self, name: str) -> Optional[Type[Arg]]:
        return self._types.get(name)

    def reconstruct(self, term: Arg) -> Arg:
        """Deeply replace registered constructor terms by ADT instances."""
        if isinstance(term, Functor):
            args = tuple(self.reconstruct(arg) for arg in term.args)
            cls = self._types.get(term.name)
            if cls is not None and all(arg.is_ground() for arg in args):
                return cls.construct(*args)
            if args != term.args:
                return Functor(term.name, args)
        return term

    def __len__(self) -> int:
        return len(self._types)


class FunctionRelation(Relation):
    """A relation computed by a host-language function (Section 7.2).

    The function receives one Python argument per relation argument — the
    bound :class:`Arg` value, or None when the probe leaves it free — and
    yields tuples of :class:`Arg` (or values convertible via ``to_arg``).
    The evaluator scans it exactly like a stored relation.
    """

    def __init__(
        self,
        name: str,
        arity: int,
        function: Callable[..., Iterable[Sequence[Any]]],
    ) -> None:
        super().__init__(name, arity)
        self.function = function

    def insert(self, tup: Tuple) -> bool:
        raise ExtensibilityError(f"{self.name} is computed by a function")

    def delete(self, tup: Tuple) -> bool:
        raise ExtensibilityError(f"{self.name} is computed by a function")

    def __len__(self) -> int:
        return 0

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
    ) -> TupleIterator:
        from ..terms import to_arg

        if pattern is None:
            bound = [None] * self.arity
        else:
            resolved = [resolve(arg, env) for arg in pattern]
            bound = [arg if arg.is_ground() else None for arg in resolved]

        def generate():
            for row in self.function(*bound):
                if len(row) != self.arity:
                    raise ExtensibilityError(
                        f"function relation {self.name}/{self.arity} yielded "
                        f"a row of length {len(row)}"
                    )
                yield Tuple(tuple(to_arg(value) for value in row))

        return GeneratorTupleIterator(generate())


__all__ = ["FunctionRelation", "TypeRegistry"]
