"""Tokenizer for the CORAL declarative language.

The surface syntax follows the paper's examples (Figure 3, Section 5.5):
Prolog-style clauses with ``:-``, module brackets ``module m.`` ...
``end_module.``, ``export`` declarations with adornment strings, ``@``
annotations, functor terms, lists ``[H|T]``, grouped aggregation arguments
``min(<C>)``, arithmetic and comparison operators, and ``not`` for negation.

The only lexical subtlety inherited from Prolog is the full stop: ``.`` ends
a clause when followed by whitespace or end of input, and is a decimal point
inside a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import ParseError

#: token kinds
IDENT = "ident"  # lowercase-led identifier: predicate, functor, atom
VARIABLE = "variable"  # uppercase- or underscore-led identifier
INTEGER = "integer"
FLOAT = "float"
STRING = "string"
PUNCT = "punct"  # operators and punctuation
END = "end"  # clause-terminating full stop
EOF = "eof"

#: multi-character operators, longest first so the scanner is greedy
_OPERATORS = [
    ":-",
    "?-",
    "<=",
    ">=",
    "=<",
    "==",
    "!=",
    "\\=",
    "<",
    ">",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    "|",
    "@",
    "+",
    "-",
    "*",
    "/",
    "?",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


class Lexer:
    """A one-pass scanner producing a list of tokens."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "%":  # line comment
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":  # block comment
                self._advance(2)
                while self.position < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.position >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        ch = self._peek()
        if not ch:
            return Token(EOF, "", line, column)

        if ch.isdigit():
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch == '"':
            return self._string(line, column)
        if ch == ".":
            nxt = self._peek(1)
            if nxt.isdigit():
                return self._number(line, column)
            self._advance()
            return Token(END, ".", line, column)
        for op in _OPERATORS:
            if self.source.startswith(op, self.position):
                self._advance(len(op))
                return Token(PUNCT, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _number(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.position]
        return Token(FLOAT if is_float else INTEGER, text, line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        kind = VARIABLE if text[0].isupper() or text[0] == "_" else IDENT
        return Token(kind, text, line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                return Token(STRING, "".join(parts), line, column)
            if ch == "\\":
                self._advance()
                escape = self._advance()
                parts.append(
                    {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape)
                )
            else:
                parts.append(self._advance())


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into tokens (including the trailing EOF token)."""
    return Lexer(source).tokens()
