"""The language front end: lexer, AST, and parser (paper Sections 2, 5)."""

from .ast import (
    AGGREGATE_FUNCTIONS,
    AggregateSelection,
    Aggregation,
    Command,
    ExportDecl,
    FlagAnnotation,
    IndexAnnotation,
    Literal,
    MODULE_FLAGS,
    ModuleDecl,
    Program,
    Query,
    Rule,
)
from .lexer import Token, tokenize
from .parser import COMPARISON_OPS, parse_module, parse_program, parse_query

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateSelection",
    "Aggregation",
    "COMPARISON_OPS",
    "Command",
    "ExportDecl",
    "FlagAnnotation",
    "IndexAnnotation",
    "Literal",
    "MODULE_FLAGS",
    "ModuleDecl",
    "Program",
    "Query",
    "Rule",
    "Token",
    "parse_module",
    "parse_program",
    "parse_query",
    "tokenize",
]
