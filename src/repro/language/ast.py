"""Abstract syntax for the CORAL declarative language.

A consulted file is a :class:`Program`: a sequence of module definitions,
top-level facts (loaded into base relations), queries, and commands.  Inside
a module (Section 5): exported predicates with their *query forms* (adornment
strings such as ``bfff``), optional annotations (Section 4, Section 5.5), and
Horn rules whose bodies may contain negated literals, builtin comparisons,
and arithmetic.

Aggregation in rule heads uses grouped arguments, e.g. the paper's Figure 3
``s_p_length(X, Y, min(<C>))``: the head argument is an :class:`Aggregation`
of the group expression ``<C>`` under ``min``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..terms import Arg, Var

#: aggregate function names accepted in heads and aggregate selections
AGGREGATE_FUNCTIONS = (
    "min", "max", "sum", "count", "any", "choice", "prod", "set", "bag"
)


@dataclass(frozen=True)
class Literal:
    """One predicate occurrence ``[not] pred(arg1, ..., argN)``."""

    pred: str
    args: PyTuple[Arg, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def key(self) -> PyTuple[str, int]:
        """(name, arity) — how predicates are identified system-wide."""
        return (self.pred, len(self.args))

    def __str__(self) -> str:
        if self.pred in ("<", ">", "<=", ">=", "==", "!=", "=") and len(self.args) == 2:
            # comparisons print infix so printed programs re-parse
            return f"{self.args[0]} {self.pred} {self.args[1]}"
        inner = ", ".join(str(arg) for arg in self.args)
        body = f"{self.pred}({inner})" if self.args else self.pred
        return f"not {body}" if self.negated else body


@dataclass(frozen=True)
class Aggregation:
    """A grouped head argument such as ``min(<C>)`` (Figure 3).

    ``function`` is one of :data:`AGGREGATE_FUNCTIONS`; ``expr`` is the term
    inside the angle brackets (usually a variable).
    """

    function: str
    expr: Arg

    def __str__(self) -> str:
        return f"{self.function}(<{self.expr}>)"


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` — a fact when the body is empty.

    ``head_aggregates`` maps head argument positions to their
    :class:`Aggregation` when the rule is a grouping rule; the plain head
    argument at such a position is a fresh variable standing for the
    aggregate result.
    """

    head: Literal
    body: PyTuple[Literal, ...] = ()
    head_aggregates: PyTuple[PyTuple[int, Aggregation], ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __str__(self) -> str:
        head = _head_to_str(self)
        if not self.body:
            return f"{head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{head} :- {body}."


def _head_to_str(rule: Rule) -> str:
    aggregates = dict(rule.head_aggregates)
    parts = []
    for position, arg in enumerate(rule.head.args):
        agg = aggregates.get(position)
        parts.append(str(agg) if agg else str(arg))
    return f"{rule.head.pred}({', '.join(parts)})" if parts else rule.head.pred


@dataclass(frozen=True)
class ExportDecl:
    """``export pred(form1, form2, ...).`` — the query forms (adornments)
    under which a module predicate may be called (Section 2)."""

    pred: str
    arity: int
    forms: PyTuple[str, ...]

    def __str__(self) -> str:
        return f"export {self.pred}({', '.join(self.forms)})."


# ---------------------------------------------------------------------------
# annotations (Sections 4, 5.4, 5.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateSelection:
    """``@aggregate_selection p(X,Y,P,C) (X,Y) min(C).`` (Section 5.5.2).

    Facts of ``p`` are grouped by the values of ``group_vars``; within each
    group only facts optimal under ``function`` applied to ``target`` are
    retained (``any`` retains a single arbitrary witness).
    """

    pred: str
    pattern: PyTuple[Arg, ...]
    group_vars: PyTuple[Var, ...]
    function: str
    target: Optional[Arg]  # None for e.g. count-style selections

    @property
    def arity(self) -> int:
        return len(self.pattern)


@dataclass(frozen=True)
class IndexAnnotation:
    """``@make_index pred(pattern)(keys).`` (Section 5.5.1)."""

    pred: str
    pattern: PyTuple[Arg, ...]
    key_terms: PyTuple[Arg, ...]

    @property
    def arity(self) -> int:
        return len(self.pattern)


@dataclass(frozen=True)
class FlagAnnotation:
    """A parameterless or simply parameterized module-level control
    annotation, e.g. ``@pipelining.``, ``@save_module.``, ``@multiset p.``"""

    name: str
    argument: Optional[str] = None


#: module-level flags the optimizer understands
MODULE_FLAGS = {
    "pipelining",
    "materialization",
    "save_module",
    "lazy_eval",
    "eager_eval",
    "ordered_search",
    "no_rewriting",
    "magic",
    "supplementary_magic",
    "supplementary_magic_goalid",
    "context_factoring",
    "no_existential_rewriting",
    "bsn",
    "psn",
    "multiset",
    "compiled",
    # cross-query answer memoization (repro.eval.memo): @memo opts a module
    # in under Session(memo="annotated"); @no_memo always opts out
    "memo",
    "no_memo",
    # ablation switches (benchmarking the optimizer's run-time decisions)
    "no_backjumping",
    "no_index_selection",
    # opt-in bound-first join ordering (the default is the user's textual
    # left-to-right order, Section 4.1)
    "join_ordering",
}


@dataclass
class ModuleDecl:
    """``module m.`` ... ``end_module.`` — the unit of compilation and of
    evaluation-strategy choice (Section 5)."""

    name: str
    exports: List[ExportDecl] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    aggregate_selections: List[AggregateSelection] = field(default_factory=list)
    index_annotations: List[IndexAnnotation] = field(default_factory=list)
    flags: List[FlagAnnotation] = field(default_factory=list)

    def flag(self, name: str) -> Optional[FlagAnnotation]:
        for annotation in self.flags:
            if annotation.name == name:
                return annotation
        return None

    def has_flag(self, name: str) -> bool:
        return self.flag(name) is not None

    def defined_predicates(self) -> List[PyTuple[str, int]]:
        seen: Dict[PyTuple[str, int], None] = {}
        for rule in self.rules:
            seen.setdefault(rule.head.key)
        return list(seen)

    def __str__(self) -> str:
        lines = [f"module {self.name}."]
        lines += [str(e) for e in self.exports]
        lines += [str(r) for r in self.rules]
        lines.append("end_module.")
        return "\n".join(lines)


@dataclass(frozen=True)
class Query:
    """``?- lit.`` or ``lit?`` — a top-level query."""

    literal: Literal

    def __str__(self) -> str:
        return f"?- {self.literal}."


@dataclass(frozen=True)
class Command:
    """An interactive command outside modules (e.g. ``@consult file.``)."""

    name: str
    arguments: PyTuple[str, ...] = ()


@dataclass
class Program:
    """Everything read from one source text, in order."""

    modules: List[ModuleDecl] = field(default_factory=list)
    facts: List[Rule] = field(default_factory=list)
    queries: List[Query] = field(default_factory=list)
    commands: List[Command] = field(default_factory=list)
    index_annotations: List[IndexAnnotation] = field(default_factory=list)

    def module(self, name: str) -> ModuleDecl:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(name)
