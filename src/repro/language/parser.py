"""Recursive-descent parser for the CORAL declarative language.

Produces the :mod:`repro.language.ast` structures.  Variable scoping is per
clause: every occurrence of the same name inside one rule (or one annotation)
denotes the same :class:`Var`; ``_`` is always fresh.

Body literals may be ordinary atoms, negated atoms (``not p(X)``), or builtin
comparisons/assignments whose operands are infix arithmetic expressions —
``C1 = C + EC`` from the paper's Figure 3 parses to the builtin literal
``=(C1, +(C, EC))``, evaluated by :mod:`repro.builtins`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

from ..errors import ParseError
from ..terms import Arg, Atom, Double, Functor, Int, NIL, Str, Var, cons
from .ast import (
    AGGREGATE_FUNCTIONS,
    AggregateSelection,
    Aggregation,
    Command,
    ExportDecl,
    FlagAnnotation,
    IndexAnnotation,
    Literal,
    MODULE_FLAGS,
    ModuleDecl,
    Program,
    Query,
    Rule,
)
from .lexer import END, EOF, FLOAT, IDENT, INTEGER, PUNCT, STRING, Token, VARIABLE, tokenize

#: builtin comparison / binding operators usable infix in rule bodies
COMPARISON_OPS = ("<", ">", "<=", ">=", "=<", "==", "!=", "\\=", "=")

#: infix arithmetic, by precedence level (low to high)
_ADDITIVE = ("+", "-")
_MULTIPLICATIVE = ("*", "/")


class _ClauseScope:
    """Variable scope for one clause: name -> Var."""

    def __init__(self) -> None:
        self._vars: Dict[str, Var] = {}

    def var(self, name: str) -> Var:
        if name == "_":
            return Var("_")
        existing = self._vars.get(name)
        if existing is None:
            existing = Var(name)
            self._vars[name] = existing
        return existing


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise self._error(f"expected {wanted!r}, found {token.text!r}")
        return self._advance()

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    # -- program structure ---------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while not self._at(EOF):
            if self._at(IDENT, "module"):
                program.modules.append(self._module())
            elif self._at(PUNCT, "@"):
                self._top_level_annotation(program)
            elif self._at(PUNCT, "?-"):
                program.queries.append(self._query())
            else:
                item = self._clause_or_query()
                if isinstance(item, Query):
                    program.queries.append(item)
                else:
                    if not item.is_fact:
                        raise self._error(
                            "rules must appear inside a module (facts and "
                            "queries are allowed at top level)"
                        )
                    program.facts.append(item)
        return program

    def _module(self) -> ModuleDecl:
        self._expect(IDENT, "module")
        name = self._expect(IDENT).text
        self._expect(END)
        module = ModuleDecl(name)
        while not self._at(IDENT, "end_module"):
            if self._at(EOF):
                raise self._error(f"module {name} is missing end_module")
            if self._at(IDENT, "export"):
                module.exports.append(self._export())
            elif self._at(PUNCT, "@"):
                self._module_annotation(module)
            else:
                rule = self._clause_or_query()
                if isinstance(rule, Query):
                    raise self._error("queries are not allowed inside modules")
                module.rules.append(rule)
        self._expect(IDENT, "end_module")
        self._expect(END)
        return module

    def _export(self) -> ExportDecl:
        self._expect(IDENT, "export")
        pred = self._expect(IDENT).text
        self._expect(PUNCT, "(")
        forms: List[str] = []
        if self._at(PUNCT, ")"):
            forms.append("")  # a zero-arity predicate: the empty query form
        else:
            while True:
                form = self._expect(IDENT).text
                if any(ch not in "bf" for ch in form):
                    raise self._error(
                        f"query form {form!r} must be a string of 'b' and 'f'"
                    )
                forms.append(form)
                if self._at(PUNCT, ","):
                    self._advance()
                    continue
                break
        self._expect(PUNCT, ")")
        self._expect(END)
        arities = {len(form) for form in forms}
        if len(arities) != 1:
            raise self._error(f"query forms for {pred} have differing lengths")
        return ExportDecl(pred, arities.pop(), tuple(forms))

    def _query(self) -> Query:
        self._expect(PUNCT, "?-")
        scope = _ClauseScope()
        literal = self._literal(scope)
        self._expect(END)
        return Query(literal)

    # -- annotations -----------------------------------------------------------

    def _module_annotation(self, module: ModuleDecl) -> None:
        self._expect(PUNCT, "@")
        name = self._expect(IDENT).text
        if name == "aggregate_selection":
            module.aggregate_selections.append(self._aggregate_selection())
        elif name == "make_index":
            module.index_annotations.append(self._make_index())
        elif name in MODULE_FLAGS:
            argument = None
            if self._at(IDENT):
                argument = self._advance().text
            elif self._at(PUNCT, "("):
                # parenthesized flag argument: @compiled(push).
                self._advance()
                argument = self._expect(IDENT).text
                self._expect(PUNCT, ")")
            self._expect(END)
            module.flags.append(FlagAnnotation(name, argument))
        else:
            raise self._error(f"unknown annotation @{name}")

    def _top_level_annotation(self, program: Program) -> None:
        self._expect(PUNCT, "@")
        name = self._expect(IDENT).text
        if name == "make_index":
            program.index_annotations.append(self._make_index())
            return
        arguments: List[str] = []
        while not self._at(END):
            token = self._peek()
            if token.kind in (IDENT, VARIABLE, STRING, INTEGER, FLOAT):
                arguments.append(self._advance().text)
            else:
                raise self._error(f"unexpected token in @{name} command")
        self._expect(END)
        program.commands.append(Command(name, tuple(arguments)))

    def _aggregate_selection(self) -> AggregateSelection:
        """``@aggregate_selection p(X, Y, P, C) (X, Y) min(C).``"""
        scope = _ClauseScope()
        pred = self._expect(IDENT).text
        pattern = self._term_list_in_parens(scope)
        self._expect(PUNCT, "(")
        group_vars: List[Var] = []
        if not self._at(PUNCT, ")"):
            while True:
                token = self._expect(VARIABLE)
                group_vars.append(scope.var(token.text))
                if self._at(PUNCT, ","):
                    self._advance()
                    continue
                break
        self._expect(PUNCT, ")")
        function = self._expect(IDENT).text
        if function not in AGGREGATE_FUNCTIONS:
            raise self._error(f"unknown aggregate function {function!r}")
        target: Optional[Arg] = None
        if self._at(PUNCT, "("):
            self._advance()
            if not self._at(PUNCT, ")"):
                target = self._term(scope)
            self._expect(PUNCT, ")")
        self._expect(END)
        return AggregateSelection(
            pred, tuple(pattern), tuple(group_vars), function, target
        )

    def _make_index(self) -> IndexAnnotation:
        """``@make_index emp(Name, addr(Street, City))(Name, City).``"""
        scope = _ClauseScope()
        pred = self._expect(IDENT).text
        pattern = self._term_list_in_parens(scope)
        keys = self._term_list_in_parens(scope)
        self._expect(END)
        return IndexAnnotation(pred, tuple(pattern), tuple(keys))

    def _term_list_in_parens(self, scope: _ClauseScope) -> List[Arg]:
        self._expect(PUNCT, "(")
        terms: List[Arg] = []
        if not self._at(PUNCT, ")"):
            while True:
                terms.append(self._term(scope))
                if self._at(PUNCT, ","):
                    self._advance()
                    continue
                break
        self._expect(PUNCT, ")")
        return terms

    # -- clauses -----------------------------------------------------------------

    def _clause_or_query(self):
        scope = _ClauseScope()
        head_pred, head_args, aggregates = self._head(scope)
        if self._at(PUNCT, "?"):
            self._advance()
            if aggregates:
                raise self._error("queries cannot contain aggregation")
            return Query(Literal(head_pred, tuple(head_args)))
        body: List[Literal] = []
        if self._at(PUNCT, ":-"):
            self._advance()
            while True:
                body.append(self._literal(scope))
                if self._at(PUNCT, ","):
                    self._advance()
                    continue
                break
        self._expect(END)
        if aggregates and not body:
            raise self._error("a fact cannot contain aggregation")
        return Rule(
            Literal(head_pred, tuple(head_args)),
            tuple(body),
            tuple(sorted(aggregates.items())),
        )

    def _head(self, scope: _ClauseScope):
        pred = self._expect(IDENT).text
        args: List[Arg] = []
        aggregates: Dict[int, Aggregation] = {}
        if self._at(PUNCT, "("):
            self._advance()
            position = 0
            while not self._at(PUNCT, ")"):
                aggregation = self._try_aggregation(scope)
                if aggregation is not None:
                    aggregates[position] = aggregation
                    args.append(Var(f"_Agg{position}"))
                else:
                    args.append(self._term(scope))
                position += 1
                if self._at(PUNCT, ","):
                    self._advance()
            self._expect(PUNCT, ")")
        return pred, args, aggregates

    def _try_aggregation(self, scope: _ClauseScope) -> Optional[Aggregation]:
        """``min(<C>)`` in a head argument position."""
        token = self._peek()
        if (
            token.kind == IDENT
            and token.text in AGGREGATE_FUNCTIONS
            and self._peek(1).kind == PUNCT
            and self._peek(1).text == "("
            and self._peek(2).kind == PUNCT
            and self._peek(2).text == "<"
        ):
            self._advance()  # function name
            self._advance()  # (
            self._advance()  # <
            expr = self._term(scope)
            self._expect(PUNCT, ">")
            self._expect(PUNCT, ")")
            return Aggregation(token.text, expr)
        return None

    # -- body literals -------------------------------------------------------------

    def _literal(self, scope: _ClauseScope) -> Literal:
        if self._at(IDENT, "not"):
            self._advance()
            inner = self._literal(scope)
            if inner.negated:
                raise self._error("double negation is not supported")
            if inner.pred in COMPARISON_OPS:
                raise self._error("negate the comparison by inverting it instead")
            return Literal(inner.pred, inner.args, negated=True)
        left = self._arith_expr(scope)
        token = self._peek()
        if token.kind == PUNCT and token.text in COMPARISON_OPS:
            op = self._advance().text
            right = self._arith_expr(scope)
            if op == "=<":  # Prolog spelling of <=
                op = "<="
            if op == "\\=":
                op = "!="
            return Literal(op, (left, right))
        # a plain atom: the parsed expression must be a predicate application
        if isinstance(left, Functor):
            return Literal(left.name, left.args)
        if isinstance(left, Atom):
            return Literal(left.name, ())
        raise self._error(f"expected a literal, found term {left}")

    def _arith_expr(self, scope: _ClauseScope) -> Arg:
        left = self._arith_term(scope)
        while self._at(PUNCT, "+") or self._at(PUNCT, "-"):
            op = self._advance().text
            right = self._arith_term(scope)
            left = Functor(op, (left, right))
        return left

    def _arith_term(self, scope: _ClauseScope) -> Arg:
        left = self._arith_factor(scope)
        while self._at(PUNCT, "*") or self._at(PUNCT, "/"):
            op = self._advance().text
            right = self._arith_factor(scope)
            left = Functor(op, (left, right))
        return left

    def _arith_factor(self, scope: _ClauseScope) -> Arg:
        if self._at(PUNCT, "-"):
            self._advance()
            return Functor("-", (Int(0), self._arith_factor(scope)))
        if self._at(PUNCT, "("):
            self._advance()
            inner = self._arith_expr(scope)
            self._expect(PUNCT, ")")
            return inner
        return self._term(scope)

    # -- terms ------------------------------------------------------------------------

    def _term(self, scope: _ClauseScope) -> Arg:
        token = self._peek()
        if token.kind == VARIABLE:
            self._advance()
            return scope.var(token.text)
        if token.kind == INTEGER:
            self._advance()
            return Int(int(token.text))
        if token.kind == FLOAT:
            self._advance()
            return Double(float(token.text))
        if token.kind == STRING:
            self._advance()
            return Str(token.text)
        if token.kind == IDENT:
            self._advance()
            if self._at(PUNCT, "("):
                args = self._term_args(scope)
                return Functor(token.text, tuple(args))
            return Atom(token.text)
        if token.kind == PUNCT and token.text == "[":
            return self._list(scope)
        if token.kind == PUNCT and token.text == "-":
            self._advance()
            inner = self._term(scope)
            if isinstance(inner, Int):
                return Int(-inner.value)
            if isinstance(inner, Double):
                return Double(-inner.value)
            return Functor("-", (Int(0), inner))
        raise self._error(f"expected a term, found {token.text!r}")

    def _term_args(self, scope: _ClauseScope) -> List[Arg]:
        self._expect(PUNCT, "(")
        args: List[Arg] = []
        if not self._at(PUNCT, ")"):
            while True:
                args.append(self._arith_expr(scope))
                if self._at(PUNCT, ","):
                    self._advance()
                    continue
                break
        self._expect(PUNCT, ")")
        return args

    def _list(self, scope: _ClauseScope) -> Arg:
        self._expect(PUNCT, "[")
        if self._at(PUNCT, "]"):
            self._advance()
            return NIL
        elements: List[Arg] = [self._term(scope)]
        while self._at(PUNCT, ","):
            self._advance()
            elements.append(self._term(scope))
        tail: Arg = NIL
        if self._at(PUNCT, "|"):
            self._advance()
            tail = self._term(scope)
        self._expect(PUNCT, "]")
        for element in reversed(elements):
            tail = cons(element, tail)
        return tail


def parse_program(source: str) -> Program:
    """Parse a whole source text (a consulted file or typed-in block)."""
    return Parser(source).parse_program()


def parse_query(source: str) -> Query:
    """Parse a single query, with or without the ``?-`` prefix / ``?`` suffix."""
    text = source.strip()
    if not text.startswith("?-"):
        if text.endswith("?"):
            text = text[:-1]
        text = "?- " + text
    if not text.rstrip().endswith("."):
        text = text + "."
    program = Parser(text).parse_program()
    if len(program.queries) != 1:
        raise ParseError("expected exactly one query")
    return program.queries[0]


def parse_module(source: str) -> ModuleDecl:
    """Parse a source text expected to contain exactly one module."""
    program = parse_program(source)
    if len(program.modules) != 1:
        raise ParseError(
            f"expected exactly one module, found {len(program.modules)}"
        )
    return program.modules[0]
