"""The query optimizer (paper Section 4).

*"The query optimizer takes a program module and a query form as input, and
generates a rewritten program that is optimized for the specified query
forms.  In addition to doing rewriting transformations, the optimizer adds
several control annotations."* (Section 2.)

:class:`Optimizer.compile` performs, per module and query form:

1. choice of rewriting technique (Section 4.1) — Supplementary Magic by
   default, or Magic Templates / GoalId indexing / context factoring /
   nothing, per module annotations; all-free query forms skip rewriting
   (bindings are only a final selection);
2. existential (projection-pushing) rewriting, on by default alongside a
   selection-pushing rewriting (Section 4.1);
3. run-time decisions (Section 4.2): fixpoint strategy (BSN/PSN), index
   selection for the rewritten rules, subsumption/multiset policy, lazy vs
   eager answer return, intelligent backtracking;
4. SCC decomposition and semi-naive rule generation (Sections 5.1, 5.3).

The result, a :class:`CompiledForm`, is the "internal representation used by
the query evaluation system"; :meth:`CompiledForm.listing` renders the
rewritten program as text, the paper's debugging aid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple as PyTuple

from ..errors import RewriteError, StratificationError
from ..language.ast import (
    AggregateSelection,
    ExportDecl,
    IndexAnnotation,
    Literal,
    ModuleDecl,
    Rule,
)
from ..relations import ArgumentIndexSpec, IndexSpec, PatternIndexSpec
from ..rewriting.adorn import adorn_program
from ..rewriting.existential import existential_rewrite
from ..rewriting.factoring import FactoringNotApplicable, factoring_rewrite
from ..rewriting.graph import (
    build_dependency_graph,
    check_stratified,
    condensation_order,
    recursive_predicates,
)
from ..rewriting.magic import RewrittenProgram, magic_rewrite, no_rewriting
from ..rewriting.seminaive import SNRule
from ..rewriting.supmagic import supmagic_rewrite
from ..eval.fixpoint import SCCPlan
from ..terms import Var

PredKey = PyTuple[str, int]


class _PureMarker:
    """Stand-in builtin descriptor when only an is_builtin predicate is
    available (assumes purity — the manager passes the real registry)."""

    pure = True


@dataclass
class CompiledForm:
    """A module compiled for one query form — Section 5.1's internal module
    structure: SCC list, semi-naive rules, and control decisions."""

    module_name: str
    pred: str
    adornment: str
    rewritten: RewrittenProgram
    scc_plans: List[SCCPlan]
    strategy: str  # 'bsn' | 'psn' | 'naive'
    lazy: bool
    use_backjumping: bool
    save_module: bool
    ordered_search: bool
    #: generated-code backend ("closure" or "push"), or None for the
    #: interpreter (Section 2's compiled mode; truthy iff compiled)
    compiled: Optional[str]
    #: original-name aggregate selections mapped onto rewritten predicates
    constraints: List[PyTuple[PredKey, AggregateSelection]]
    #: index specs to create on local relations: (pred key) -> specs
    index_specs: Dict[PredKey, List[IndexSpec]] = field(default_factory=dict)
    #: index specs for base (non-local) relations
    base_index_specs: Dict[PredKey, List[IndexSpec]] = field(default_factory=dict)
    #: predicates with multiset (duplicate-keeping) semantics
    multiset_preds: Set[str] = field(default_factory=set)

    def listing(self) -> str:
        """The rewritten program as text (Section 2: 'stored as a text file —
        useful as a debugging aid')."""
        lines = [
            f"% module {self.module_name}, query form "
            f"{self.pred}^{self.adornment}",
            f"% technique: {self.rewritten.technique}, strategy: {self.strategy}"
            f"{', lazy' if self.lazy else ''}",
        ]
        for plan in self.scc_plans:
            preds = ", ".join(f"{n}/{a}" for n, a in sorted(plan.preds))
            lines.append(f"% scc: {preds}")
            for rule in plan.rules:
                lines.append(str(rule))
        return "\n".join(lines)


class Optimizer:
    """Compiles module declarations into :class:`CompiledForm` plans."""

    def __init__(
        self,
        is_builtin: Callable[[str, int], bool],
        lookup_builtin: Optional[Callable[[str, int], object]] = None,
        default_compiled: Optional[str] = None,
    ) -> None:
        self.is_builtin = is_builtin
        self._lookup_builtin = lookup_builtin or (
            lambda name, arity: _PureMarker() if is_builtin(name, arity) else None
        )
        #: session-wide compiled backend; an @compiled module flag wins
        self.default_compiled = default_compiled

    # -- public entry ---------------------------------------------------------

    def compile(self, module: ModuleDecl, pred: str, adornment: str) -> CompiledForm:
        """Compile ``module`` for one query form.

        If a selection-propagating rewriting breaks stratification (magic
        predicates typically close cycles through aggregation/negation),
        the optimizer falls back to Ordered Search over the original rules
        — the paper's strategy for left-to-right modularly stratified
        programs (Section 5.4.1).
        """
        try:
            return self._compile(module, pred, adornment, force_ordered=False)
        except StratificationError:
            if module.has_flag("ordered_search"):
                raise
            return self._compile(module, pred, adornment, force_ordered=True)

    def _compile(
        self,
        module: ModuleDecl,
        pred: str,
        adornment: str,
        force_ordered: bool,
    ) -> CompiledForm:
        ordered_flag = module.has_flag("ordered_search") or force_ordered
        technique = "none" if ordered_flag else self._technique(module, adornment)
        rules = list(module.rules)
        multiset_preds = {
            flag.argument
            for flag in module.flags
            if flag.name == "multiset" and flag.argument
        }
        if module.has_flag("multiset") and module.flag("multiset").argument is None:
            multiset_preds.update(rule.head.pred for rule in rules)

        # existential rewriting (projection pushing), Section 4.1: applied by
        # default with a selection-pushing rewriting; skipped under multiset
        # semantics (projection changes duplicate counts)
        if (
            not module.has_flag("no_existential_rewriting")
            and not multiset_preds
            and technique != "none"
        ):
            rules = existential_rewrite(
                rules,
                pred,
                len(adornment),
                self.is_builtin,
                protected={
                    selection.pred
                    for selection in module.aggregate_selections
                },
            )

        rewritten = self._rewrite(rules, module, pred, adornment, technique)
        if module.has_flag("join_ordering"):
            from .joinorder import order_program

            rewritten.rules = order_program(
                rewritten.rules, self._lookup_builtin
            )

        strategy = "psn" if module.has_flag("psn") else "bsn"
        save_module = module.has_flag("save_module")
        ordered_search = ordered_flag

        constraints = self._map_constraints(module, rewritten)
        lazy = not (
            save_module
            or constraints
            or module.has_flag("eager_eval")
            or ordered_search
        )
        if module.has_flag("lazy_eval"):
            lazy = True

        graph = build_dependency_graph(rewritten.rules, self.is_builtin)
        if not ordered_search:
            try:
                check_stratified(graph)
            except StratificationError as error:
                raise StratificationError(
                    f"module {module.name}: {error} "
                ) from error
        seed_preds: Set[PredKey] = set()
        if rewritten.magic_pred is not None:
            seed_preds.add(
                (rewritten.magic_pred, len(rewritten.bound_positions))
            )
        scc_plans = self._plan_sccs(graph, rewritten.rules, strategy, seed_preds)

        compiled = CompiledForm(
            module_name=module.name,
            pred=pred,
            adornment=adornment,
            rewritten=rewritten,
            scc_plans=scc_plans,
            strategy=strategy,
            lazy=lazy,
            use_backjumping=not module.has_flag("no_backjumping"),
            save_module=save_module,
            ordered_search=ordered_search,
            compiled=self._compiled_backend(module),
            constraints=constraints,
            multiset_preds=multiset_preds,
        )
        if not module.has_flag("no_index_selection"):
            self._select_indexes(compiled)
        self._map_index_annotations(module, compiled)
        return compiled

    def _compiled_backend(self, module: ModuleDecl) -> Optional[str]:
        """Which code generator (if any) this module evaluates through:
        ``@compiled.`` / ``@compiled(closure).`` / ``@compiled(push).`` on
        the module, else the session-wide default."""
        flag = module.flag("compiled")
        if flag is not None:
            backend = flag.argument or "closure"
        else:
            backend = self.default_compiled
        if backend not in (None, "closure", "push"):
            raise RewriteError(
                f"unknown compiled backend {backend!r} "
                f"(expected 'closure' or 'push')"
            )
        return backend

    # -- technique choice --------------------------------------------------------

    def _technique(self, module: ModuleDecl, adornment: str) -> str:
        if module.has_flag("no_rewriting"):
            return "none"
        if module.has_flag("ordered_search"):
            # Ordered Search drives the original rules through its own
            # subgoal context (Section 5.4.1); selection propagation happens
            # through the subgoal patterns rather than magic predicates.
            return "none"
        if "b" not in adornment:
            # Section 4.1: all-free forms ignore bindings except for a final
            # selection — plain bottom-up evaluation
            return "none"
        if module.has_flag("magic"):
            return "magic"
        if module.has_flag("supplementary_magic_goalid"):
            return "goalid"
        if module.has_flag("context_factoring"):
            return "factoring"
        return "supmagic"

    def _rewrite(
        self,
        rules: List[Rule],
        module: ModuleDecl,
        pred: str,
        adornment: str,
        technique: str,
    ) -> RewrittenProgram:
        if technique == "none":
            return no_rewriting(rules, pred, len(adornment))
        if technique == "factoring":
            try:
                return factoring_rewrite(
                    rules, pred, adornment, self.is_builtin
                )
            except FactoringNotApplicable:
                technique = "supmagic"  # graceful fallback
        adorned = adorn_program(
            rules, pred, len(adornment), adornment, self.is_builtin
        )
        if technique == "magic":
            return magic_rewrite(adorned, self.is_builtin)
        if technique == "goalid":
            return supmagic_rewrite(adorned, self.is_builtin, use_goal_ids=True)
        return supmagic_rewrite(adorned, self.is_builtin)

    # -- SCC planning ---------------------------------------------------------------

    def _plan_sccs(
        self,
        graph,
        rules: Sequence[Rule],
        strategy: str,
        seed_preds: Optional[Set[PredKey]] = None,
    ) -> List[SCCPlan]:
        """One plan per SCC, callees first.  ``earlier`` accumulates the
        local predicates visible to later components — including the
        rule-less magic seed predicate, whose growth across save-module
        calls must be visible to the cross-call delta versions."""
        plans: List[SCCPlan] = []
        earlier: Set[PredKey] = set(seed_preds or ())
        for component in condensation_order(graph):
            component_rules = [
                rule for rule in rules if rule.head.key in component
            ]
            if not component_rules:
                continue
            recursive = recursive_predicates(graph, component)
            plans.append(
                SCCPlan.build(
                    component,
                    recursive,
                    component_rules,
                    self.is_builtin,
                    strategy=strategy,
                    external=set(earlier) - set(component),
                )
            )
            earlier |= set(component)
        return plans

    # -- aggregate selections ----------------------------------------------------------

    def _map_constraints(
        self, module: ModuleDecl, rewritten: RewrittenProgram
    ) -> List[PyTuple[PredKey, AggregateSelection]]:
        """Attach each @aggregate_selection to every rewritten variant of its
        predicate (the adorned relations hold the actual facts)."""
        out: List[PyTuple[PredKey, AggregateSelection]] = []
        heads = {rule.head.pred for rule in rewritten.rules}
        for selection in module.aggregate_selections:
            for head in heads:
                original = rewritten.origin.get(head, (head, ""))[0]
                if original == selection.pred:
                    out.append(((head, selection.arity), selection))
        return out

    # -- index selection (Section 4.2 & 5.3) ----------------------------------------------

    def _select_indexes(self, compiled: CompiledForm) -> None:
        """Create an argument index for every bound-prefix probe the
        semi-naive rules will make (Section 5.3: 'the optimizer analyzes the
        semi-naive rewritten rules and generates annotations to create any
        indexes that may be useful')."""
        local_preds: Set[PredKey] = set()
        for plan in compiled.scc_plans:
            local_preds.update(plan.preds)

        def note(pred_key: PredKey, positions: PyTuple[int, ...]) -> None:
            if not positions:
                return
            spec = ArgumentIndexSpec(pred_key[1], positions)
            table = (
                compiled.index_specs
                if pred_key in local_preds
                else compiled.base_index_specs
            )
            existing = table.setdefault(pred_key, [])
            if not any(
                isinstance(other, ArgumentIndexSpec) and other == spec
                for other in existing
            ):
                existing.append(spec)

        for plan in compiled.scc_plans:
            for rule in plan.rules:
                bound: Set[int] = set()
                for literal in rule.body:
                    if self.is_builtin(literal.pred, literal.arity):
                        for arg in literal.args:
                            bound.update(v.vid for v in arg.variables())
                        continue
                    positions = tuple(
                        position
                        for position, arg in enumerate(literal.args)
                        if arg.is_ground()
                        or all(v.vid in bound for v in arg.variables())
                    )
                    if positions and len(positions) <= literal.arity:
                        note(literal.key, positions)
                    if not literal.negated:
                        for arg in literal.args:
                            bound.update(v.vid for v in arg.variables())

    def _map_index_annotations(
        self, module: ModuleDecl, compiled: CompiledForm
    ) -> None:
        """Translate @make_index annotations into index specs, applied to the
        original predicate name (base relations) and all adorned variants."""
        heads = {rule.head.pred for rule in compiled.rewritten.rules}
        for annotation in module.index_annotations:
            spec = index_spec_from_annotation(annotation)
            key = (annotation.pred, annotation.arity)
            compiled.base_index_specs.setdefault(key, []).append(spec)
            for head in heads:
                original = compiled.rewritten.origin.get(head, (head, ""))[0]
                if original == annotation.pred:
                    compiled.index_specs.setdefault(
                        (head, annotation.arity), []
                    ).append(spec)


def index_spec_from_annotation(annotation: IndexAnnotation) -> IndexSpec:
    """An @make_index annotation becomes an argument-form index when its
    pattern is a plain variable tuple and the keys are top-level argument
    variables; anything structured becomes a pattern-form index
    (Section 5.5.1)."""
    plain = all(isinstance(arg, Var) for arg in annotation.pattern)
    if plain:
        positions = []
        by_vid = {
            arg.vid: position
            for position, arg in enumerate(annotation.pattern)
            if isinstance(arg, Var)
        }
        simple = True
        for key in annotation.key_terms:
            if isinstance(key, Var) and key.vid in by_vid:
                positions.append(by_vid[key.vid])
            else:
                simple = False
                break
        if simple:
            return ArgumentIndexSpec(annotation.arity, positions)
    key_vars = []
    for key in annotation.key_terms:
        if not isinstance(key, Var):
            raise RewriteError(
                f"@make_index keys must be variables, got {key}"
            )
        key_vars.append(key)
    return PatternIndexSpec(annotation.pattern, key_vars)
