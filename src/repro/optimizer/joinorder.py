"""Join-order selection (Section 4.2: the optimizer is responsible for
"(1) join order selection").

CORAL's default is the user's textual left-to-right order (Section 4.1 —
order is part of the language's contract, and pipelined side effects rely on
it), so reordering is opt-in via ``@join_ordering.``.  When enabled, each
rule body is greedily reordered bound-first:

* a comparison/negated literal is scheduled as soon as its variables are
  bound (cheap filters run early);
* among positive literals, the one with the most bound argument positions
  runs next (indexable probes before cartesian scans), ties broken by the
  original order;
* ``=`` is scheduled once either side is fully bound (it then binds the
  other);
* rules containing impure builtins are left untouched — their order is
  observable.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set

from ..language.ast import Literal, Rule

BuiltinInfo = Callable[[str, int], object]  # returns Builtin-like or None


def _vids(literal: Literal) -> Set[int]:
    return {var.vid for arg in literal.args for var in arg.variables()}


def order_rule_body(
    rule: Rule, lookup_builtin: BuiltinInfo
) -> Rule:
    """A rule with its body greedily reordered; the rule itself when
    reordering is unsafe or pointless."""
    if len(rule.body) < 2:
        return rule
    for literal in rule.body:
        builtin = lookup_builtin(literal.pred, literal.arity)
        if builtin is not None and not getattr(builtin, "pure", True):
            return rule  # observable side effects: order is the spec

    remaining: List[Literal] = list(rule.body)
    ordered: List[Literal] = []
    bound: Set[int] = set()

    def eligible_filter(literal: Literal) -> bool:
        builtin = lookup_builtin(literal.pred, literal.arity)
        if literal.negated:
            return _vids(literal) <= bound
        if builtin is None:
            return False
        if literal.pred == "=" and len(literal.args) == 2:
            left = {v.vid for v in literal.args[0].variables()}
            right = {v.vid for v in literal.args[1].variables()}
            return left <= bound or right <= bound
        return _vids(literal) <= bound

    def bound_arg_count(literal: Literal) -> int:
        count = 0
        for arg in literal.args:
            arg_vids = {v.vid for v in arg.variables()}
            if not arg_vids or arg_vids <= bound:
                count += 1
        return count

    while remaining:
        # cheap filters first, in original order
        placed = False
        for index, literal in enumerate(remaining):
            if eligible_filter(literal):
                ordered.append(remaining.pop(index))
                bound |= _vids(literal)
                placed = True
                break
        if placed:
            continue
        # then the most-bound positive (non-builtin) literal
        best_index = None
        best_score = -1
        for index, literal in enumerate(remaining):
            if literal.negated or lookup_builtin(literal.pred, literal.arity):
                continue
            score = bound_arg_count(literal)
            if score > best_score:
                best_index, best_score = index, score
        if best_index is None:
            # only unsatisfiable-yet builtins/negations remain: keep the
            # user's order for the tail and give up on further reordering
            ordered.extend(remaining)
            break
        literal = remaining.pop(best_index)
        ordered.append(literal)
        bound |= _vids(literal)

    if ordered == list(rule.body):
        return rule
    return Rule(rule.head, tuple(ordered), rule.head_aggregates)


def order_program(
    rules: Sequence[Rule], lookup_builtin: BuiltinInfo
) -> List[Rule]:
    return [order_rule_body(rule, lookup_builtin) for rule in rules]
