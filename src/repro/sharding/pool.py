"""The supervised worker fleet: N ``CoralServer`` processes, each owning a
private :class:`~repro.api.Session` and (optionally) a private storage
directory.

The pool is deliberately *not* the router: it knows how to boot, watch,
restart, and interrogate workers, and nothing about predicates or cursors.
The router (:mod:`repro.sharding.router`) asks it two questions — "where is
worker *i*?" (:meth:`WorkerPool.address_of`, which raises the retriable
:class:`~repro.errors.WorkerRestartingError` while a worker is down) and
"what does the fleet look like?" (:meth:`WorkerPool.fetch_stats`, the raw
material for aggregated STATS and worker-labelled ``/metrics``).

Supervision mirrors :class:`repro.replication.replica.ReplicationClient`'s
redial loop: a monitor thread polls each child once per ``heartbeat``
interval; a dead process is restarted after a capped exponential backoff
(so a crash-looping worker cannot consume the machine), and every restart
bumps the worker's *generation* — the router uses generations the same way
:class:`~repro.client.RemoteSession` uses link generations, to know that
cursors opened against the previous incarnation are gone.

Two modes:

* **spawn** (production, the CLI's ``--workers N``): each worker is
  ``python -m repro.server --port 0`` as a child process; the pool parses
  the ``coral-server listening on HOST:PORT`` line the server prints.
* **static endpoints** (tests): the workers are pre-existing servers —
  typically in-process :class:`~repro.server.CoralServer` instances — and
  the pool only handshakes and heartbeats them.

Either way, after boot the pool performs the ``WORKER_HELLO`` handshake,
branding the server with its shard index so its own STATS/metrics identify
it, and learning its pid (what the chaos suite SIGKILLs).
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..errors import ProtocolError, WorkerRestartingError
from ..server.protocol import (
    PROTOCOL_VERSION,
    FrameTimeout,
    read_frame,
    write_frame,
)

#: the stdout line ``python -m repro.server`` prints once it accepts
_LISTENING = re.compile(
    r"coral-server listening on ([^\s:]+):(\d+)"
)


def _roundtrip(sock: socket.socket, header, body: bytes = b""):
    """One request/response on an established worker connection."""
    write_frame(sock, header, body)
    frame = read_frame(sock)
    if frame is None:
        raise ProtocolError("worker closed the connection mid-conversation")
    response, rbody = frame
    if not response.get("ok"):
        raise ProtocolError(
            f"worker refused {header.get('op')}: "
            f"{response.get('message', response.get('error'))}"
        )
    return response, rbody


def _dial(address: PyTuple[str, int], timeout: float) -> socket.socket:
    sock = socket.create_connection(address, timeout=timeout)
    try:
        _roundtrip(
            sock,
            {
                "op": "HELLO",
                "version": PROTOCOL_VERSION,
                "client": "repro.sharding/1",
            },
        )
        return sock
    except BaseException:
        sock.close()
        raise


class WorkerHandle:
    """Everything the pool knows about one worker slot."""

    __slots__ = (
        "index", "proc", "address", "pid", "generation", "restarts",
        "state", "last_stats", "last_seen", "next_restart_at", "_backoff",
        "_reader",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[PyTuple[str, int]] = None
        self.pid: Optional[int] = None
        #: bumped on every (re)boot; cursors belong to one generation
        self.generation = 0
        self.restarts = 0
        #: "starting" | "up" | "down" | "stopped"
        self.state = "starting"
        self.last_stats: Optional[Dict[str, object]] = None
        self.last_seen = 0.0
        self.next_restart_at = 0.0
        self._backoff = 0.0
        self._reader: Optional[threading.Thread] = None

    def describe(self) -> Dict[str, object]:
        """The ``workers`` entry STATS/@workers renders for this slot."""
        return {
            "state": self.state,
            "address": (
                f"{self.address[0]}:{self.address[1]}" if self.address else None
            ),
            "pid": self.pid,
            "generation": self.generation,
            "restarts": self.restarts,
        }


class WorkerPool:
    """Boot, supervise, and interrogate ``count`` shard workers.

    ``endpoints`` switches to static mode (no child processes); otherwise
    each worker is spawned as ``python -m repro.server --port 0`` plus
    ``worker_args``, with ``--data-dir <data_dir>/worker-<i>`` when
    ``data_dir`` is given — disjoint directories are what make the shards'
    storage truly private.
    """

    def __init__(
        self,
        count: int,
        *,
        endpoints: Optional[Sequence[PyTuple[str, int]]] = None,
        data_dir: Optional[str] = None,
        worker_args: Sequence[str] = (),
        heartbeat: float = 1.0,
        backoff: float = 0.2,
        backoff_cap: float = 5.0,
        start_timeout: float = 30.0,
        io_timeout: float = 10.0,
        router_name: str = "router",
    ) -> None:
        if count < 1:
            raise ProtocolError(f"a worker pool needs >= 1 worker, got {count}")
        if endpoints is not None and len(endpoints) != count:
            raise ProtocolError(
                f"{count} workers but {len(endpoints)} static endpoints"
            )
        self.count = count
        self.static = endpoints is not None
        self._endpoints = list(endpoints) if endpoints is not None else None
        self.data_dir = data_dir
        self.worker_args = list(worker_args)
        self.heartbeat = heartbeat
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.start_timeout = start_timeout
        self.io_timeout = io_timeout
        self.router_name = router_name
        self.workers: List[WorkerHandle] = [
            WorkerHandle(i) for i in range(count)
        ]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Boot every worker, handshake each, start the monitor thread."""
        for handle in self.workers:
            self._boot(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-pool-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Stop supervising and (in spawn mode) terminate the children."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for handle in self.workers:
            handle.state = "stopped"
            proc = handle.proc
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
        for handle in self.workers:
            proc = handle.proc
            if proc is None:
                continue
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
                proc.wait(timeout=5.0)
            handle.proc = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- what the router asks ------------------------------------------------

    def address_of(self, index: int) -> PyTuple[str, int]:
        """Where worker ``index`` listens — or the retriable error that
        tells the client to back off while the supervisor restarts it."""
        handle = self.workers[index]
        if handle.state != "up" or handle.address is None:
            raise WorkerRestartingError(
                f"worker {index} is {handle.state} (restart "
                f"{handle.restarts}); retry shortly"
            )
        return handle.address

    def generation_of(self, index: int) -> int:
        return self.workers[index].generation

    def fetch_stats(
        self, timeout: Optional[float] = None
    ) -> Dict[int, Optional[Dict[str, object]]]:
        """One synchronous STATS sweep over the fleet; unreachable workers
        map to None.  Snapshots are cached on the handles for the telemetry
        plane (which must not block a scrape on a dead worker)."""
        wait = timeout if timeout is not None else self.io_timeout
        out: Dict[int, Optional[Dict[str, object]]] = {}
        for handle in self.workers:
            out[handle.index] = self._probe(handle, wait)
        return out

    def kill(self, index: int) -> Optional[int]:
        """SIGKILL one worker (chaos tests); returns the pid it had.
        The monitor notices the corpse and restarts it with backoff."""
        handle = self.workers[index]
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            return None
        pid = proc.pid
        proc.kill()
        return pid

    def describe(self) -> Dict[str, object]:
        """Per-worker supervision state for STATS' ``workers`` section."""
        return {
            str(handle.index): handle.describe() for handle in self.workers
        }

    # -- booting -------------------------------------------------------------

    def _boot(self, handle: WorkerHandle) -> None:
        handle.state = "starting"
        if self.static:
            handle.address = self._endpoints[handle.index]
        else:
            self._spawn(handle)
        self._handshake(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        command = [
            sys.executable, "-m", "repro.server",
            "--host", "127.0.0.1", "--port", "0",
        ]
        if self.data_dir is not None:
            worker_dir = os.path.join(
                self.data_dir, f"worker-{handle.index}"
            )
            os.makedirs(worker_dir, exist_ok=True)
            command += ["--data-dir", worker_dir]
        # "{index}" in an arg becomes the worker's index, so callers can
        # hand each worker a distinct value (e.g. --process-name worker-N)
        command += [
            arg.replace("{index}", str(handle.index))
            for arg in self.worker_args
        ]
        proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        handle.proc = proc
        handle.address = None
        ready = threading.Event()
        found: List[PyTuple[str, int]] = []

        def _read_output() -> None:
            # keep draining for the child's lifetime: a full pipe buffer
            # would wedge the worker's own prints
            for line in proc.stdout:  # pragma: no branch
                if not ready.is_set():
                    match = _LISTENING.search(line)
                    if match:
                        found.append((match.group(1), int(match.group(2))))
                        ready.set()
            ready.set()  # EOF before the line: boot failed

        reader = threading.Thread(
            target=_read_output,
            name=f"shard-worker-{handle.index}-stdout",
            daemon=True,
        )
        reader.start()
        handle._reader = reader
        if not ready.wait(self.start_timeout) or not found:
            proc.kill()
            raise ProtocolError(
                f"worker {handle.index} did not report a listening address "
                f"within {self.start_timeout}s"
            )
        handle.address = found[0]

    def _handshake(self, handle: WorkerHandle) -> None:
        """Brand the freshly-booted server with its shard index."""
        deadline = time.monotonic() + self.start_timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                sock = _dial(handle.address, self.io_timeout)
                try:
                    response, _ = _roundtrip(
                        sock,
                        {
                            "op": "WORKER_HELLO",
                            "worker": handle.index,
                            "router": self.router_name,
                        },
                    )
                finally:
                    sock.close()
                handle.pid = int(response.get("pid", 0)) or None
                handle.generation += 1
                handle.state = "up"
                handle.last_seen = time.monotonic()
                handle._backoff = 0.0
                return
            except (FrameTimeout, ProtocolError, OSError) as exc:
                last = exc
                time.sleep(0.05)
        handle.state = "down"
        raise ProtocolError(
            f"worker {handle.index} at {handle.address} never completed "
            f"WORKER_HELLO: {last}"
        )

    # -- supervision ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat):
            for handle in self.workers:
                if self._stop.is_set():
                    return
                try:
                    self._supervise(handle)
                except Exception:  # pragma: no cover - supervisor last line
                    # a supervision hiccup must never kill the monitor; the
                    # next tick retries
                    pass

    def _supervise(self, handle: WorkerHandle) -> None:
        now = time.monotonic()
        if not self.static and handle.proc is not None:
            if handle.proc.poll() is not None and handle.state != "down":
                # the process is a corpse: flip to down and arm the restart
                handle.state = "down"
                handle._backoff = (
                    min(self.backoff_cap, handle._backoff * 2)
                    if handle._backoff
                    else self.backoff
                )
                handle.next_restart_at = now + handle._backoff
                return
        if handle.state == "down":
            if self.static:
                # nothing to respawn: just keep probing until it answers
                if self._probe(handle, self.io_timeout) is not None:
                    handle.generation += 1
                    handle.state = "up"
                return
            if now >= handle.next_restart_at:
                handle.restarts += 1
                try:
                    self._boot(handle)
                except ProtocolError:
                    # boot failed outright: back off harder and try again
                    handle.state = "down"
                    handle._backoff = min(
                        self.backoff_cap, max(handle._backoff * 2, self.backoff)
                    )
                    handle.next_restart_at = time.monotonic() + handle._backoff
            return
        if handle.state == "up":
            self._probe(handle, self.io_timeout)

    def _probe(
        self, handle: WorkerHandle, timeout: float
    ) -> Optional[Dict[str, object]]:
        """One STATS ping; caches the snapshot, flips state on the result."""
        if handle.address is None:
            return None
        try:
            sock = _dial(handle.address, timeout)
            try:
                response, _ = _roundtrip(sock, {"op": "STATS"})
            finally:
                sock.close()
        except (FrameTimeout, ProtocolError, OSError):
            if handle.state == "up":
                handle.state = "down"
                handle._backoff = self.backoff
                handle.next_restart_at = time.monotonic() + handle._backoff
            return None
        stats = response.get("stats")
        handle.last_stats = stats if isinstance(stats, dict) else None
        handle.last_seen = time.monotonic()
        return handle.last_stats

    def __repr__(self) -> str:
        states = ",".join(h.state for h in self.workers)
        return f"<WorkerPool count={self.count} [{states}]>"
