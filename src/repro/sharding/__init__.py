"""Horizontal scale for the CORAL server: a consistent-hash router in
front of N supervised worker processes (docs/SHARDING.md).

::

    from repro.sharding import ShardRouter, WorkerPool

    pool = WorkerPool(4, data_dir="/var/coral").start()
    router = ShardRouter(pool, port=4242, shard_map="shards.map").start()
    # any RemoteSession / shell / script now talks to router.address,
    # speaking the ordinary wire protocol

Or from the CLI: ``python -m repro.server --port 4242 --workers 4``.
"""

from .hashring import DEFAULT_VNODES, HashRing, ShardMap, partition_key, stable_hash
from .pool import WorkerHandle, WorkerPool
from .router import ShardRouter

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "ShardMap",
    "ShardRouter",
    "WorkerHandle",
    "WorkerPool",
    "partition_key",
    "stable_hash",
]
