"""The shard router: one TCP front speaking the unmodified wire protocol,
N workers behind it.

Clients — :class:`~repro.client.RemoteSession`, the shell, scripts — dial
the router exactly as they would a :class:`~repro.server.CoralServer`; the
protocol module, frame layout, and every op are unchanged.  Behind the
socket the router owns no database at all: it parses just enough of each
request to decide *ownership* (which worker holds the module or predicate,
per :class:`~repro.sharding.hashring.ShardMap`) and forwards the request
verbatim, relaying the response.

Cursors keep the get-next-tuple discipline across the extra hop:

* a **proxy cursor** (single-shard query) maps one router-issued cursor id
  to one worker-side cursor; FETCH bodies are relayed as opaque bytes — the
  router never decodes a single-shard batch;
* a **gather cursor** (a query on a partitioned relation) opens one cursor
  per worker and concatenates their streams.  Each client FETCH pulls *at
  most the client's requested batch* from one upstream at a time, so
  backpressure propagates: a client that stops fetching stops work on
  every shard, and a gather batch is never empty unless it is ``done``
  (an empty non-final batch would end the client's iteration early).

Upstream connections are **per client connection**, created lazily: when
the client disconnects — cleanly or by dying — the router closes its
upstream sockets, and each worker's own disconnect handling frees the
cursors (the PR-3 reclamation path, now transitive).

Failure semantics (the docs/SHARDING.md failure matrix):

* worker down before a request → :class:`~repro.errors.WorkerRestartingError`
  (retriable; the supervisor is already restarting it);
* worker dies mid-cursor → :class:`~repro.errors.FailoverError` (the cursor
  state died with the process; re-issue the query);
* placement contradictions → :class:`~repro.errors.ShardRoutingError`;
* REPL_HELLO/PROMOTE at the router → :class:`~repro.errors.ProtocolError`:
  replication composes *per worker* (each worker may be the primary of its
  own replica chain), not at the router.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple as PyTuple, Union

from ..errors import (
    CoralError,
    FailoverError,
    ProtocolError,
    ShardRoutingError,
    WorkerRestartingError,
)
from ..faults import FaultInjector, SimulatedCrash
from ..language import parse_program, parse_query
from ..obs import MetricsRegistry, TelemetryServer
from ..obs.disttrace import (
    HeadSampler,
    SpanBuffer,
    TraceCollector,
    TraceContext,
)
from ..storage.serde import decode_batch, encode_batch
from ..terms import to_arg
from .hashring import ShardMap, partition_key
from .pool import WorkerPool, _dial

#: default answers per FETCH when the client does not say (mirrors the
#: worker-side default so a router in front changes no batch shapes)
DEFAULT_BATCH = 64

from ..server.protocol import (  # noqa: E402  (grouped with protocol use)
    PROTOCOL_VERSION,
    FrameTimeout,
    read_frame,
    write_frame,
)

#: ops a draining router still accepts (same contract as CoralServer)
_DRAIN_OPS = ("HELLO", "FETCH", "CLOSE_CURSOR", "STATS", "TRACE", "BYE")


class _UpstreamLost(Exception):
    """Internal: the router↔worker hop failed at the socket layer."""

    def __init__(self, index: int, cause: Exception) -> None:
        super().__init__(f"worker {index}: {cause}")
        self.index = index
        self.cause = cause


class _Upstream:
    """One router→worker connection, owned by one client connection."""

    __slots__ = ("sock", "index", "generation")

    def __init__(self, sock: socket.socket, index: int, generation: int) -> None:
        self.sock = sock
        self.index = index
        self.generation = generation


class _Part:
    """One worker's slice of a gather cursor."""

    __slots__ = ("upstream", "remote_id")

    def __init__(self, upstream: _Upstream, remote_id: int) -> None:
        self.upstream = upstream
        self.remote_id = remote_id


class _ProxyCursor:
    """A router cursor backed by exactly one worker cursor."""

    __slots__ = ("cursor_id", "part")

    def __init__(self, cursor_id: int, part: _Part) -> None:
        self.cursor_id = cursor_id
        self.part = part


class _GatherCursor:
    """A router cursor concatenating one worker cursor per shard."""

    __slots__ = ("cursor_id", "parts", "current")

    def __init__(self, cursor_id: int, parts: List[_Part]) -> None:
        self.cursor_id = cursor_id
        self.parts = parts
        self.current = 0  # index of the part FETCH is draining


class _RouterConn:
    """Per-client-connection state: upstream links and open cursors."""

    __slots__ = ("conn_id", "peer", "peer_host", "greeted", "links",
                 "cursors", "sock")

    def __init__(self, conn_id: int, peer: str, sock=None) -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.peer_host = peer.rsplit(":", 1)[0] if ":" in peer else peer
        self.greeted = False
        self.sock = sock
        self.links: Dict[int, _Upstream] = {}
        self.cursors: Dict[int, Union[_ProxyCursor, _GatherCursor]] = {}


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - thin shim
        self.server.router._handle_connection(self.request)


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    router: "ShardRouter"

    def handle_error(self, request, client_address) -> None:
        self.router._m_errors.inc(1, "unhandled")


class ShardRouter:
    """The multi-process front: route, scatter, gather, aggregate.

    ::

        pool = WorkerPool(4, data_dir="/var/coral").start()
        router = ShardRouter(pool, port=4242, shard_map="shards.map")
        router.start()
        ... RemoteSession against router.address, unchanged ...
        router.shutdown(); pool.stop()

    The pool's lifecycle belongs to the caller (tests hand in a static
    pool over in-process servers); the router only *uses* it.
    """

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shard_map: Union[None, str, Dict[str, object], ShardMap] = None,
        batch_size: int = DEFAULT_BATCH,
        faults: Optional[FaultInjector] = None,
        telemetry_port: Optional[int] = None,
        telemetry_host: str = "127.0.0.1",
        rate_window: float = 30.0,
        io_timeout: Optional[float] = 30.0,
        idle_timeout: Optional[float] = 300.0,
        upstream_timeout: float = 30.0,
        trace_sample: float = 0.0,
        span_dir: Optional[str] = None,
        process_name: Optional[str] = None,
        span_limit: int = 20_000,
    ) -> None:
        self.pool = pool
        self.shard_map = ShardMap.load(shard_map, pool.count)
        self.batch_size = batch_size
        self.faults = faults if faults is not None else FaultInjector()
        self.io_timeout = io_timeout
        self.idle_timeout = idle_timeout
        self.upstream_timeout = upstream_timeout
        self.metrics = MetricsRegistry()
        # -- distributed tracing (repro.obs.disttrace): the router parses
        # the optional wire ``trace`` field, records its own request and
        # per-worker forwarding-leg spans, and stamps a child context on
        # every upstream hop so worker spans nest under the fan-out legs
        self.trace_sampler = HeadSampler(trace_sample)
        self.span_dir = span_dir
        self.process_name = process_name or f"router-{os.getpid()}"
        self.spans = SpanBuffer(
            self.process_name,
            limit=span_limit,
            path=(
                os.path.join(span_dir, f"{self.process_name}.jsonl")
                if span_dir
                else None
            ),
            on_drop=lambda: self._m_trace_dropped.inc(1, "spans"),
        )
        self._trace_local = threading.local()
        #: predicate/module → worker placements learned from consults; a
        #: name, once placed, stays put (first-wins) so later programs and
        #: queries find their data
        self._learned: Dict[str, int] = {}
        self._learned_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._connections: Dict[int, _RouterConn] = {}
        self._next_conn = 0
        self._next_cursor = 0
        self._requests_total = 0
        self._connections_total = 0
        self._cursors_opened = 0
        self._cursors_closed = 0
        self._draining = False
        self._serving = False
        self.rate_window = rate_window
        self._recent: deque = deque(maxlen=8192)
        self._started_at = time.perf_counter()
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.router = self
        self._thread: Optional[threading.Thread] = None

        m = self.metrics
        self._m_conns = m.counter("router.connections.total", "connections accepted")
        self._m_active = m.gauge("router.connections.active", "open connections")
        self._m_requests = m.counter("router.requests", "requests by op", ("op",))
        self._m_errors = m.counter("router.errors", "request failures by kind", ("kind",))
        self._m_latency = m.histogram(
            "router.request.seconds", "request service time", ("op",)
        )
        self._m_upstream = m.counter(
            "router.upstream.requests", "requests forwarded per worker",
            ("worker",),
        )
        self._m_scatter = m.counter(
            "router.scatter.queries", "queries fanned out to every shard"
        )
        self._m_cursors_opened = m.counter("router.cursors.opened", "cursors opened")
        self._m_cursors_closed = m.counter("router.cursors.closed", "cursors closed")
        self._m_cursors_open = m.gauge("router.cursors.open", "cursors currently open")
        self._m_workers_up = m.gauge("router.workers.up", "workers currently up")
        self._m_restarts = m.counter(
            "router.worker.restarts", "worker restarts observed", ("worker",)
        )
        self._m_trace_dropped = m.counter(
            "obs.trace.dropped",
            "trace events/spans dropped at bounded-buffer caps",
            ("buffer",),
        )
        self._restart_seen: Dict[int, int] = {}

        self.telemetry: Optional[TelemetryServer] = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(
                port=telemetry_port,
                host=telemetry_host,
                registries=[self.metrics],
                health=self._health,
                snapshots=self._worker_snapshots,
                trace_lookup=self._trace_lookup,
            )

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> PyTuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return host, port

    @property
    def telemetry_address(self) -> Optional[PyTuple[str, int]]:
        return self.telemetry.address if self.telemetry is not None else None

    def start(self) -> "ShardRouter":
        if self._thread is not None:
            raise ProtocolError("router already started")
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="shard-router",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        self._tcp.serve_forever(poll_interval=0.05)

    def drain(self, timeout: float = 5.0) -> bool:
        self._draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.open_cursors() == 0:
                return True
            time.sleep(0.02)
        return self.open_cursors() == 0

    def shutdown(self) -> None:
        if self.telemetry is not None:
            self.telemetry.shutdown()
        if self._serving:
            self._tcp.shutdown()
            self._serving = False
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._state_lock:
            leftovers = list(self._connections.values())
            self._connections.clear()
        for conn in leftovers:
            if conn.sock is not None:
                try:
                    conn.sock.close()
                except OSError:
                    pass
            self._sever_upstreams(conn)
        self.spans.close()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def open_cursors(self) -> int:
        with self._state_lock:
            return sum(len(c.cursors) for c in self._connections.values())

    def _health(self) -> PyTuple[bool, str]:
        if self._draining:
            return False, "draining"
        if not self._serving:
            return False, "not serving"
        up = sum(1 for h in self.pool.workers if h.state == "up")
        self._m_workers_up.set(up)
        if up == 0:
            return False, f"degraded: 0 of {self.pool.count} workers up"
        if up < self.pool.count:
            return True, f"serving (router, {up}/{self.pool.count} workers up)"
        return True, f"serving (router, {up} workers)"

    def _worker_snapshots(self):
        """Cached per-worker metric registries for /metrics, each labelled
        ``worker="N"`` — the pool's monitor refreshes them every heartbeat,
        so a scrape never blocks on a dead worker."""
        out = []
        for handle in self.pool.workers:
            stats = handle.last_stats
            if isinstance(stats, dict) and isinstance(
                stats.get("metrics"), dict
            ):
                out.append(({"worker": str(handle.index)}, stats["metrics"]))
        return out

    # -- distributed tracing -------------------------------------------------

    def _request_trace(self, header) -> Optional[TraceContext]:
        """The trace context this request runs under: a child of the wire
        context when the client sent one, a fresh sampled root when the
        router's own sampler says yes, else None (untraced)."""
        parent = TraceContext.from_wire(header.get("trace"))
        if parent is not None:
            return parent.child()
        if self.trace_sampler.decide():
            return TraceContext.mint(sampled=True)
        return None

    def _trace_lookup(self, trace_id: str) -> Optional[Dict[str, object]]:
        """Assemble one trace for ``/debug/trace/<id>`` from the shared
        span directory (which the workers drain into when launched by
        ``repro.server --workers``) plus the router's own buffer."""
        collector = TraceCollector()
        if self.span_dir is not None and os.path.isdir(self.span_dir):
            try:
                collector.load_dir(self.span_dir)
            except OSError:
                pass
        collector.add_spans(self.spans.snapshot())
        if trace_id not in collector.trace_ids():
            return None
        return collector.assemble(trace_id)

    def _op_trace(self, conn: _RouterConn, header) -> Dict[str, object]:
        """Cluster-wide span gather for one trace id: every reachable
        worker's TRACE answer, the shared span directory, and the router's
        own spans, deduplicated by span id.  Unreachable workers are
        skipped — a partial trace is the contract, not an error."""
        trace_id = str(header.get("id", ""))
        merged: Dict[str, Dict[str, object]] = {}

        def add(spans) -> None:
            for span in spans:
                if isinstance(span, dict) and isinstance(span.get("id"), str):
                    merged.setdefault(span["id"], span)

        add(self.spans.spans_for(trace_id))
        for index in range(self.pool.count):
            try:
                upstream = self._upstream(conn, index)
                response, _ = self._forward(
                    upstream, {"op": "TRACE", "id": trace_id}
                )
            except _UpstreamLost as exc:
                lost = conn.links.get(exc.index)
                if lost is not None:
                    self._drop_upstream(conn, lost)
                continue
            except (WorkerRestartingError, CoralError):
                continue
            if response.get("ok"):
                add(response.get("spans", []))
        if self.span_dir is not None and os.path.isdir(self.span_dir):
            collector = TraceCollector()
            try:
                collector.load_dir(self.span_dir)
            except OSError:
                pass
            add(collector.spans(trace_id))
        return {
            "ok": True,
            "id": trace_id,
            "process": self.process_name,
            "spans": list(merged.values()),
        }

    # -- connection loop (mirrors CoralServer) -------------------------------

    def _handle_connection(self, sock) -> None:
        if self._draining:
            return
        try:
            self.faults.check("net.accept")
        except OSError:
            self._m_errors.inc(1, "accept")
            return
        wait = self.io_timeout if self.io_timeout is not None else self.idle_timeout
        if wait is not None:
            sock.settimeout(wait)
        conn = self._register(sock)
        try:
            idle_deadline = (
                time.monotonic() + self.idle_timeout
                if self.idle_timeout is not None
                else None
            )
            while True:
                try:
                    self.faults.check("net.read")
                    frame = read_frame(sock)
                except FrameTimeout:
                    if (
                        idle_deadline is not None
                        and time.monotonic() >= idle_deadline
                    ):
                        self._m_errors.inc(1, "idle_reaped")
                        return
                    continue
                except (ProtocolError, OSError):
                    self._m_errors.inc(1, "read")
                    return
                if frame is None:
                    return  # clean EOF
                if self.idle_timeout is not None:
                    idle_deadline = time.monotonic() + self.idle_timeout
                header, body = frame
                if not self._serve_request(conn, sock, header, body):
                    return
        finally:
            self._unregister(conn)

    def _serve_request(self, conn, sock, header, body) -> bool:
        op = str(header.get("op", ""))
        started = time.perf_counter()
        trace_ctx = self._request_trace(header)
        self._trace_local.ctx = trace_ctx
        wall = SpanBuffer.now() if trace_ctx is not None else 0.0
        keep_going = True
        try:
            response, rbody, keep_going = self._dispatch(conn, op, header, body)
        except SimulatedCrash:
            raise
        except CoralError as exc:
            self._m_errors.inc(1, type(exc).__name__)
            response = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
            rbody = b""
        except (ValueError, TypeError) as exc:
            self._m_errors.inc(1, "ProtocolError")
            response = {
                "ok": False,
                "error": "ProtocolError",
                "message": f"malformed {op or '?'} field: {exc}",
            }
            rbody = b""
        self._m_requests.inc(1, op or "?")
        self._m_latency.observe(time.perf_counter() - started, op or "?")
        if trace_ctx is not None and trace_ctx.sampled:
            self.spans.record(
                trace_ctx,
                f"request.{op or '?'}",
                wall,
                SpanBuffer.now(),
                conn=conn.conn_id,
                ok=bool(response.get("ok")),
            )
        self._trace_local.ctx = None
        answers = response.get("count", 0) if op == "FETCH" else 0
        self._recent.append((time.perf_counter(), answers))
        try:
            self.faults.check("net.write")
            write_frame(sock, response, rbody)
        except (ProtocolError, OSError):
            self._m_errors.inc(1, "write")
            return False
        return keep_going

    def _register(self, sock) -> _RouterConn:
        try:
            peer = "%s:%s" % sock.getpeername()[:2]
        except OSError:
            peer = "?"
        with self._state_lock:
            self._next_conn += 1
            conn = _RouterConn(self._next_conn, peer, sock)
            self._connections[conn.conn_id] = conn
            self._connections_total += 1
        self._m_conns.inc()
        self._m_active.inc()
        return conn

    def _unregister(self, conn: _RouterConn) -> None:
        with self._state_lock:
            self._connections.pop(conn.conn_id, None)
        self._sever_upstreams(conn)
        self._m_active.dec()

    def _sever_upstreams(self, conn: _RouterConn) -> None:
        """Drop every upstream link this client held.  Closing the sockets
        is the reclamation signal: each worker's own disconnect handling
        frees the cursors the router had opened there — abandoning a
        scatter-gather frees state on *every* shard."""
        closed = len(conn.cursors)
        conn.cursors.clear()
        for upstream in conn.links.values():
            try:
                upstream.sock.close()
            except OSError:
                pass
        conn.links.clear()
        if closed:
            with self._state_lock:
                self._cursors_closed += closed
            self._m_cursors_closed.inc(closed)
            self._m_cursors_open.dec(closed)

    # -- upstream links ------------------------------------------------------

    def _upstream(self, conn: _RouterConn, index: int) -> _Upstream:
        """The client connection's link to worker ``index``, dialing (or
        re-dialing after a restart) as needed."""
        generation = self.pool.generation_of(index)
        upstream = conn.links.get(index)
        if upstream is not None:
            if upstream.generation == generation:
                return upstream
            # the worker restarted since this link was dialed: the socket
            # is dead (or soon will be) and its cursors are gone
            try:
                upstream.sock.close()
            except OSError:
                pass
            del conn.links[index]
        address = self.pool.address_of(index)  # raises WorkerRestartingError
        try:
            sock = _dial(address, self.upstream_timeout)
        except (FrameTimeout, ProtocolError, OSError) as exc:
            raise WorkerRestartingError(
                f"worker {index} at {address[0]}:{address[1]} is not "
                f"answering ({exc}); retry shortly"
            ) from exc
        upstream = _Upstream(sock, index, generation)
        conn.links[index] = upstream
        return upstream

    def _forward(
        self, upstream: _Upstream, header, body: bytes = b""
    ) -> PyTuple[Dict[str, object], bytes]:
        """One round trip to a worker; socket failures raise
        :class:`_UpstreamLost` (never a client-visible error directly —
        the caller decides between retriable and cursor-fatal).

        When the request being served is traced, every forwarding leg gets
        its own child context stamped on the upstream header and its own
        span — a scatter-gather fan-out shows up as one leg per worker,
        with the worker's spans nested under its leg."""
        self._m_upstream.inc(1, str(upstream.index))
        ctx = getattr(self._trace_local, "ctx", None)
        leg: Optional[TraceContext] = None
        started = 0.0
        if ctx is not None and ctx.sampled:
            leg = ctx.child()
            header = dict(header)
            header["trace"] = leg.to_wire()
            started = SpanBuffer.now()
        try:
            write_frame(upstream.sock, header, body)
            frame = read_frame(upstream.sock)
        except FrameTimeout as exc:
            self._record_leg(leg, header, started, upstream, lost=True)
            raise _UpstreamLost(upstream.index, exc) from exc
        except (ProtocolError, OSError) as exc:
            self._record_leg(leg, header, started, upstream, lost=True)
            raise _UpstreamLost(upstream.index, exc) from exc
        if frame is None:
            self._record_leg(leg, header, started, upstream, lost=True)
            raise _UpstreamLost(
                upstream.index,
                ProtocolError("worker closed the connection"),
            )
        self._record_leg(leg, header, started, upstream, lost=False)
        return frame

    def _record_leg(
        self,
        leg: Optional[TraceContext],
        header,
        started: float,
        upstream: _Upstream,
        lost: bool,
    ) -> None:
        if leg is None:
            return
        extra: Dict[str, object] = {"worker": upstream.index}
        if lost:
            extra["lost"] = True
        self.spans.record(
            leg,
            f"router.forward.{header.get('op', '?')}",
            started,
            SpanBuffer.now(),
            **extra,
        )

    def _drop_upstream(self, conn: _RouterConn, upstream: _Upstream) -> None:
        try:
            upstream.sock.close()
        except OSError:
            pass
        if conn.links.get(upstream.index) is upstream:
            del conn.links[upstream.index]

    # -- routing -------------------------------------------------------------

    def _route_name(self, name: str) -> Optional[int]:
        """The worker owning ``name``; None means partitioned (scatter)."""
        if self.shard_map.is_partitioned(name):
            return None
        with self._learned_lock:
            learned = self._learned.get(name)
        if learned is not None:
            return learned
        return self.shard_map.owner(name)

    def _learn(self, names, index: int) -> None:
        """Pin ``names`` to ``index`` (first placement wins)."""
        with self._learned_lock:
            for name in names:
                self._learned.setdefault(name, index)

    def learned_pins(self) -> Dict[str, int]:
        with self._learned_lock:
            return dict(self._learned)

    # -- request dispatch ----------------------------------------------------

    def _dispatch(
        self, conn: _RouterConn, op: str, header, body
    ) -> PyTuple[Dict[str, object], bytes, bool]:
        with self._state_lock:
            self._requests_total += 1
        if not conn.greeted:
            if op != "HELLO":
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": f"first request must be HELLO, got {op!r}",
                    },
                    b"",
                    False,
                )
            version = header.get("version")
            if version != PROTOCOL_VERSION:
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": (
                            f"protocol version mismatch: client speaks "
                            f"{version!r}, server speaks {PROTOCOL_VERSION}"
                        ),
                    },
                    b"",
                    False,
                )
            conn.greeted = True
            return (
                {
                    "ok": True,
                    "server": "repro.router/1",
                    "version": PROTOCOL_VERSION,
                    "workers": self.pool.count,
                },
                b"",
                True,
            )
        if op == "BYE":
            self._sever_upstreams(conn)
            return {"ok": True, "bye": True}, b"", False
        if self._draining and op not in _DRAIN_OPS:
            raise ProtocolError(
                f"server is draining for shutdown; {op} refused"
            )
        if op == "QUERY":
            return self._op_query(conn, header), b"", True
        if op == "FETCH":
            return self._op_fetch(conn, header) + (True,)
        if op == "CLOSE_CURSOR":
            cursor_id = int(header.get("cursor", -1))
            closed = self._close_cursor(conn, cursor_id)
            return {"ok": True, "closed": closed}, b"", True
        if op == "CONSULT":
            return self._op_consult(conn, header), b"", True
        if op in ("INSERT", "DELETE"):
            return self._op_update(conn, op, header), b"", True
        if op == "STATS":
            return {"ok": True, "stats": self.stats()}, b"", True
        if op == "TRACE":
            return self._op_trace(conn, header), b"", True
        if op in ("REPL_HELLO", "PROMOTE", "WORKER_HELLO"):
            raise ProtocolError(
                f"{op} is not served by a shard router: replication and "
                f"worker supervision compose per worker — address the "
                f"worker directly (see docs/SHARDING.md)"
            )
        raise ProtocolError(f"unknown request op {op!r}")

    # -- cursors -------------------------------------------------------------

    def _mint_cursor(self, conn: _RouterConn, cursor) -> int:
        with self._state_lock:
            self._next_cursor += 1
            self._cursors_opened += 1
            cursor_id = self._next_cursor
        cursor.cursor_id = cursor_id
        conn.cursors[cursor_id] = cursor
        self._m_cursors_opened.inc()
        self._m_cursors_open.inc()
        return cursor_id

    def _retire_cursor(self, conn: _RouterConn, cursor_id: int) -> bool:
        if conn.cursors.pop(cursor_id, None) is None:
            return False
        with self._state_lock:
            self._cursors_closed += 1
        self._m_cursors_closed.inc()
        self._m_cursors_open.dec()
        return True

    def _close_cursor(self, conn: _RouterConn, cursor_id: int) -> bool:
        cursor = conn.cursors.get(cursor_id)
        if cursor is None:
            return False
        parts = (
            [cursor.part]
            if isinstance(cursor, _ProxyCursor)
            else cursor.parts[cursor.current :]
        )
        for part in parts:
            try:
                self._forward(
                    part.upstream,
                    {"op": "CLOSE_CURSOR", "cursor": part.remote_id},
                )
            except _UpstreamLost:
                # the worker died; its cursors died with it — done either way
                self._drop_upstream(conn, part.upstream)
        self._retire_cursor(conn, cursor_id)
        return True

    def _open_remote_cursor(
        self, conn: _RouterConn, index: int, text: str
    ) -> PyTuple[_Part, Dict[str, object]]:
        upstream = self._upstream(conn, index)
        try:
            response, _ = self._forward(
                upstream, {"op": "QUERY", "query": text}
            )
        except _UpstreamLost as exc:
            self._drop_upstream(conn, upstream)
            raise WorkerRestartingError(
                f"worker {index} died while opening a cursor "
                f"({exc.cause}); retry shortly"
            ) from exc.cause
        if not response.get("ok"):
            raise _remote_error(response)
        return _Part(upstream, int(response["cursor"])), response

    def _op_query(self, conn: _RouterConn, header) -> Dict[str, object]:
        text = str(header.get("query", ""))
        literal = parse_query(text).literal
        return self._route_query(conn, literal.pred, text)

    def _route_query(
        self, conn: _RouterConn, pred: str, text: str
    ) -> Dict[str, object]:
        owner = self._route_name(pred)
        if owner is not None:
            part, response = self._open_remote_cursor(conn, owner, text)
            cursor_id = self._mint_cursor(conn, _ProxyCursor(0, part))
            return {
                "ok": True,
                "cursor": cursor_id,
                "vars": response.get("vars", []),
                "arity": response.get("arity", 0),
            }
        # partitioned: one cursor per shard, concatenated
        self._m_scatter.inc()
        parts: List[_Part] = []
        meta: Optional[Dict[str, object]] = None
        try:
            for index in range(self.pool.count):
                part, response = self._open_remote_cursor(conn, index, text)
                parts.append(part)
                if meta is None:
                    meta = response
        except (CoralError, _UpstreamLost):
            # a partial scatter must not leak cursors on the shards that
            # did answer
            for part in parts:
                try:
                    self._forward(
                        part.upstream,
                        {"op": "CLOSE_CURSOR", "cursor": part.remote_id},
                    )
                except _UpstreamLost:
                    self._drop_upstream(conn, part.upstream)
            raise
        cursor_id = self._mint_cursor(conn, _GatherCursor(0, parts))
        return {
            "ok": True,
            "cursor": cursor_id,
            "vars": meta.get("vars", []) if meta else [],
            "arity": meta.get("arity", 0) if meta else 0,
        }

    def _op_fetch(
        self, conn: _RouterConn, header
    ) -> PyTuple[Dict[str, object], bytes]:
        cursor_id = int(header.get("cursor", -1))
        cursor = conn.cursors.get(cursor_id)
        if cursor is None:
            raise ProtocolError(f"unknown cursor {cursor_id}")
        limit = int(header.get("max", self.batch_size))
        if limit < 1:
            raise ProtocolError(f"FETCH max must be >= 1, got {limit}")
        if isinstance(cursor, _ProxyCursor):
            return self._fetch_proxy(conn, cursor, limit)
        return self._fetch_gather(conn, cursor, limit)

    def _fetch_proxy(
        self, conn: _RouterConn, cursor: _ProxyCursor, limit: int
    ) -> PyTuple[Dict[str, object], bytes]:
        part = cursor.part
        try:
            response, body = self._forward(
                part.upstream,
                {"op": "FETCH", "cursor": part.remote_id, "max": limit},
            )
        except _UpstreamLost as exc:
            self._drop_upstream(conn, part.upstream)
            self._retire_cursor(conn, cursor.cursor_id)
            raise FailoverError(
                f"cursor {cursor.cursor_id} was lost: worker "
                f"{part.upstream.index} died mid-stream ({exc.cause}) — "
                f"reissue the query"
            ) from exc.cause
        if not response.get("ok"):
            self._retire_cursor(conn, cursor.cursor_id)
            raise _remote_error(response)
        if response.get("done"):
            self._retire_cursor(conn, cursor.cursor_id)
        # the batch bytes are relayed untouched; only the cursor id is ours
        return (
            {
                "ok": True,
                "cursor": cursor.cursor_id,
                "count": response.get("count", 0),
                "done": bool(response.get("done")),
            },
            body,
        )

    def _fetch_gather(
        self, conn: _RouterConn, cursor: _GatherCursor, limit: int
    ) -> PyTuple[Dict[str, object], bytes]:
        """Fill one client batch from the concatenated shard streams.

        Per-upstream backpressure: each worker is asked for at most the
        *remaining* client budget, so no shard ever runs ahead of what the
        client consumes.  The loop only exits with rows, or with every
        part drained — a gather batch is never empty-but-not-done (the
        client would mistake it for end-of-stream).
        """
        rows: List[list] = []
        while len(rows) < limit and cursor.current < len(cursor.parts):
            part = cursor.parts[cursor.current]
            need = limit - len(rows)
            try:
                response, body = self._forward(
                    part.upstream,
                    {"op": "FETCH", "cursor": part.remote_id, "max": need},
                )
            except _UpstreamLost as exc:
                self._drop_upstream(conn, part.upstream)
                self._abandon_gather(conn, cursor)
                raise FailoverError(
                    f"cursor {cursor.cursor_id} was lost: worker "
                    f"{part.upstream.index} died mid-scatter-gather "
                    f"({exc.cause}) — reissue the query"
                ) from exc.cause
            if not response.get("ok"):
                self._abandon_gather(conn, cursor)
                raise _remote_error(response)
            batch = decode_batch(body)
            rows.extend(batch)
            if response.get("done"):
                cursor.current += 1
            elif not batch:
                # a worker must not answer empty-and-not-done; treat it as
                # a wedged stream rather than spinning here forever
                self._abandon_gather(conn, cursor)
                raise ProtocolError(
                    f"worker {part.upstream.index} answered an empty "
                    f"non-final batch for cursor {part.remote_id}"
                )
        done = cursor.current >= len(cursor.parts)
        if done:
            self._retire_cursor(conn, cursor.cursor_id)
        return (
            {
                "ok": True,
                "cursor": cursor.cursor_id,
                "count": len(rows),
                "done": done,
            },
            encode_batch(rows),
        )

    def _abandon_gather(
        self, conn: _RouterConn, cursor: _GatherCursor
    ) -> None:
        """Free a gather cursor's surviving shard cursors after a failure."""
        for part in cursor.parts[cursor.current :]:
            if conn.links.get(part.upstream.index) is not part.upstream:
                continue  # that upstream is already gone
            try:
                self._forward(
                    part.upstream,
                    {"op": "CLOSE_CURSOR", "cursor": part.remote_id},
                )
            except _UpstreamLost:
                self._drop_upstream(conn, part.upstream)
        self._retire_cursor(conn, cursor.cursor_id)

    # -- consults and updates ------------------------------------------------

    def _op_consult(self, conn: _RouterConn, header) -> Dict[str, object]:
        source = str(header.get("source", ""))
        program = parse_program(source)
        if any(c.name == "consult" for c in program.commands):
            raise ProtocolError("remote consult may not read server-side files")
        partitioned_facts = [
            fact
            for fact in program.facts
            if self.shard_map.is_partitioned(fact.head.pred)
        ]
        plain_facts = [
            fact
            for fact in program.facts
            if not self.shard_map.is_partitioned(fact.head.pred)
        ]
        for module in program.modules:
            bad = [
                pred
                for pred, _arity in module.defined_predicates()
                if self.shard_map.is_partitioned(pred)
            ]
            if bad:
                raise ShardRoutingError(
                    f"module {module.name!r} defines partitioned "
                    f"predicate(s) {bad}: a partitioned relation is base "
                    f"facts only, spread across every worker — rules for "
                    f"it would need to see all shards at once"
                )
            referenced = sorted(
                {
                    literal.pred
                    for rule in module.rules
                    for literal in rule.body
                    if self.shard_map.is_partitioned(literal.pred)
                }
            )
            if referenced:
                # the module would land on ONE worker and silently see one
                # shard's slice of the relation: partial answers, no error
                # — refuse loudly instead
                raise ShardRoutingError(
                    f"module {module.name!r} reads partitioned relation(s) "
                    f"{referenced}: a module evaluates on a single worker "
                    f"and would only see that shard's facts — pin the "
                    f"relation to a worker instead of partitioning it"
                )
        if partitioned_facts:
            if program.modules or plain_facts or program.queries or (
                program.index_annotations
            ):
                raise ShardRoutingError(
                    "a consult carrying facts for a partitioned relation "
                    "must carry only such facts (they are split across "
                    "every worker; modules, other facts, and queries "
                    "cannot ride along) — consult them separately"
                )
            return self._consult_partitioned(conn, partitioned_facts)
        if not program.modules and not plain_facts and (
            not program.index_annotations
        ):
            # pure query batch: route each query on its own predicate
            opened = []
            for query in program.queries:
                literal = query.literal
                response = self._route_query(conn, literal.pred, str(literal))
                opened.append(
                    {
                        "cursor": response["cursor"],
                        "vars": response["vars"],
                        "arity": response["arity"],
                    }
                )
            return {"ok": True, "cursors": opened}
        return self._consult_single_owner(conn, source, program)

    def _consult_partitioned(
        self, conn: _RouterConn, facts
    ) -> Dict[str, object]:
        """Split a batch of partitioned facts by tuple hash and forward
        each worker its slice — the bulk-load path for spread relations."""
        slices: Dict[int, List[str]] = {}
        for fact in facts:
            head = fact.head
            index = self.shard_map.tuple_owner(
                head.pred, partition_key(head.args)
            )
            slices.setdefault(index, []).append(str(fact))
        for index, lines in sorted(slices.items()):
            upstream = self._upstream(conn, index)
            try:
                response, _ = self._forward(
                    upstream, {"op": "CONSULT", "source": "\n".join(lines)}
                )
            except _UpstreamLost as exc:
                self._drop_upstream(conn, upstream)
                raise WorkerRestartingError(
                    f"worker {index} died mid-consult ({exc.cause}); the "
                    f"batch was partially loaded — retry the consult "
                    f"(facts are idempotent)"
                ) from exc.cause
            if not response.get("ok"):
                raise _remote_error(response)
        return {"ok": True, "cursors": []}

    def _consult_single_owner(
        self, conn: _RouterConn, source: str, program
    ) -> Dict[str, object]:
        """Place a whole program text on one worker, verbatim.

        Module text must not be re-rendered (``ModuleDecl.__str__`` drops
        aggregate selections, index annotations, and flags), so anything
        that is not a pure query batch or a partitioned-fact batch travels
        untouched — which also means it must land on exactly one worker.
        The owner is forced by any name in the program that already has a
        placement; contradictions are a :class:`ShardRoutingError`.
        """
        names: List[str] = []
        for module in program.modules:
            names.append(module.name)
            names.extend(pred for pred, _arity in module.defined_predicates())
            names.extend(export.pred for export in module.exports)
        for fact in program.facts:
            names.append(fact.head.pred)
        required: Dict[int, List[str]] = {}
        with self._learned_lock:
            for name in names:
                placed = self._learned.get(name)
                if placed is None:
                    placed = self.shard_map.pins.get(name)
                if placed is not None:
                    required.setdefault(placed, []).append(name)
        if len(required) > 1:
            detail = "; ".join(
                f"worker {index} holds {sorted(set(held))}"
                for index, held in sorted(required.items())
            )
            raise ShardRoutingError(
                f"this program straddles shards ({detail}): its names are "
                f"already placed on different workers — split the program "
                f"or adjust the shard map"
            )
        if required:
            owner = next(iter(required))
        else:
            anchor = names[0] if names else "program"
            owner = self.shard_map.owner(anchor)
        upstream = self._upstream(conn, owner)
        try:
            response, _ = self._forward(
                upstream, {"op": "CONSULT", "source": source}
            )
        except _UpstreamLost as exc:
            self._drop_upstream(conn, upstream)
            raise WorkerRestartingError(
                f"worker {owner} died mid-consult ({exc.cause}); retry "
                f"shortly"
            ) from exc.cause
        if not response.get("ok"):
            raise _remote_error(response)
        # placement is only durable once the worker accepted the program
        self._learn(names, owner)
        opened = []
        for item in response.get("cursors", []):
            part = _Part(upstream, int(item["cursor"]))
            cursor_id = self._mint_cursor(conn, _ProxyCursor(0, part))
            opened.append(
                {
                    "cursor": cursor_id,
                    "vars": item.get("vars", []),
                    "arity": item.get("arity", 0),
                }
            )
        return {"ok": True, "cursors": opened}

    def _op_update(
        self, conn: _RouterConn, op: str, header
    ) -> Dict[str, object]:
        pred = str(header.get("pred", ""))
        values = header.get("values", [])
        if not pred or not isinstance(values, list):
            raise ProtocolError("INSERT/DELETE need a pred and a values list")
        if self.shard_map.is_partitioned(pred):
            key = partition_key(to_arg(value) for value in values)
            index = self.shard_map.tuple_owner(pred, key)
        else:
            index = self._route_name(pred)
        upstream = self._upstream(conn, index)
        try:
            response, _ = self._forward(
                upstream, {"op": op, "pred": pred, "values": values}
            )
        except _UpstreamLost as exc:
            self._drop_upstream(conn, upstream)
            raise WorkerRestartingError(
                f"worker {index} died during {op} ({exc.cause}); the "
                f"write was not acknowledged — retry shortly"
            ) from exc.cause
        if not response.get("ok"):
            raise _remote_error(response)
        if not self.shard_map.is_partitioned(pred):
            self._learn([pred], index)
        return {"ok": True, "changed": bool(response.get("changed"))}

    # -- introspection -------------------------------------------------------

    def _rates(self) -> Dict[str, float]:
        now = time.perf_counter()
        horizon = now - self.rate_window
        recent = [item for item in self._recent if item[0] >= horizon]
        elapsed = max(1e-9, min(self.rate_window, now - self._started_at))
        return {
            "window_seconds": self.rate_window,
            "requests": len(recent),
            "requests_per_second": len(recent) / elapsed,
            "answers_per_second": sum(a for _, a in recent) / elapsed,
        }

    def _latency(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for labels, snap in self._m_latency.collect().items():
            if snap["count"]:
                out[labels[0]] = {
                    "count": snap["count"],
                    "p50": snap["p50"],
                    "p90": snap["p90"],
                    "p99": snap["p99"],
                }
        return out

    def stats(self) -> Dict[str, object]:
        """The router's STATS payload: its own counters plus a ``workers``
        section digesting each worker's supervision state and (when the
        worker is reachable) its own STATS — what ``@top``/``@workers``
        render and the saturation benchmark reads."""
        with self._state_lock:
            connections = {
                "total": self._connections_total,
                "active": len(self._connections),
            }
            cursors = {
                "opened": self._cursors_opened,
                "closed": self._cursors_closed,
                "open": sum(
                    len(c.cursors) for c in self._connections.values()
                ),
            }
            requests_total = self._requests_total
        # a live sweep so @top/@workers see current numbers; a down worker
        # fails fast (connection refused) and keeps its cached snapshot
        self.pool.fetch_stats(timeout=2.0)
        workers: Dict[str, Dict[str, object]] = {}
        up = 0
        for handle in self.pool.workers:
            entry = handle.describe()
            if handle.state == "up":
                up += 1
            seen = self._restart_seen.get(handle.index, 0)
            if handle.restarts > seen:
                self._m_restarts.inc(
                    handle.restarts - seen, str(handle.index)
                )
                self._restart_seen[handle.index] = handle.restarts
            stats = handle.last_stats
            if isinstance(stats, dict):
                entry["requests"] = stats.get("requests")
                entry["rates"] = stats.get("rates")
                entry["cursors"] = stats.get("cursors")
                entry["latency"] = stats.get("latency")
            workers[str(handle.index)] = entry
        self._m_workers_up.set(up)
        sharding = self.shard_map.describe()
        sharding["learned_pins"] = self.learned_pins()
        sharding["workers_up"] = up
        return {
            "connections": connections,
            "cursors": cursors,
            "requests": requests_total,
            "role": "router",
            "rates": self._rates(),
            "latency": self._latency(),
            "sharding": sharding,
            "workers": workers,
            "trace": {
                "process": self.process_name,
                "sample_rate": self.trace_sampler.rate,
                "spans_recorded": self.spans.recorded,
                "spans_dropped": self.spans.dropped,
            },
            "metrics": self.metrics.collect(),
        }


def _remote_error(response: Dict[str, object]) -> CoralError:
    """Re-raise a worker's error response under its original class, so the
    router relays it to the client with the class name intact."""
    from .. import errors as _errors

    name = str(response.get("error", "CoralError"))
    message = str(response.get("message", "remote error"))
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, CoralError)):
        cls = CoralError
    return cls(message)
