"""Consistent-hash placement: which worker owns which predicate or module.

The routing unit is a *name* — a predicate (``edge``) or a module (``tc``)
— mirroring the querytorque lesson (PAPERS.md) that routing decisions
belong at node/predicate granularity, not whole-program.  Placement must be
deterministic across processes and across router restarts (a router reboot
must route ``edge`` to the worker that already holds the edge facts), so
the hash is :mod:`hashlib` blake2b, never Python's salted ``hash()``.

Two layers:

* :class:`HashRing` — classic consistent hashing: each worker contributes
  ``vnodes`` virtual points on a 64-bit ring; a key is owned by the first
  point at or clockwise of its hash.  Changing the worker count moves only
  ``~keys/n`` of the keyspace, which is what makes re-sharding a fleet with
  persistent per-worker data directories survivable.
* :class:`ShardMap` — the operator's override file: explicit pins
  (``name = 2``) for co-locating predicates that must share a worker, and
  partitioned relations (``name = *``) whose *facts* are spread across all
  workers by tuple hash and whose queries scatter-gather (docs/SHARDING.md).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Set, Tuple as PyTuple, Union

from ..errors import ShardRoutingError

#: virtual points per worker; 64 keeps the max/min keyspace imbalance
#: under ~30% for small fleets while the ring stays tiny
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash (Python's ``hash()`` is salted)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of string keys onto ``workers`` integer slots."""

    def __init__(self, workers: int, vnodes: int = DEFAULT_VNODES) -> None:
        if workers < 1:
            raise ShardRoutingError(f"a ring needs >= 1 worker, got {workers}")
        if vnodes < 1:
            raise ShardRoutingError(f"vnodes must be >= 1, got {vnodes}")
        self.workers = workers
        self.vnodes = vnodes
        points: List[PyTuple[int, int]] = []
        for index in range(workers):
            for v in range(vnodes):
                points.append((stable_hash(f"worker-{index}#{v}"), index))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    def owner(self, key: str) -> int:
        """The worker index owning ``key``."""
        position = bisect_left(self._hashes, stable_hash(key))
        if position == len(self._hashes):
            position = 0  # wrap around the ring
        return self._owners[position]

    def spread(self, keys: Iterable[str]) -> Dict[int, int]:
        """Keys per worker — balance diagnostics for tests and @workers."""
        out: Dict[int, int] = {index: 0 for index in range(self.workers)}
        for key in keys:
            out[self.owner(key)] += 1
        return out

    def __repr__(self) -> str:
        return f"<HashRing workers={self.workers} vnodes={self.vnodes}>"


def partition_key(values: Iterable[object]) -> str:
    """The canonical text a partitioned relation's tuple is hashed by.

    Both routes into a worker must agree — an ``INSERT edge(1, 2)`` and the
    consulted fact ``edge(1, 2).`` land on the same shard, so the later
    ``DELETE edge(1, 2)`` finds the fact.  ``values`` are term objects (or
    anything whose ``str`` matches the parsed term's), joined with a
    separator no term rendering contains bare.
    """
    return "\x1f".join(str(value) for value in values)


class ShardMap:
    """Routing policy: explicit pins and partitioned relations over a ring.

    ``pins`` maps a predicate/module name to a fixed worker index;
    ``partitioned`` names base relations whose facts are hash-spread across
    *all* workers by tuple (queries on them scatter-gather).  Everything
    else falls through to the consistent-hash ring.
    """

    def __init__(
        self,
        workers: int,
        pins: Optional[Dict[str, int]] = None,
        partitioned: Optional[Iterable[str]] = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.ring = HashRing(workers, vnodes=vnodes)
        self.workers = workers
        self.pins: Dict[str, int] = dict(pins or {})
        self.partitioned: Set[str] = set(partitioned or ())
        for name, index in self.pins.items():
            if not 0 <= index < workers:
                raise ShardRoutingError(
                    f"shard map pins {name!r} to worker {index}, but the "
                    f"fleet has workers 0..{workers - 1}"
                )
        clash = self.partitioned & set(self.pins)
        if clash:
            raise ShardRoutingError(
                f"shard map both pins and partitions {sorted(clash)}"
            )

    # -- routing -------------------------------------------------------------

    def is_partitioned(self, name: str) -> bool:
        return name in self.partitioned

    def owner(self, name: str) -> int:
        """The single worker owning ``name`` (pin first, ring otherwise).
        Partitioned names have no single owner — callers must check
        :meth:`is_partitioned` first; asking anyway is a routing bug."""
        if name in self.partitioned:
            raise ShardRoutingError(
                f"{name!r} is partitioned across all workers; it has no "
                f"single owner"
            )
        pinned = self.pins.get(name)
        if pinned is not None:
            return pinned
        return self.ring.owner(name)

    def tuple_owner(self, name: str, key: str) -> int:
        """The worker holding one tuple of a partitioned relation."""
        return stable_hash(f"{name}\x1f{key}") % self.workers

    # -- the operator file ---------------------------------------------------

    @classmethod
    def parse(
        cls,
        text: str,
        workers: int,
        vnodes: int = DEFAULT_VNODES,
    ) -> "ShardMap":
        """A shard map from its file form: one ``name = N`` or ``name = *``
        per line, ``#`` comments, blank lines ignored."""
        pins: Dict[str, int] = {}
        partitioned: Set[str] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            name, sep, target = line.partition("=")
            name = name.strip()
            target = target.strip()
            if not sep or not name or not target:
                raise ShardRoutingError(
                    f"shard map line {lineno}: expected 'name = N' or "
                    f"'name = *', got {raw.strip()!r}"
                )
            if name in pins or name in partitioned:
                raise ShardRoutingError(
                    f"shard map line {lineno}: {name!r} mapped twice"
                )
            if target == "*":
                partitioned.add(name)
            else:
                try:
                    pins[name] = int(target)
                except ValueError:
                    raise ShardRoutingError(
                        f"shard map line {lineno}: worker index must be an "
                        f"integer or '*', got {target!r}"
                    ) from None
        return cls(workers, pins=pins, partitioned=partitioned, vnodes=vnodes)

    @classmethod
    def load(
        cls,
        path_or_map: Union[None, str, Dict[str, object], "ShardMap"],
        workers: int,
        vnodes: int = DEFAULT_VNODES,
    ) -> "ShardMap":
        """Coerce whatever the caller has — nothing, a file path, a dict of
        ``{name: index_or_"*"}``, or a prebuilt map — into a ShardMap."""
        if isinstance(path_or_map, ShardMap):
            if path_or_map.workers != workers:
                raise ShardRoutingError(
                    f"shard map was built for {path_or_map.workers} workers, "
                    f"fleet has {workers}"
                )
            return path_or_map
        if path_or_map is None:
            return cls(workers, vnodes=vnodes)
        if isinstance(path_or_map, dict):
            pins = {
                name: int(target)
                for name, target in path_or_map.items()
                if target != "*"
            }
            partitioned = {
                name for name, target in path_or_map.items() if target == "*"
            }
            return cls(
                workers, pins=pins, partitioned=partitioned, vnodes=vnodes
            )
        with open(path_or_map, "r", encoding="utf-8") as handle:
            return cls.parse(handle.read(), workers, vnodes=vnodes)

    def describe(self) -> Dict[str, object]:
        """The STATS/``@workers`` summary of the routing policy."""
        return {
            "workers": self.workers,
            "pins": dict(sorted(self.pins.items())),
            "partitioned": sorted(self.partitioned),
        }

    def __repr__(self) -> str:
        return (
            f"<ShardMap workers={self.workers} pins={len(self.pins)} "
            f"partitioned={len(self.partitioned)}>"
        )
