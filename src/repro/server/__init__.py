"""repro.server — the concurrent client/server query layer.

One shared database behind N TCP connections, speaking a length-prefixed
JSON+binary protocol whose answers stream through server-side cursors —
the paper's get-next-tuple interface (Sections 3, 5.6) on the wire.  See
docs/SERVER.md for the frame layout, the message table, and the cursor
lifecycle; :mod:`repro.client` is the matching client.

Run one from the command line with ``python -m repro.server`` (or the
``coral-server`` console script).
"""

from .core import CoralServer, DEFAULT_BATCH, query_variable_names
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    STREAM_OPS,
    FrameTimeout,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "CoralServer",
    "DEFAULT_BATCH",
    "FrameTimeout",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "STREAM_OPS",
    "decode_frame",
    "encode_frame",
    "query_variable_names",
    "read_frame",
    "write_frame",
]
