"""``python -m repro.server`` — host one CORAL database over TCP.

Examples::

    python -m repro.server --port 4242 --consult examples/graph.crl
    python -m repro.server --port 0 --data-dir /var/coral   # ephemeral port

The server prints ``coral-server listening on HOST:PORT`` once it is
accepting (with the real port when 0 was requested — the line scripts and
the CI smoke job parse), then serves until SIGINT/SIGTERM, shutting down
cleanly: open cursors are freed and the storage pool, if any, is flushed.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from ..api import Session
from ..eval.limits import ResourceLimits
from .core import CoralServer, DEFAULT_BATCH


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coral-server",
        description="Serve one CORAL database to concurrent remote clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=4242,
        help="TCP port; 0 picks an ephemeral one (printed on stdout)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="open this page-storage directory on the shared session",
    )
    parser.add_argument(
        "--consult", action="append", default=[], metavar="FILE",
        help="program/data file(s) to consult before serving",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH,
        help="default answers per FETCH (client may override per request)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request evaluation timeout in seconds",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None,
        help="per-request cap on derived tuples",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-connection trace events (repro.obs)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    session = Session(data_directory=args.data_dir)
    for path in args.consult:
        session.consult(path)
    limits = None
    if args.timeout is not None or args.max_tuples is not None:
        limits = ResourceLimits(timeout=args.timeout, max_tuples=args.max_tuples)
    server = CoralServer(
        session,
        host=args.host,
        port=args.port,
        limits=limits,
        batch_size=args.batch_size,
        trace=args.trace,
    )
    host, port = server.address
    print(f"coral-server listening on {host}:{port}", flush=True)

    def _stop(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        session.close()
    print("coral-server: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
