"""``python -m repro.server`` — host one CORAL database over TCP.

Examples::

    python -m repro.server --port 4242 --consult examples/graph.crl
    python -m repro.server --port 0 --data-dir /var/coral   # ephemeral port
    python -m repro.server --port 0 --telemetry-port 0 \\
        --slow-query-log slow.jsonl --flight-dump crash.jsonl

The server prints ``coral-server listening on HOST:PORT`` once it is
accepting (with the real port when 0 was requested — the line scripts and
the CI smoke job parse), and ``coral-server telemetry on HOST:PORT`` when
``--telemetry-port`` is given, then serves until SIGINT/SIGTERM.  Shutdown
is graceful: the server stops accepting connections and refusing new work,
drains open cursors for up to ``--drain-timeout`` seconds, flushes the
changelog and the storage pool, and exits 0.

Replication (docs/REPLICATION.md)::

    # a primary with a durable changelog
    python -m repro.server --port 4242 --changelog /var/coral/changelog

    # two read replicas following it
    python -m repro.server --port 4243 --replicate-from 127.0.0.1:4242
    python -m repro.server --port 4244 --replicate-from 127.0.0.1:4242

    # a primary that acknowledges writes only after 1 replica has them
    python -m repro.server --port 4242 --changelog log --sync-replicas 1

Sharding (docs/SHARDING.md)::

    # a router over 4 supervised worker processes, each with a private
    # storage directory under /var/coral/worker-<i>
    python -m repro.server --port 4242 --workers 4 --data-dir /var/coral \\
        --shard-map shards.map
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from ..api import Session
from ..eval.limits import ResourceLimits
from .core import CoralServer, DEFAULT_BATCH


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coral-server",
        description="Serve one CORAL database to concurrent remote clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=4242,
        help="TCP port; 0 picks an ephemeral one (printed on stdout)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="open this page-storage directory on the shared session",
    )
    parser.add_argument(
        "--consult", action="append", default=[], metavar="FILE",
        help="program/data file(s) to consult before serving",
    )
    parser.add_argument(
        "--persistent", action="append", default=[], metavar="NAME/ARITY",
        help="register a disk-backed relation from --data-dir (repeatable; "
             "persistent relations are not auto-registered on reopen)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH,
        help="default answers per FETCH (client may override per request)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request evaluation timeout in seconds",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None,
        help="per-request cap on derived tuples",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-connection trace events (repro.obs)",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="RATE",
        help="distributed-tracing head sampling rate in [0, 1]: mint a "
             "sampled trace context for this fraction of untraced requests "
             "(0 disables; queries tripping the slow-query log are always "
             "sampled — docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--span-dir", default=None, metavar="DIR",
        help="drain this process's distributed-tracing spans to "
             "DIR/<process-name>.jsonl (with --workers the whole fleet "
             "shares the directory, one file per process)",
    )
    parser.add_argument(
        "--process-name", default=None, metavar="NAME",
        help="the process name spans are recorded under (default: "
             "<role>-<pid>)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /debug/flight over HTTP on this "
             "port (0 picks an ephemeral one, printed on stdout)",
    )
    parser.add_argument(
        "--telemetry-host", default="127.0.0.1",
        help="bind address for the telemetry endpoint",
    )
    parser.add_argument(
        "--flight-recorder", action="store_true",
        help="keep a bounded in-memory ring of recent evaluation events, "
             "dumped to --flight-dump on storage faults",
    )
    parser.add_argument(
        "--flight-capacity", type=int, default=4096, metavar="N",
        help="flight-recorder ring size in events",
    )
    parser.add_argument(
        "--flight-dump", default=None, metavar="FILE",
        help="JSON-lines file crash dumps are appended to "
             "(implies --flight-recorder)",
    )
    parser.add_argument(
        "--slow-query-log", default=None, metavar="FILE",
        help="append queries slower than --slow-query-seconds, with their "
             "EXPLAIN plan, to this JSON-lines file",
    )
    parser.add_argument(
        "--slow-query-seconds", type=float, default=1.0, metavar="S",
        help="slow-query threshold in seconds of evaluation time",
    )
    parser.add_argument(
        "--slow-query-analyze", action="store_true",
        help="re-run logged slow queries under a profiler (EXPLAIN ANALYZE)",
    )
    parser.add_argument(
        "--changelog", default=None, metavar="FILE",
        help="append every committed mutation to this durable replication "
             "changelog (enables shipping to replicas)",
    )
    parser.add_argument(
        "--replicate-from", default=None, metavar="HOST:PORT",
        help="run as a read replica of this primary: refuse writes, stream "
             "and apply its changelog, serve reads",
    )
    parser.add_argument(
        "--replica-name", default=None, metavar="NAME",
        help="name this replica reports to its primary (metrics label)",
    )
    parser.add_argument(
        "--sync-replicas", type=int, default=0, metavar="N",
        help="acknowledge writes only after N replicas applied them "
             "(0 = asynchronous shipping)",
    )
    parser.add_argument(
        "--ack-timeout", type=float, default=5.0, metavar="S",
        help="how long a write waits for --sync-replicas acknowledgements",
    )
    parser.add_argument(
        "--io-timeout", type=float, default=30.0, metavar="S",
        help="per-frame socket timeout; a client stalled mid-frame longer "
             "than this is dropped",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="S",
        help="reap connections idle longer than this many seconds",
    )
    parser.add_argument(
        "--live-queue", type=int, default=1024, metavar="N",
        help="bounded per-subscription delta queue for live queries "
             "(docs/LIVE.md); a subscriber lagging past this many queued "
             "deltas is resnapshotted instead of blocking writers",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="S",
        help="on SIGTERM/SIGINT, wait this long for open cursors to finish "
             "before closing",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard the database across N supervised worker processes and "
             "serve as their router (repro.sharding; docs/SHARDING.md) — "
             "each worker owns a private session, and with --data-dir a "
             "private storage subdirectory",
    )
    parser.add_argument(
        "--shard-map", default=None, metavar="FILE",
        help="routing overrides for --workers: one 'name = N' (pin a "
             "module/predicate to worker N) or 'name = *' (partition a "
             "base relation across all workers by tuple) per line",
    )
    parser.add_argument(
        "--worker-heartbeat", type=float, default=1.0, metavar="S",
        help="supervisor health-check interval for --workers",
    )
    return parser


def _run_router(args) -> int:
    """``--workers N``: boot a supervised fleet and route to it."""
    from ..sharding import ShardRouter, WorkerPool

    parser = build_parser()
    for flag, value in (
        ("--consult", args.consult),
        ("--persistent", args.persistent),
        ("--changelog", args.changelog),
        ("--replicate-from", args.replicate_from),
        ("--sync-replicas", args.sync_replicas or None),
    ):
        if value:
            parser.error(
                f"{flag} does not combine with --workers: consult through "
                f"a client, and run replication per worker "
                f"(docs/SHARDING.md)"
            )
    worker_args = ["--batch-size", str(args.batch_size)]
    if args.timeout is not None:
        worker_args += ["--timeout", str(args.timeout)]
    if args.max_tuples is not None:
        worker_args += ["--max-tuples", str(args.max_tuples)]
    if args.trace_sample or args.span_dir:
        # the fleet shares one trace plane: workers keep the router's
        # sampling rate for requests arriving untraced, drain spans into
        # the shared --span-dir, and record under stable per-index names
        worker_args += ["--process-name", "worker-{index}"]
        if args.trace_sample:
            worker_args += ["--trace-sample", str(args.trace_sample)]
        if args.span_dir:
            worker_args += ["--span-dir", args.span_dir]
    pool = WorkerPool(
        args.workers,
        data_dir=args.data_dir,
        worker_args=worker_args,
        heartbeat=args.worker_heartbeat,
    )
    pool.start()
    router = ShardRouter(
        pool,
        host=args.host,
        port=args.port,
        shard_map=args.shard_map,
        batch_size=args.batch_size,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
        io_timeout=args.io_timeout,
        idle_timeout=args.idle_timeout,
        trace_sample=args.trace_sample,
        span_dir=args.span_dir,
        process_name=args.process_name or "router",
    )
    host, port = router.address
    print(f"coral-server listening on {host}:{port} (router)", flush=True)
    for handle in pool.workers:
        whost, wport = handle.address
        print(
            f"coral-server worker {handle.index} on {whost}:{wport} "
            f"pid {handle.pid}",
            flush=True,
        )
    if router.telemetry_address is not None:
        thost, tport = router.telemetry_address
        print(f"coral-server telemetry on {thost}:{tport}", flush=True)

    def _stop(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("coral-server: draining", flush=True)
        router.drain(timeout=args.drain_timeout)
    finally:
        router.shutdown()
        pool.stop()
    print("coral-server: clean shutdown", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers:
        return _run_router(args)
    if args.shard_map:
        build_parser().error("--shard-map needs --workers N")
    session = Session(data_directory=args.data_dir)
    for spec in args.persistent:
        name, sep, arity = spec.rpartition("/")
        if not sep or not arity.isdigit():
            build_parser().error(
                f"--persistent wants NAME/ARITY (e.g. edge/2), got {spec!r}"
            )
        session.persistent_relation(name, int(arity))
    if args.flight_recorder or args.flight_dump is not None:
        session.enable_flight_recorder(
            capacity=args.flight_capacity, dump_path=args.flight_dump
        )
    if args.slow_query_log is not None:
        session.enable_slow_query_log(
            args.slow_query_log,
            threshold=args.slow_query_seconds,
            analyze=args.slow_query_analyze,
        )
    for path in args.consult:
        session.consult(path)
    limits = None
    if args.timeout is not None or args.max_tuples is not None:
        limits = ResourceLimits(timeout=args.timeout, max_tuples=args.max_tuples)
    server = CoralServer(
        session,
        host=args.host,
        port=args.port,
        limits=limits,
        batch_size=args.batch_size,
        trace=args.trace,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
        role="replica" if args.replicate_from else "primary",
        changelog=args.changelog,
        replicate_from=args.replicate_from,
        replica_name=args.replica_name,
        sync_replicas=args.sync_replicas,
        ack_timeout=args.ack_timeout,
        io_timeout=args.io_timeout,
        idle_timeout=args.idle_timeout,
        live_queue=args.live_queue,
        trace_sample=args.trace_sample,
        span_dir=args.span_dir,
        process_name=args.process_name,
    )
    host, port = server.address
    print(f"coral-server listening on {host}:{port} ({server.role})", flush=True)
    if server.telemetry_address is not None:
        thost, tport = server.telemetry_address
        print(f"coral-server telemetry on {thost}:{tport}", flush=True)

    # SIGTERM/SIGINT -> KeyboardInterrupt on the serving thread: the
    # graceful path below must NOT run inside the handler (shutdown joins
    # the serve loop, which would deadlock against itself)
    def _stop(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("coral-server: draining", flush=True)
        server.drain(timeout=args.drain_timeout)
    finally:
        server.shutdown()
        session.close()
    print("coral-server: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
