"""``python -m repro.server`` — host one CORAL database over TCP.

Examples::

    python -m repro.server --port 4242 --consult examples/graph.crl
    python -m repro.server --port 0 --data-dir /var/coral   # ephemeral port
    python -m repro.server --port 0 --telemetry-port 0 \\
        --slow-query-log slow.jsonl --flight-dump crash.jsonl

The server prints ``coral-server listening on HOST:PORT`` once it is
accepting (with the real port when 0 was requested — the line scripts and
the CI smoke job parse), and ``coral-server telemetry on HOST:PORT`` when
``--telemetry-port`` is given, then serves until SIGINT/SIGTERM, shutting
down cleanly: open cursors are freed and the storage pool, if any, is
flushed.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from ..api import Session
from ..eval.limits import ResourceLimits
from .core import CoralServer, DEFAULT_BATCH


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coral-server",
        description="Serve one CORAL database to concurrent remote clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=4242,
        help="TCP port; 0 picks an ephemeral one (printed on stdout)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="open this page-storage directory on the shared session",
    )
    parser.add_argument(
        "--consult", action="append", default=[], metavar="FILE",
        help="program/data file(s) to consult before serving",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH,
        help="default answers per FETCH (client may override per request)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request evaluation timeout in seconds",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None,
        help="per-request cap on derived tuples",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record per-connection trace events (repro.obs)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /debug/flight over HTTP on this "
             "port (0 picks an ephemeral one, printed on stdout)",
    )
    parser.add_argument(
        "--telemetry-host", default="127.0.0.1",
        help="bind address for the telemetry endpoint",
    )
    parser.add_argument(
        "--flight-recorder", action="store_true",
        help="keep a bounded in-memory ring of recent evaluation events, "
             "dumped to --flight-dump on storage faults",
    )
    parser.add_argument(
        "--flight-capacity", type=int, default=4096, metavar="N",
        help="flight-recorder ring size in events",
    )
    parser.add_argument(
        "--flight-dump", default=None, metavar="FILE",
        help="JSON-lines file crash dumps are appended to "
             "(implies --flight-recorder)",
    )
    parser.add_argument(
        "--slow-query-log", default=None, metavar="FILE",
        help="append queries slower than --slow-query-seconds, with their "
             "EXPLAIN plan, to this JSON-lines file",
    )
    parser.add_argument(
        "--slow-query-seconds", type=float, default=1.0, metavar="S",
        help="slow-query threshold in seconds of evaluation time",
    )
    parser.add_argument(
        "--slow-query-analyze", action="store_true",
        help="re-run logged slow queries under a profiler (EXPLAIN ANALYZE)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    session = Session(data_directory=args.data_dir)
    if args.flight_recorder or args.flight_dump is not None:
        session.enable_flight_recorder(
            capacity=args.flight_capacity, dump_path=args.flight_dump
        )
    if args.slow_query_log is not None:
        session.enable_slow_query_log(
            args.slow_query_log,
            threshold=args.slow_query_seconds,
            analyze=args.slow_query_analyze,
        )
    for path in args.consult:
        session.consult(path)
    limits = None
    if args.timeout is not None or args.max_tuples is not None:
        limits = ResourceLimits(timeout=args.timeout, max_tuples=args.max_tuples)
    server = CoralServer(
        session,
        host=args.host,
        port=args.port,
        limits=limits,
        batch_size=args.batch_size,
        trace=args.trace,
        telemetry_port=args.telemetry_port,
        telemetry_host=args.telemetry_host,
    )
    host, port = server.address
    print(f"coral-server listening on {host}:{port}", flush=True)
    if server.telemetry_address is not None:
        thost, tport = server.telemetry_address
        print(f"coral-server telemetry on {thost}:{tport}", flush=True)

    def _stop(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        session.close()
    print("coral-server: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
