"""The concurrent query server: one shared database, N client connections,
demand-driven answer streaming.

The paper's CORAL ran as an EXODUS *client* talking to a page server
(Section 2); our storage stand-in accounts that hop per page fault.  This
module supplies the complementary boundary the ROADMAP's "serve heavy
traffic" north star needs: a TCP server hosting one :class:`~repro.api.Session`
behind many concurrent connections, where each query opens a **server-side
cursor** and answers travel only when the client asks for them — the
get-next-tuple interface (Sections 3, 5.6) lifted onto the wire, batch by
batch.  A client that stops fetching stops server work (backpressure); a
client that disconnects mid-stream has its cursors closed exactly like any
abandoned evaluation (Section 5.4.3).

Concurrency model: one handler thread per connection
(``socketserver.ThreadingTCPServer``), all database work serialized under a
single lock.  Evaluation itself is single-threaded Python either way (and
the paper's CORAL was single-user); the lock is held per *request*, not per
connection, so many clients interleave at batch granularity — a slow
consumer never blocks the server, because between its fetches it holds
nothing.

Per-request resource limits reuse :class:`repro.eval.limits.ResourceLimits`:
the server's configured limits are cloned for every ``FETCH``/``QUERY``, so
each request gets a fresh timeout/tuple budget and one abusive query cannot
starve the rest beyond a single bounded request.

Observability: the server owns a :class:`repro.obs.MetricsRegistry`
(connection/request/cursor/answer counters, a request-latency histogram)
and, optionally, an :class:`repro.obs.EventTracer` recording per-connection
accept/request/close events.  Fault injection reuses :mod:`repro.faults`
with three new points — ``net.accept``, ``net.read``, ``net.write`` — so
chaos tests can kill connections at every I/O boundary.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple as PyTuple, Union

from ..api import Session
from ..api.session import QueryResult
from ..errors import CoralError, ProtocolError, ReadOnlyError, StorageError
from ..eval.limits import ResourceLimits
from ..faults import FaultInjector, SimulatedCrash
from ..language import Literal, parse_program, parse_query
from ..obs import (
    EventTracer,
    FlightRecorder,
    LabelCapper,
    MetricsRegistry,
    TelemetryServer,
)
from ..obs.disttrace import HeadSampler, SpanBuffer, TraceCollector, TraceContext
# only the changelog side is imported eagerly: ReplicationClient lives in
# repro.replication.replica, which imports this package's protocol module —
# importing it here at module level would make repro.replication and
# repro.server mutually unimportable (whichever loads first loses)
from ..replication.changelog import (
    KIND_CONSULT,
    KIND_DELETE,
    KIND_INSERT,
    Changelog,
    ChangelogRecord,
    apply_record,
    encode_mutation,
    replay_into,
)
from ..storage.serde import encode_batch
from ..terms import to_arg
from .protocol import (
    PROTOCOL_VERSION,
    FrameTimeout,
    read_frame,
    write_frame,
)

#: default answers per FETCH when the client does not say
DEFAULT_BATCH = 64

#: ops a draining server still accepts: existing cursors may finish, live
#: subscribers may drain their queues and detach, the rest of the lifecycle
#: keeps working, but no new work is admitted
_DRAIN_OPS = ("HELLO", "FETCH", "CLOSE_CURSOR", "DELTA", "UNSUBSCRIBE",
              "STATS", "TRACE", "BYE")

#: cap on distinct label values for metric families fed by uncontrolled
#: input (client hosts, query predicates); later values collapse to "other"
_LABEL_CAP = 64

#: how many recent changelog sequences keep their originating trace context
#: for REPL_SHIP stamping (a bounded map — old writes simply ship untraced)
_SHIP_TRACE_CAP = 1024

#: ops that mutate the shared database — refused on a read replica
_WRITE_OPS = ("CONSULT", "INSERT", "DELETE")


def query_variable_names(literal: Literal) -> List[str]:
    """The query's variable names in first-occurrence order (the order
    answer batches carry binding values on the wire)."""
    names: List[str] = []
    seen = set()
    for arg in literal.args:
        for var in arg.variables():
            if var.name != "_" and var.name not in seen:
                seen.add(var.name)
                names.append(var.name)
    return names


class _Cursor:
    """One server-side cursor: a lazy :class:`QueryResult` plus the wire
    metadata the client needs to decode its batches."""

    __slots__ = ("cursor_id", "result", "vars", "arity", "query")

    def __init__(
        self,
        cursor_id: int,
        result: QueryResult,
        variables: List[str],
        arity: int,
        query: str,
    ) -> None:
        self.cursor_id = cursor_id
        self.result = result
        self.vars = variables
        self.arity = arity
        self.query = query


class _Subscription:
    """One live subscription: the session-side view plus the per-subscriber
    outbound queue the connection's ``DELTA`` long-polls drain.

    The queue is the backpressure boundary: the commit path (holding the db
    lock) only appends under ``cond`` — never touching the subscriber's
    socket — so a stalled subscriber cannot wedge a writer.  When the queue
    would exceed ``max_queue`` deltas the whole queue is discarded and the
    subscription flips to ``lagged``: the next DELTA poll answers with a
    full resnapshot instead of deltas (docs/LIVE.md)."""

    __slots__ = (
        "sub_id", "conn_id", "view", "query", "cond", "queue", "max_queue",
        "lagged", "closed_reason", "drops", "deltas_sent", "resnapshots",
    )

    def __init__(self, sub_id: int, conn_id: int, query: str,
                 max_queue: int) -> None:
        self.sub_id = sub_id
        self.conn_id = conn_id
        self.view = None
        self.query = query
        self.cond = threading.Condition()
        #: pending (sign, Tuple) deltas, in commit order
        self.queue: deque = deque()
        self.max_queue = max_queue
        self.lagged = False
        self.closed_reason: Optional[str] = None
        self.drops = 0
        self.deltas_sent = 0
        self.resnapshots = 0


class _Connection:
    """Per-connection server state: identity, handshake flag, open cursors."""

    __slots__ = (
        "conn_id", "peer", "peer_host", "greeted", "cursors", "subs",
        "ship_from", "replica_name", "sock",
    )

    def __init__(self, conn_id: int, peer: str, sock=None) -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.sock = sock
        # host only: the metric label for per-client counters (an ephemeral
        # port per connection would mint unbounded label series)
        self.peer_host = peer.rsplit(":", 1)[0] if ":" in peer else peer
        self.greeted = False
        self.cursors: Dict[int, _Cursor] = {}
        #: live subscriptions owned by this connection (reclaimed with it)
        self.subs: Dict[int, _Subscription] = {}
        #: set by a successful REPL_HELLO: the replica's last applied
        #: sequence — the connection then becomes a ship stream
        self.ship_from: Optional[int] = None
        self.replica_name = ""


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - thin shim, logic in server
        self.server.coral._handle_connection(self.request)


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    coral: "CoralServer"

    def handle_error(self, request, client_address) -> None:
        # an unhandled exception in one handler thread (e.g. an injected
        # SimulatedCrash) must neither kill the server nor spray a stack
        # trace; the connection's cursors were already freed by the
        # handler's finally block
        self.coral.metrics.counter(
            "server.errors", "request failures by kind", ("kind",)
        ).inc(1, "unhandled")


class CoralServer:
    """A TCP query server around one shared :class:`~repro.api.Session`.

    ::

        server = CoralServer(session, port=0)      # 0 = ephemeral
        server.start()                             # background thread
        host, port = server.address
        ... RemoteSession(host, port) ...
        server.shutdown()

    ``limits`` (a :class:`ResourceLimits`) is cloned per request so every
    ``FETCH`` gets a fresh timeout/tuple budget; ``faults`` threads a
    :class:`FaultInjector` through the ``net.*`` and ``repl.*`` injection
    points; ``trace=True`` records per-connection events in
    ``server.tracer``.

    Replication (docs/REPLICATION.md): ``role="primary"`` with a
    ``changelog`` (a path, or a prebuilt :class:`Changelog`) logs every
    committed mutation and ships it to replicas that connect with
    ``REPL_HELLO``; ``role="replica"`` with ``replicate_from=(host, port)``
    refuses writes, applies the primary's stream, and can be promoted with
    the ``PROMOTE`` op.  ``sync_replicas=N`` makes writes wait until N
    replicas acknowledged the record (bounded by ``ack_timeout``).

    Socket hygiene: ``io_timeout`` bounds any single frame read/write so a
    wedged or half-open client cannot pin its handler thread forever, and a
    connection idle longer than ``idle_timeout`` is reaped.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        limits: Optional[ResourceLimits] = None,
        batch_size: int = DEFAULT_BATCH,
        faults: Optional[FaultInjector] = None,
        trace: bool = False,
        trace_limit: int = 100_000,
        telemetry_port: Optional[int] = None,
        telemetry_host: str = "127.0.0.1",
        flight: Union[None, bool, FlightRecorder] = None,
        rate_window: float = 30.0,
        role: str = "primary",
        changelog: Union[None, str, Changelog] = None,
        replicate_from: Union[None, str, PyTuple[str, int]] = None,
        replica_name: Optional[str] = None,
        sync_replicas: int = 0,
        ack_timeout: float = 5.0,
        heartbeat: float = 1.0,
        stall_after: float = 5.0,
        io_timeout: Optional[float] = 30.0,
        idle_timeout: Optional[float] = 300.0,
        live_queue: int = 1024,
        trace_sample: float = 0.0,
        span_dir: Optional[str] = None,
        process_name: Optional[str] = None,
        span_limit: int = 20_000,
    ) -> None:
        self.session = session if session is not None else Session()
        self.limits = limits
        self.batch_size = batch_size
        self.faults = faults if faults is not None else FaultInjector()
        self.metrics = MetricsRegistry()
        self.tracer = EventTracer(limit=trace_limit) if trace else None
        #: distributed tracing (docs/OBSERVABILITY.md): head-sample this
        #: fraction of requests arriving without a wire ``trace`` context
        self.trace_sampler = HeadSampler(trace_sample)
        self.span_dir = span_dir
        self.process_name = process_name or f"{role}-{os.getpid()}"
        self._span_limit = span_limit
        #: the request-scoped trace context, per handler thread
        self._trace_local = threading.local()
        #: seq -> wire trace context for REPL_SHIP stamping (bounded)
        self._ship_traces: Dict[int, str] = {}
        if role not in ("primary", "replica"):
            raise ProtocolError(f"role must be 'primary' or 'replica', got {role!r}")
        self.role = role
        self.sync_replicas = sync_replicas
        self.ack_timeout = ack_timeout
        self.heartbeat = heartbeat
        self.stall_after = stall_after
        self.io_timeout = io_timeout
        self.idle_timeout = idle_timeout
        #: per-subscription outbound queue bound, in deltas; overflow flips
        #: the subscription to lagged → next DELTA answers a resnapshot
        self.live_queue = live_queue
        #: the changelog, present whenever replication is in play: a
        #: replica always keeps one (it is what REPL_HELLO resumes from and
        #: what promotion inherits); a primary keeps one when given a path
        #: or when any replication knob is on
        if isinstance(changelog, Changelog):
            self.changelog: Optional[Changelog] = changelog
        elif changelog is True:
            self.changelog = Changelog(None, faults=self.faults)
        elif isinstance(changelog, str):
            self.changelog = Changelog(changelog, faults=self.faults)
        elif role == "replica" or replicate_from is not None or sync_replicas > 0:
            self.changelog = Changelog(None, faults=self.faults)
        else:
            self.changelog = None
        if self.changelog is not None and len(self.changelog):
            # a reopened changelog rebuilds the session's base relations —
            # the redo replay that makes a restarted primary (or a promoted
            # replica rebooting) resume where its acknowledged writes ended
            replay_into(self.session, self.changelog.records())
        #: set by a router's WORKER_HELLO: this server's shard index in a
        #: repro.sharding fleet (None = standalone); surfaced in STATS so
        #: @top/@workers can attribute the numbers
        self.worker_index: Optional[int] = None
        self.worker_router = ""
        self.repl_client: Optional["ReplicationClient"] = None
        if replicate_from is not None:
            from ..replication.replica import ReplicationClient

            if isinstance(replicate_from, str):
                up_host, _, up_port = replicate_from.rpartition(":")
                replicate_from = (up_host, int(up_port))
            self.repl_client = ReplicationClient(
                self, tuple(replicate_from), name=replica_name
            )
        #: primary-side acknowledgement ledger: replica name -> (acked seq,
        #: monotonic time of that ack); guarded by _ack_cond
        self._ack_cond = threading.Condition()
        self._replica_acks: Dict[str, PyTuple[int, float]] = {}
        self._draining = False
        #: the flight recorder surfaced at /debug/flight: an explicit one,
        #: True (install a fresh recorder on the session), or whatever the
        #: session already carries
        if flight is True:
            self.flight = (
                self.session.flight
                if self.session.flight is not None
                else self.session.enable_flight_recorder()
            )
        elif flight:
            self.flight = flight
        else:
            self.flight = self.session.flight
        #: rate-windowed request history for STATS (the @top dashboard):
        #: (perf_counter, answers) per request, bounded
        self.rate_window = rate_window
        self._recent: deque = deque(maxlen=8192)
        self._started_at = time.perf_counter()
        #: the /metrics—/healthz—/debug/flight endpoint (None = disabled)
        self.telemetry: Optional[TelemetryServer] = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(
                port=telemetry_port,
                host=telemetry_host,
                registries=[self.metrics],
                flight=self.flight,
                health=self._health,
                trace_lookup=self._trace_lookup,
            )
        #: serializes all database work (parse, evaluate, update)
        self._db_lock = threading.RLock()
        #: guards the connection/cursor registry (never held during eval)
        self._state_lock = threading.Lock()
        self._connections: Dict[int, _Connection] = {}
        self._next_conn = 0
        self._next_cursor = 0
        self._next_sub = 0
        self._requests_total = 0
        self._connections_total = 0
        self._cursors_opened = 0
        self._cursors_closed = 0
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.coral = self
        self._thread: Optional[threading.Thread] = None
        self._serving = False

        m = self.metrics
        self._m_conns = m.counter("server.connections.total", "connections accepted")
        self._m_active = m.gauge("server.connections.active", "open connections")
        self._m_requests = m.counter("server.requests", "requests by op", ("op",))
        self._m_errors = m.counter("server.errors", "request failures by kind", ("kind",))
        self._m_latency = m.histogram(
            "server.request.seconds", "request service time", ("op",)
        )
        self._m_cursors_opened = m.counter("server.cursors.opened", "cursors opened")
        self._m_cursors_closed = m.counter("server.cursors.closed", "cursors closed")
        self._m_cursors_open = m.gauge("server.cursors.open", "cursors currently open")
        self._m_pulls = m.counter(
            "server.cursor.pulls", "answers pulled from evaluation (get-next calls)"
        )
        self._m_answers = m.counter("server.answers.sent", "answers shipped to clients")
        # per-client host (not host:port — an ephemeral port per connection
        # would mint unbounded label series) and per-query-predicate labels;
        # both are fed by uncontrolled input, so each family is capped at
        # _LABEL_CAP distinct values with an "other" overflow bucket — a
        # million distinct clients cannot blow up the registry or /metrics
        self._m_client_requests = LabelCapper(
            m.counter(
                "server.client.requests",
                "requests by client host (top clients; rest under 'other')",
                ("client",),
            ),
            k=_LABEL_CAP,
        )
        self._m_query_preds = LabelCapper(
            m.counter(
                "server.query.predicates",
                "cursors opened per query predicate (top predicates; rest "
                "under 'other')",
                ("pred",),
            ),
            k=_LABEL_CAP,
        )
        self._m_trace_dropped = m.counter(
            "obs.trace.dropped",
            "trace events/spans dropped at bounded-buffer caps",
            ("buffer",),
        )
        if self.tracer is not None:
            self.tracer.on_drop = (
                lambda: self._m_trace_dropped.inc(1, "events")
            )
        span_path = (
            os.path.join(span_dir, f"{self.process_name}.jsonl")
            if span_dir
            else None
        )
        #: bounded per-process buffer of distributed-trace spans, drained
        #: to <span_dir>/<process_name>.jsonl when a span directory is set
        self.spans = SpanBuffer(
            self.process_name,
            limit=span_limit,
            path=span_path,
            on_drop=lambda: self._m_trace_dropped.inc(1, "spans"),
        )
        self._m_repl_events = m.counter(
            "replication.events",
            "replication events (shipped/applied/duplicates/heartbeats/"
            "connects/reconnects/errors)",
            ("event",),
        )
        self._m_repl_last_seq = m.gauge(
            "replication.last_seq", "last changelog sequence on this server"
        )
        self._m_repl_lag_records = m.gauge(
            "replication.lag_records",
            "records this replica still has to apply (replica role)",
        )
        self._m_repl_lag_seconds = m.gauge(
            "replication.lag_seconds",
            "seconds since this replica last heard from its primary",
        )
        self._m_replica_lag = m.gauge(
            "replication.replica.lag_records",
            "records each connected replica has not yet acknowledged "
            "(primary role)",
            ("replica",),
        )
        self._m_replicas_connected = m.gauge(
            "replication.replicas.connected",
            "replicas currently on the ship stream (primary role)",
        )
        self._m_live_subs = m.gauge(
            "live.subscriptions", "live subscriptions currently registered"
        )
        self._m_live_deltas = m.counter(
            "live.deltas_sent", "deltas shipped to subscribers"
        )
        self._m_live_lag = m.gauge(
            "live.lag", "deltas queued across all subscriptions, not yet polled"
        )
        self._m_live_drops = m.counter(
            "live.drops", "deltas discarded by bounded-queue overflow"
        )
        self._m_live_resnapshots = m.counter(
            "live.resnapshots", "full snapshots re-sent after queue overflow"
        )

    def repl_metric(self, event: str) -> None:
        """Count one replication event (the hook ReplicationClient uses)."""
        self._m_repl_events.inc(1, event)

    def _health(self) -> PyTuple[bool, str]:
        if self._draining:
            return False, "draining"
        if not self._serving:
            return False, "not serving"
        if self.role == "replica" and self.repl_client is not None:
            self._refresh_replica_gauges()
            stalled = self.repl_client.stalled_for()
            if stalled is None and not self.repl_client.connected:
                return False, "degraded: replication stream never established"
            if stalled is not None and (
                stalled > self.stall_after or not self.repl_client.connected
            ):
                return False, (
                    f"degraded: replication stalled {stalled:.1f}s "
                    f"(applied seq {self.changelog.last_seq})"
                )
        return True, f"serving ({self.role})"

    def _refresh_replica_gauges(self) -> None:
        """Push the replica's current lag into its gauges (sampled on
        /healthz, STATS, and every apply, so a scrape is never stale by
        more than one probe interval)."""
        client = self.repl_client
        if client is None or self.changelog is None:
            return
        self._m_repl_last_seq.set(self.changelog.last_seq)
        self._m_repl_lag_records.set(client.lag_records())
        stalled = client.stalled_for()
        self._m_repl_lag_seconds.set(stalled if stalled is not None else -1.0)

    # -- distributed tracing (repro.obs.disttrace) ---------------------------

    def _request_trace(self, header) -> Optional[TraceContext]:
        """The trace context this request runs under, or None.

        A wire ``trace`` field (any client, any hop) wins: the request runs
        under a child of the carried context, sampled or not.  Without one,
        the head sampler may mint a sampled root (``trace_sample`` > 0);
        failing that, a server with a slow-query log still mints an
        *unsampled* root so a threshold trip can flip it to sampled
        (forced sampling) — otherwise tracing stays entirely off-path."""
        wire = header.get("trace")
        if wire is not None:
            parent = TraceContext.from_wire(wire)
            if parent is not None:
                return parent.child()
        if self.trace_sampler.rate > 0.0 and self.trace_sampler.decide():
            return TraceContext.mint(True)
        if self.session.slow_log is not None:
            return TraceContext.mint(False)
        return None

    def _current_trace(self) -> Optional[TraceContext]:
        return getattr(self._trace_local, "ctx", None)

    @contextmanager
    def _session_trace(self):
        """Expose the request's trace context on the shared session (and
        flight recorder) for the duration of one db-locked block, so the
        slow-query log can tag entries / force-sample and a crash dump
        names the trace that died.  Callers hold ``_db_lock``, which is
        what makes the set/restore race-free across handler threads."""
        ctx = self._current_trace()
        if ctx is None:
            yield None
            return
        session = self.session
        flight = self.flight
        previous = session.current_trace
        session.current_trace = ctx
        if flight is not None:
            flight.current_trace = ctx
        try:
            yield ctx
        finally:
            session.current_trace = previous
            if flight is not None:
                flight.current_trace = previous

    def _note_ship_trace(self, seq: int) -> None:
        """Remember the trace context that produced changelog record ``seq``
        so the ship loop can stamp it onto the REPL_SHIP frame.  Called
        under the db lock; the map is bounded (old writes ship untraced)."""
        ctx = self._current_trace()
        if ctx is None or not ctx.sampled:
            return
        self._ship_traces[seq] = ctx.to_wire()
        while len(self._ship_traces) > _SHIP_TRACE_CAP:
            self._ship_traces.pop(next(iter(self._ship_traces)))

    def _trace_lookup(self, trace_id: str) -> Optional[Dict[str, object]]:
        """Assemble one trace id from this process's spans plus whatever
        sibling processes drained into ``span_dir`` — the payload behind
        ``/debug/trace/<id>`` on the telemetry endpoint."""
        collector = TraceCollector()
        if self.span_dir:
            try:
                collector.load_dir(self.span_dir)
            except OSError:
                pass
        collector.add_spans(self.spans.snapshot())
        if not collector.spans(trace_id):
            return None
        return collector.assemble(trace_id)

    def _op_trace(self, header) -> Dict[str, object]:
        """The TRACE op: return this process's spans for one trace id (the
        shard router additionally gathers its workers' — that is how the
        shell's ``@trace <id>`` sees the whole cluster)."""
        trace_id = str(header.get("id", ""))
        spans = self.spans.spans_for(trace_id)
        if self.span_dir:
            # merge sibling processes' drained spans (e.g. a replica's):
            # the collector dedupes ids, first writer wins
            collector = TraceCollector()
            collector.add_spans(spans)
            try:
                collector.load_dir(self.span_dir)
            except OSError:
                pass
            spans = collector.spans(trace_id)
        return {
            "ok": True,
            "id": trace_id,
            "process": self.process_name,
            "spans": spans,
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> PyTuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return host, port

    @property
    def telemetry_address(self) -> Optional[PyTuple[str, int]]:
        return self.telemetry.address if self.telemetry is not None else None

    def start(self) -> "CoralServer":
        """Serve in a daemon thread; returns immediately."""
        if self._thread is not None:
            raise ProtocolError("server already started")
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        if self.repl_client is not None:
            self.repl_client.start()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="coral-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        if self.repl_client is not None:
            self.repl_client.start()
        self._tcp.serve_forever(poll_interval=0.05)

    def drain(self, timeout: float = 5.0) -> bool:
        """Graceful-shutdown step one: refuse new connections and new work,
        then wait (up to ``timeout`` seconds) for open cursors to finish.
        Returns True when every cursor drained, False on deadline — either
        way the server is ready for :meth:`shutdown`."""
        self._draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.open_cursors() == 0:
                return True
            time.sleep(0.02)
        return self.open_cursors() == 0

    def shutdown(self) -> None:
        """Stop accepting, close the listening socket, free all cursors."""
        if self.repl_client is not None:
            self.repl_client.stop()
        if self.telemetry is not None:
            self.telemetry.shutdown()
        if self._serving:
            # BaseServer.shutdown blocks forever if serve_forever never ran
            self._tcp.shutdown()
            self._serving = False
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._state_lock:
            leftovers = list(self._connections.values())
            self._connections.clear()
        for conn in leftovers:
            # sever live connections so their handler threads exit (and
            # so an in-process "kill" looks to clients like a real one:
            # sockets die, in-flight requests fail at the transport layer)
            if conn.sock is not None:
                try:
                    conn.sock.close()
                except OSError:
                    pass
            self._free_cursors(conn)
            self._free_subscriptions(conn)
        if self.changelog is not None:
            self.changelog.close()
        self.spans.close()

    def __enter__(self) -> "CoralServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- connection loop -----------------------------------------------------

    def _handle_connection(self, sock) -> None:
        if self._draining:
            return  # refusing new connections: drop before the handshake
        try:
            self.faults.check("net.accept")
        except OSError:
            self._m_errors.inc(1, "accept")
            return
        # bound every socket operation: a wedged or half-open client gets
        # io_timeout per frame, and a silent one is reaped at idle_timeout
        wait = self.io_timeout if self.io_timeout is not None else self.idle_timeout
        if wait is not None:
            sock.settimeout(wait)
        conn = self._register(sock)
        try:
            idle_deadline = (
                time.monotonic() + self.idle_timeout
                if self.idle_timeout is not None
                else None
            )
            while True:
                try:
                    self.faults.check("net.read")
                    frame = read_frame(sock)
                except FrameTimeout:
                    # nothing arrived within the socket timeout: idle, not
                    # wedged — keep waiting until the idle budget runs out
                    if (
                        idle_deadline is not None
                        and time.monotonic() >= idle_deadline
                    ):
                        self._m_errors.inc(1, "idle_reaped")
                        return
                    continue
                except (ProtocolError, OSError):
                    # client vanished, spoke garbage, or stalled mid-frame:
                    # drop it
                    self._m_errors.inc(1, "read")
                    return
                if frame is None:
                    return  # clean EOF
                if self.idle_timeout is not None:
                    idle_deadline = time.monotonic() + self.idle_timeout
                header, body = frame
                if not self._serve_request(conn, sock, header, body):
                    return
        finally:
            self._unregister(conn)

    def _serve_request(self, conn, sock, header, body) -> bool:
        """Dispatch one request and send its response; False ends the
        connection (BYE, handshake refusal, or a dead socket)."""
        op = str(header.get("op", ""))
        started = time.perf_counter()
        trace_ctx = self._request_trace(header)
        self._trace_local.ctx = trace_ctx
        wall = SpanBuffer.now() if trace_ctx is not None else 0.0
        keep_going = True
        try:
            response, rbody, keep_going = self._dispatch(conn, op, header, body)
        except SimulatedCrash:
            raise  # chaos tests: nothing may swallow a simulated crash
        except CoralError as exc:
            self._m_errors.inc(1, type(exc).__name__)
            response = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
            rbody = b""
        except (ValueError, TypeError) as exc:
            # a well-formed frame carrying a malformed field (a non-integer
            # cursor or sequence, a list where a scalar belongs): answer a
            # clean protocol error instead of letting the handler thread die
            self._m_errors.inc(1, "ProtocolError")
            response = {
                "ok": False,
                "error": "ProtocolError",
                "message": f"malformed {op or '?'} field: {exc}",
            }
            rbody = b""
        self._m_requests.inc(1, op or "?")
        self._m_client_requests.inc(1, conn.peer_host)
        self._m_latency.observe(time.perf_counter() - started, op or "?")
        answers = response.get("count", 0) if op == "FETCH" else 0
        # deque.append is atomic; stats() filters by age against rate_window
        self._recent.append((time.perf_counter(), answers))
        if self.tracer is not None:
            self.tracer.complete(
                f"request.{op or '?'}", "server", started, conn=conn.conn_id
            )
        if trace_ctx is not None and trace_ctx.sampled:
            # sampled either from the start or force-flipped by a slowlog
            # trip during dispatch — either way the hop is worth a span
            self.spans.record(
                trace_ctx,
                f"request.{op or '?'}",
                wall,
                SpanBuffer.now(),
                conn=conn.conn_id,
                ok=bool(response.get("ok")),
            )
        self._trace_local.ctx = None
        try:
            self.faults.check("net.write")
            write_frame(sock, response, rbody)
        except (ProtocolError, OSError):
            self._m_errors.inc(1, "write")
            return False
        if conn.ship_from is not None and response.get("ok"):
            # a successful REPL_HELLO inverts the socket's roles: this
            # handler thread becomes the ship loop for one replica
            self._ship_loop(conn, sock)
            return False
        return keep_going

    def _register(self, sock) -> _Connection:
        try:
            peer = "%s:%s" % sock.getpeername()[:2]
        except OSError:
            peer = "?"
        with self._state_lock:
            self._next_conn += 1
            conn = _Connection(self._next_conn, peer, sock)
            self._connections[conn.conn_id] = conn
            self._connections_total += 1
        self._m_conns.inc()
        self._m_active.inc()
        if self.tracer is not None:
            self.tracer.instant("net.accept", "server", conn=conn.conn_id, peer=peer)
        return conn

    def _unregister(self, conn: _Connection) -> None:
        with self._state_lock:
            self._connections.pop(conn.conn_id, None)
        self._free_cursors(conn)
        self._free_subscriptions(conn)
        self._m_active.dec()
        if self.tracer is not None:
            self.tracer.instant("net.close", "server", conn=conn.conn_id)

    def _free_cursors(self, conn: _Connection) -> None:
        for cursor in list(conn.cursors.values()):
            self._close_cursor(conn, cursor.cursor_id)

    def _close_cursor(self, conn: _Connection, cursor_id: int) -> bool:
        cursor = conn.cursors.pop(cursor_id, None)
        if cursor is None:
            return False
        with self._db_lock:
            cursor.result.close()
        with self._state_lock:
            self._cursors_closed += 1
        self._m_cursors_closed.inc()
        self._m_cursors_open.dec()
        return True

    # -- request dispatch ----------------------------------------------------

    def _dispatch(
        self, conn: _Connection, op: str, header, body
    ) -> PyTuple[Dict[str, object], bytes, bool]:
        with self._state_lock:
            self._requests_total += 1
        if not conn.greeted:
            if op != "HELLO":
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": f"first request must be HELLO, got {op!r}",
                    },
                    b"",
                    False,
                )
            version = header.get("version")
            if version != PROTOCOL_VERSION:
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": (
                            f"protocol version mismatch: client speaks "
                            f"{version!r}, server speaks {PROTOCOL_VERSION}"
                        ),
                    },
                    b"",
                    False,
                )
            conn.greeted = True
            return (
                {
                    "ok": True,
                    "server": "repro.server/1",
                    "version": PROTOCOL_VERSION,
                },
                b"",
                True,
            )
        if op == "BYE":
            self._free_cursors(conn)
            return {"ok": True, "bye": True}, b"", False
        if self._draining and op not in _DRAIN_OPS:
            raise ProtocolError(
                f"server is draining for shutdown; {op} refused"
            )
        if self.role == "replica" and op in _WRITE_OPS:
            raise ReadOnlyError(
                f"{op} refused: this server is a read replica — writes go "
                f"to the primary"
            )
        if op == "QUERY":
            return self._op_query(conn, header), b"", True
        if op == "FETCH":
            return self._op_fetch(conn, header) + (True,)
        if op == "CLOSE_CURSOR":
            cursor_id = int(header.get("cursor", -1))
            closed = self._close_cursor(conn, cursor_id)
            return {"ok": True, "closed": closed}, b"", True
        if op == "CONSULT":
            return self._op_consult(conn, header), b"", True
        if op == "INSERT":
            return self._op_update(header, insert=True), b"", True
        if op == "DELETE":
            return self._op_update(header, insert=False), b"", True
        if op == "SUBSCRIBE":
            return self._op_subscribe(conn, header) + (True,)
        if op == "DELTA":
            return self._op_delta(conn, header) + (True,)
        if op == "UNSUBSCRIBE":
            sub_id = int(header.get("sub", -1))
            closed = self._close_subscription(conn, sub_id)
            return {"ok": True, "closed": closed}, b"", True
        if op == "STATS":
            return {"ok": True, "stats": self.stats()}, b"", True
        if op == "TRACE":
            return self._op_trace(header), b"", True
        if op == "REPL_HELLO":
            return self._op_repl_hello(conn, header), b"", True
        if op == "PROMOTE":
            return self._op_promote(header), b"", True
        if op == "WORKER_HELLO":
            return self._op_worker_hello(conn, header), b"", True
        raise ProtocolError(f"unknown request op {op!r}")

    def _op_worker_hello(self, conn: _Connection, header) -> Dict[str, object]:
        """A shard router (repro.sharding) claims this server as worker #N.

        Idempotent — a supervisor re-handshakes after every restart — and
        deliberately cheap: the index is identity for STATS/metrics
        attribution, not an access grant (any client may still talk to a
        worker directly, e.g. for debugging)."""
        index = int(header.get("worker", -1))
        if index < 0:
            raise ProtocolError(
                f"WORKER_HELLO needs a non-negative worker index, "
                f"got {header.get('worker')!r}"
            )
        self.worker_index = index
        self.worker_router = str(header.get("router", "") or conn.peer)
        return {
            "ok": True,
            "worker": index,
            "pid": os.getpid(),
            "role": self.role,
            "version": PROTOCOL_VERSION,
        }

    def _open_cursor(
        self,
        conn: _Connection,
        literal: Literal,
        query_text: str,
        result: Optional[QueryResult] = None,
    ) -> _Cursor:
        if result is None:
            result = self.session.query_literal(literal)
        if self.limits is not None:
            result.set_limits(self.limits.clone())
        with self._state_lock:
            self._next_cursor += 1
            self._cursors_opened += 1
            cursor = _Cursor(
                self._next_cursor,
                result,
                query_variable_names(literal),
                literal.arity,
                query_text,
            )
        conn.cursors[cursor.cursor_id] = cursor
        self._m_cursors_opened.inc()
        self._m_cursors_open.inc()
        self._m_query_preds.inc(1, f"{literal.pred}/{literal.arity}")
        return cursor

    def _op_query(self, conn: _Connection, header) -> Dict[str, object]:
        text = str(header.get("query", ""))
        with self._db_lock, self._session_trace():
            literal = parse_query(text).literal
            cursor = self._open_cursor(conn, literal, text)
        return {
            "ok": True,
            "cursor": cursor.cursor_id,
            "vars": cursor.vars,
            "arity": cursor.arity,
        }

    def _op_consult(self, conn: _Connection, header) -> Dict[str, object]:
        source = str(header.get("source", ""))
        record = None
        with self._db_lock, self._session_trace():
            program = parse_program(source)
            if any(c.name == "consult" for c in program.commands):
                raise ProtocolError(
                    "remote consult may not read server-side files"
                )
            results = self.session.load_program(program)
            if self.changelog is not None and (
                program.modules or program.facts or program.index_annotations
            ):
                # pure query batches ship nothing; anything that changed the
                # database (facts, modules, index annotations) is logged as
                # one CONSULT record replicas re-consult verbatim
                record = self.changelog.append(
                    KIND_CONSULT, "", source.encode("utf-8")
                )
                self._note_ship_trace(record.seq)
                self._m_repl_last_seq.set(self.changelog.last_seq)
            opened = []
            for query, result in zip(program.queries, results):
                literal = query.literal
                cursor = self._open_cursor(
                    conn, literal, str(literal), result=result
                )
                opened.append(
                    {
                        "cursor": cursor.cursor_id,
                        "vars": cursor.vars,
                        "arity": cursor.arity,
                    }
                )
        if record is not None:
            self._await_replication(record.seq)
        return {"ok": True, "cursors": opened}

    def _op_fetch(
        self, conn: _Connection, header
    ) -> PyTuple[Dict[str, object], bytes]:
        cursor_id = int(header.get("cursor", -1))
        cursor = conn.cursors.get(cursor_id)
        if cursor is None:
            raise ProtocolError(f"unknown cursor {cursor_id}")
        limit = int(header.get("max", self.batch_size))
        if limit < 1:
            raise ProtocolError(f"FETCH max must be >= 1, got {limit}")
        rows = []
        done = False
        with self._db_lock, self._session_trace():
            if self.limits is not None:
                cursor.result.set_limits(self.limits.clone())
            try:
                for _ in range(limit):
                    answer = cursor.result.get_next()
                    self._m_pulls.inc()
                    if answer is None:
                        done = True
                        break
                    row = list(answer.tuple.args)
                    for name in cursor.vars:
                        row.append(answer.term(name))
                    rows.append(row)
            except CoralError:
                # evaluation died (limits, storage, non-primitive answer):
                # the cursor's state is unusable — free it, then report
                self._close_cursor(conn, cursor_id)
                raise
        try:
            body = encode_batch(rows)
        except CoralError:
            self._close_cursor(conn, cursor_id)
            raise
        if done:
            self._close_cursor(conn, cursor_id)
        self._m_answers.inc(len(rows))
        return (
            {"ok": True, "cursor": cursor_id, "count": len(rows), "done": done},
            body,
        )

    def _op_update(self, header, insert: bool) -> Dict[str, object]:
        pred = str(header.get("pred", ""))
        values = header.get("values", [])
        if not pred or not isinstance(values, list):
            raise ProtocolError("INSERT/DELETE need a pred and a values list")
        record = None
        with self._db_lock, self._session_trace():
            if insert:
                changed = self.session.insert(pred, *values)
            else:
                changed = self.session.delete(pred, *values)
            if changed and self.changelog is not None:
                # logged under the db lock so changelog order is apply order
                record = self.changelog.append(
                    KIND_INSERT if insert else KIND_DELETE,
                    pred,
                    encode_mutation([[to_arg(v) for v in values]]),
                )
                self._note_ship_trace(record.seq)
                self._m_repl_last_seq.set(self.changelog.last_seq)
        if record is not None:
            # the ack wait happens *outside* the db lock: readers and other
            # writers proceed while this response waits for its replicas
            self._await_replication(record.seq)
        return {"ok": True, "changed": bool(changed)}

    # -- live subscriptions (docs/LIVE.md) -----------------------------------

    def _op_subscribe(
        self, conn: _Connection, header
    ) -> PyTuple[Dict[str, object], bytes]:
        """Register a live query and answer with its initial snapshot.

        The session-side :class:`~repro.live.view.LiveView` runs its delta
        callback synchronously on the commit path (under the db lock); the
        callback only appends to the subscription's bounded in-memory queue
        under its own condition — it never touches this connection's socket,
        so a subscriber that stops polling cannot stall a writer."""
        text = str(header.get("query", ""))
        with self._state_lock:
            self._next_sub += 1
            sub = _Subscription(
                self._next_sub, conn.conn_id, text, self.live_queue
            )

        def on_deltas(deltas) -> None:
            # the callback runs on the committing writer's handler thread:
            # if that write is traced, the delta emission joins its trace
            writer_ctx = self._current_trace()
            if writer_ctx is not None and writer_ctx.sampled:
                self.spans.record(
                    writer_ctx.child(),
                    "live.delta",
                    SpanBuffer.now(),
                    None,
                    sub=sub.sub_id,
                    count=len(deltas),
                )
            with sub.cond:
                if sub.closed_reason is not None:
                    return
                if len(sub.queue) + len(deltas) > sub.max_queue:
                    # overflow: drop *everything* and flip to lagged — the
                    # next DELTA poll answers with a full resnapshot, which
                    # is both correct and cheaper than a partial queue
                    dropped = len(sub.queue) + len(deltas)
                    sub.queue.clear()
                    sub.lagged = True
                    sub.drops += dropped
                    self._m_live_drops.inc(dropped)
                    if self.tracer is not None:
                        self.tracer.instant(
                            "live.drop", "live", sub=sub.sub_id,
                            dropped=dropped,
                        )
                else:
                    sub.queue.extend(deltas)
                sub.cond.notify_all()
            self._update_live_lag()

        def on_close(reason: str) -> None:
            with sub.cond:
                if sub.closed_reason is None:
                    sub.closed_reason = reason
                sub.queue.clear()
                sub.cond.notify_all()

        with self._db_lock, self._session_trace():
            literal = parse_query(text).literal
            view = self.session.subscribe(literal, on_deltas, on_close)
            sub.view = view
            snapshot = view.snapshot()
        conn.subs[sub.sub_id] = sub
        self._m_live_subs.inc()
        self._m_query_preds.inc(1, f"{literal.pred}/{literal.arity}")
        if self.tracer is not None:
            self.tracer.instant(
                "live.subscribe", "live", sub=sub.sub_id, query=text
            )
        body = encode_batch([list(t.args) for t in snapshot])
        return (
            {
                "ok": True,
                "sub": sub.sub_id,
                "arity": literal.arity,
                "count": len(snapshot),
            },
            body,
        )

    def _op_delta(
        self, conn: _Connection, header
    ) -> PyTuple[Dict[str, object], bytes]:
        """Long-poll one subscription's delta queue.

        Pull, not push: the client asks, waits up to ``timeout`` seconds on
        the queue's condition (the db lock is *not* held while waiting), and
        receives one of four kinds — ``deltas`` (signs in the header, tuples
        in the body), ``resnapshot`` (the queue overflowed; replace all
        folded state with the body), ``none`` (empty poll), or ``closed``
        (server-side teardown: module reload, eviction, shutdown)."""
        sub_id = int(header.get("sub", -1))
        sub = conn.subs.get(sub_id)
        if sub is None:
            raise ProtocolError(f"unknown subscription {sub_id}")
        timeout = min(max(float(header.get("timeout", 10.0)), 0.0), 30.0)
        limit = int(header.get("max", self.batch_size))
        if limit < 1:
            raise ProtocolError(f"DELTA max must be >= 1, got {limit}")
        deadline = time.monotonic() + timeout
        signs: List[int] = []
        rows: List[List[object]] = []
        need_resnapshot = False
        with sub.cond:
            while (
                not sub.queue
                and not sub.lagged
                and sub.closed_reason is None
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                sub.cond.wait(remaining)
            if sub.closed_reason is not None:
                reason = sub.closed_reason
                conn.subs.pop(sub_id, None)
                self._m_live_subs.dec()
                return (
                    {"ok": True, "sub": sub_id, "kind": "closed",
                     "reason": reason},
                    b"",
                )
            if sub.lagged:
                need_resnapshot = True
            else:
                while sub.queue and len(rows) < limit:
                    sign, tup = sub.queue.popleft()
                    signs.append(sign)
                    rows.append(list(tup.args))
        if need_resnapshot:
            # lock order everywhere is db lock, then sub.cond: take the
            # snapshot under the db lock (no commit can interleave), clear
            # the queue under the condition — deltas enqueued after this
            # point apply cleanly on top of the snapshot
            with self._db_lock:
                with sub.cond:
                    sub.queue.clear()
                    sub.lagged = False
                    sub.resnapshots += 1
                if sub.view is None or sub.view.closed:
                    snapshot = []
                else:
                    snapshot = sub.view.snapshot()
            self._m_live_resnapshots.inc()
            self._update_live_lag()
            if self.tracer is not None:
                self.tracer.instant(
                    "live.resnapshot", "live", sub=sub_id,
                    count=len(snapshot),
                )
            return (
                {
                    "ok": True,
                    "sub": sub_id,
                    "kind": "resnapshot",
                    "count": len(snapshot),
                },
                encode_batch([list(t.args) for t in snapshot]),
            )
        if not rows:
            return ({"ok": True, "sub": sub_id, "kind": "none"}, b"")
        sub.deltas_sent += len(rows)
        self._m_live_deltas.inc(len(rows))
        self._update_live_lag()
        return (
            {
                "ok": True,
                "sub": sub_id,
                "kind": "deltas",
                "signs": signs,
                "count": len(rows),
            },
            encode_batch(rows),
        )

    def _close_subscription(self, conn: _Connection, sub_id: int) -> bool:
        sub = conn.subs.pop(sub_id, None)
        if sub is None:
            return False
        with self._db_lock:
            if sub.view is not None and not sub.view.closed:
                self.session.unsubscribe(sub.view.view_id)
        with sub.cond:
            if sub.closed_reason is None:
                sub.closed_reason = "unsubscribed"
            sub.queue.clear()
            sub.cond.notify_all()
        self._m_live_subs.dec()
        self._update_live_lag()
        return True

    def _free_subscriptions(self, conn: _Connection) -> None:
        for sub_id in list(conn.subs):
            self._close_subscription(conn, sub_id)

    def _update_live_lag(self) -> None:
        """Refresh the ``live.lag`` gauge: total queued-but-unsent deltas
        across every subscription (the backlog a slow poller is behind by)."""
        with self._state_lock:
            total = sum(
                len(sub.queue)
                for c in self._connections.values()
                for sub in c.subs.values()
            )
        self._m_live_lag.set(total)

    # -- replication (docs/REPLICATION.md) -----------------------------------

    def _op_repl_hello(self, conn: _Connection, header) -> Dict[str, object]:
        if self.changelog is None:
            raise ProtocolError(
                "replication is not enabled on this server (no changelog)"
            )
        if self.role != "primary":
            raise ProtocolError(
                "REPL_HELLO must go to the primary; this server is a replica"
            )
        last_seq = int(header.get("last_seq", 0))
        if last_seq < 0 or last_seq > self.changelog.last_seq:
            raise ProtocolError(
                f"replica claims sequence #{last_seq} but this primary is at "
                f"#{self.changelog.last_seq} — refusing to ship backwards "
                f"(was the wrong server promoted?)"
            )
        conn.ship_from = last_seq
        conn.replica_name = str(header.get("replica", "") or conn.peer)
        return {
            "ok": True,
            "role": self.role,
            "last_seq": self.changelog.last_seq,
        }

    def _ship_loop(self, conn: _Connection, sock) -> None:
        """Stream the changelog to one replica until either side dies.

        Runs on the connection's handler thread after ``REPL_HELLO``; each
        iteration ships one record (or, when the log is quiet for a
        ``heartbeat`` interval, a heartbeat frame) and waits for the
        replica's ``REPL_ACK`` — per-record acknowledgement is the flow
        control, exactly like cursor FETCH backpressure."""
        name = conn.replica_name
        next_seq = conn.ship_from + 1
        with self._ack_cond:
            self._replica_acks[name] = (conn.ship_from, time.monotonic())
            self._ack_cond.notify_all()
        self._m_replicas_connected.inc()
        self._m_repl_events.inc(1, "connects")
        if self.tracer is not None:
            self.tracer.instant(
                "repl.connect", "server", conn=conn.conn_id, replica=name
            )
        try:
            while self._serving and self.role == "primary":
                record = self.changelog.wait_for(next_seq, timeout=self.heartbeat)
                if record is None:
                    header = {
                        "op": "REPL_SHIP",
                        "heartbeat": True,
                        "seq": self.changelog.last_seq,
                    }
                    body = b""
                else:
                    header = {
                        "op": "REPL_SHIP",
                        "seq": record.seq,
                        "kind": record.kind,
                        "pred": record.pred,
                        "crc": record.crc,
                    }
                    wire_trace = self._ship_traces.get(record.seq)
                    if wire_trace is not None:
                        # propagate the originating write's trace context so
                        # the replica's apply span joins the same trace
                        header["trace"] = wire_trace
                    body = record.payload
                self.faults.check("repl.ship")
                write_frame(sock, header, body)
                self.faults.check("repl.ack")
                frame = read_frame(sock)
                if frame is None:
                    return  # replica hung up cleanly
                ack, _ = frame
                if ack.get("op") != "REPL_ACK":
                    raise ProtocolError(
                        f"expected REPL_ACK from replica {name}, got "
                        f"{ack.get('op')!r}"
                    )
                self._record_ack(name, int(ack.get("seq", 0)))
                if record is not None:
                    next_seq = record.seq + 1
                    self._m_repl_events.inc(1, "shipped")
                    if self.tracer is not None:
                        self.tracer.instant(
                            "repl.ship", "server", seq=record.seq, replica=name
                        )
                else:
                    self._m_repl_events.inc(1, "heartbeats")
        except (FrameTimeout, ProtocolError, OSError, ValueError, TypeError):
            # a stalled, dead, or garbled replica (including one acking with
            # a malformed sequence) drops only its own stream; it reconnects
            # with REPL_HELLO and resumes from its sequence
            self._m_errors.inc(1, "repl_ship")
        finally:
            self._replica_gone(name)

    def _record_ack(self, name: str, seq: int) -> None:
        now = time.monotonic()
        with self._ack_cond:
            previous = self._replica_acks.get(name, (0, now))[0]
            self._replica_acks[name] = (max(previous, seq), now)
            self._ack_cond.notify_all()
        lag = max(0, self.changelog.last_seq - seq)
        self._m_replica_lag.set(lag, name)
        self._m_repl_last_seq.set(self.changelog.last_seq)

    def _replica_gone(self, name: str) -> None:
        with self._ack_cond:
            self._replica_acks.pop(name, None)
            self._ack_cond.notify_all()
        self._m_replicas_connected.dec()
        if self.tracer is not None:
            self.tracer.instant("repl.disconnect", "server", replica=name)

    def _await_replication(self, seq: int) -> None:
        """Block until ``sync_replicas`` replicas acknowledged ``seq``.

        With ``sync_replicas=0`` (the default) shipping is asynchronous and
        this returns immediately.  On timeout the write is *not* rolled back
        — it is durable locally — but the client gets a StorageError, i.e.
        the write is unacknowledged and the chaos harness treats it as
        allowed-to-be-lost."""
        if self.sync_replicas <= 0:
            return
        deadline = time.monotonic() + self.ack_timeout
        with self._ack_cond:
            while True:
                acked = sum(
                    1
                    for acked_seq, _ in self._replica_acks.values()
                    if acked_seq >= seq
                )
                if acked >= self.sync_replicas:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StorageError(
                        f"replication sync timeout: record #{seq} "
                        f"acknowledged by {acked} of the required "
                        f"{self.sync_replicas} replica(s) within "
                        f"{self.ack_timeout}s"
                    )
                self._ack_cond.wait(remaining)

    def apply_replicated(
        self,
        seq: int,
        kind: int,
        pred: str,
        payload: bytes,
        trace: Optional[str] = None,
    ) -> bool:
        """Apply one shipped record on a replica, sequence-gated.

        A duplicate (``seq`` at or below the applied horizon) is counted and
        dropped — re-shipping after a reconnect is idempotent.  A gap raises
        :class:`ProtocolError`, forcing a reconnect whose ``REPL_HELLO``
        names the exact sequence this replica needs: a replica can fall
        behind but never silently diverge.  Apply happens before the
        changelog append; on a crash between the two, boot-time replay of
        the changelog (the source of truth) reconverges, and the primary
        re-ships anything unacknowledged."""
        ctx = None
        if trace is not None:
            parent = TraceContext.from_wire(trace)
            if parent is not None and parent.sampled:
                ctx = parent.child()
        apply_started = SpanBuffer.now() if ctx is not None else 0.0
        with self._db_lock:
            last = self.changelog.last_seq
            if seq <= last:
                self._m_repl_events.inc(1, "duplicates")
                return False
            if seq != last + 1:
                raise ProtocolError(
                    f"replication gap: shipped record #{seq} but this "
                    f"replica has applied only #{last}"
                )
            record = ChangelogRecord(seq, kind, pred, payload)
            try:
                apply_record(self.session, record)
            except CoralError:
                # apply failed, nothing logged: the sequence did not move,
                # so the reconnect re-requests exactly this record
                self._m_errors.inc(1, "repl_apply")
                raise
            self.changelog.append(kind, pred, payload, seq=seq)
        self._m_repl_events.inc(1, "applied")
        self._refresh_replica_gauges()
        if self.tracer is not None:
            self.tracer.instant("repl.apply", "server", seq=seq)
        if ctx is not None:
            self.spans.record(
                ctx,
                "replica.apply",
                apply_started,
                SpanBuffer.now(),
                seq=seq,
                pred=pred,
            )
        return True

    def _op_promote(self, header) -> Dict[str, object]:
        return self.promote()

    def promote(self) -> Dict[str, object]:
        """Turn this replica into a writable primary (failover).

        Drains the apply queue first — the replication client finishes the
        record it is applying, then stops — so promotion never cuts an apply
        in half.  Idempotent: promoting a primary reports ``promoted:
        False``.  The new primary keeps its changelog and sequence, so
        surviving replicas re-pointed at it (:meth:`set_upstream`) resume
        exactly where they were."""
        if self.role == "primary":
            return {
                "ok": True,
                "role": "primary",
                "promoted": False,
                "last_seq": self.changelog.last_seq if self.changelog else 0,
            }
        if self.repl_client is not None:
            self.repl_client.stop()  # drains the in-flight apply
        self.role = "primary"
        self._m_repl_events.inc(1, "promotions")
        if self.tracer is not None:
            self.tracer.instant(
                "repl.promote", "server", last_seq=self.changelog.last_seq
            )
        return {
            "ok": True,
            "role": "primary",
            "promoted": True,
            "last_seq": self.changelog.last_seq,
        }

    def set_upstream(self, host: str, port: int) -> None:
        """Re-point this replica at a different primary (after a promotion
        elsewhere); the stream resumes from this replica's own sequence."""
        if self.repl_client is None:
            from ..replication.replica import ReplicationClient

            self.repl_client = ReplicationClient(self, (host, port))
            if self._serving:
                self.repl_client.start()
        else:
            self.repl_client.retarget((host, port))

    def replication_stats(self) -> Dict[str, object]:
        """The ``replication`` section of STATS, shaped by role."""
        if self.changelog is None:
            return {"role": self.role, "enabled": False}
        payload: Dict[str, object] = {
            "role": self.role,
            "enabled": True,
            "last_seq": self.changelog.last_seq,
        }
        with self._ack_cond:
            acks = dict(self._replica_acks)
        if acks or self.role == "primary":
            now = time.monotonic()
            payload["replicas"] = {
                name: {
                    "acked_seq": acked_seq,
                    "lag_records": max(0, self.changelog.last_seq - acked_seq),
                    "ack_age_seconds": round(now - at, 3),
                }
                for name, (acked_seq, at) in acks.items()
            }
            payload["sync_replicas"] = self.sync_replicas
        client = self.repl_client
        if client is not None:
            stalled = client.stalled_for()
            payload["upstream"] = {
                "address": f"{client.upstream[0]}:{client.upstream[1]}",
                "connected": client.connected,
                "upstream_seq": client.upstream_seq,
                "lag_records": client.lag_records(),
                "lag_seconds": round(stalled, 3) if stalled is not None else None,
                "reconnects": client.reconnects,
            }
        return payload

    # -- introspection -------------------------------------------------------

    def open_cursors(self) -> int:
        with self._state_lock:
            return sum(len(c.cursors) for c in self._connections.values())

    def _rates(self) -> Dict[str, float]:
        """Request/answer throughput over the trailing ``rate_window``
        seconds (clamped to actual uptime, so a young server's rates are
        not diluted by a window it has not lived through yet)."""
        now = time.perf_counter()
        horizon = now - self.rate_window
        recent = [item for item in self._recent if item[0] >= horizon]
        elapsed = max(1e-9, min(self.rate_window, now - self._started_at))
        return {
            "window_seconds": self.rate_window,
            "requests": len(recent),
            "requests_per_second": len(recent) / elapsed,
            "answers_per_second": sum(a for _, a in recent) / elapsed,
        }

    def _latency(self) -> Dict[str, Dict[str, object]]:
        """Per-op service-time percentiles from the request histogram."""
        out: Dict[str, Dict[str, object]] = {}
        for labels, snap in self._m_latency.collect().items():
            if snap["count"]:
                out[labels[0]] = {
                    "count": snap["count"],
                    "p50": snap["p50"],
                    "p90": snap["p90"],
                    "p99": snap["p99"],
                }
        return out

    def stats(self) -> Dict[str, object]:
        """The STATS payload: connection/cursor/request counters, trailing
        request rates and latency percentiles (what the shell's ``@top``
        renders), plus the shared session's evaluation statistics and the
        metrics registry."""
        with self._state_lock:
            connections = {
                "total": self._connections_total,
                "active": len(self._connections),
            }
            cursors = {
                "opened": self._cursors_opened,
                "closed": self._cursors_closed,
                "open": sum(
                    len(c.cursors) for c in self._connections.values()
                ),
            }
            requests_total = self._requests_total
        with self._db_lock:
            eval_stats = self.session.stats.snapshot()
            memo = getattr(self.session, "memo", None)
            memo_stats = memo.snapshot() if memo is not None else None
            live = getattr(self.session, "live", None)
            live_stats = live.snapshot() if live is not None else None
            buffer_stats = self.session.buffer_stats()
        if live_stats is not None:
            with self._state_lock:
                subs = [
                    sub
                    for c in self._connections.values()
                    for sub in c.subs.values()
                ]
            live_stats["queued"] = sum(len(s.queue) for s in subs)
            live_stats["deltas_sent"] = sum(s.deltas_sent for s in subs)
            live_stats["drops"] = sum(s.drops for s in subs)
            live_stats["resnapshots"] = sum(s.resnapshots for s in subs)
        payload = {
            "connections": connections,
            "cursors": cursors,
            "requests": requests_total,
            "role": self.role,
            "rates": self._rates(),
            "latency": self._latency(),
            "eval": eval_stats,
            "metrics": self.metrics.collect(),
            "trace": {
                "process": self.process_name,
                "sample_rate": self.trace_sampler.rate,
                "spans_recorded": self.spans.recorded,
                "spans_dropped": self.spans.dropped,
                "events_dropped": (
                    self.tracer.dropped if self.tracer is not None else 0
                ),
            },
        }
        if self.worker_index is not None:
            payload["worker"] = {
                "index": self.worker_index,
                "pid": os.getpid(),
                "router": self.worker_router,
            }
        if self.changelog is not None or self.repl_client is not None:
            payload["replication"] = self.replication_stats()
        if buffer_stats is not None:
            payload["buffer"] = buffer_stats
        if memo_stats is not None:
            payload["memo"] = memo_stats
        if live_stats is not None:
            payload["live"] = live_stats
        return payload
