"""The concurrent query server: one shared database, N client connections,
demand-driven answer streaming.

The paper's CORAL ran as an EXODUS *client* talking to a page server
(Section 2); our storage stand-in accounts that hop per page fault.  This
module supplies the complementary boundary the ROADMAP's "serve heavy
traffic" north star needs: a TCP server hosting one :class:`~repro.api.Session`
behind many concurrent connections, where each query opens a **server-side
cursor** and answers travel only when the client asks for them — the
get-next-tuple interface (Sections 3, 5.6) lifted onto the wire, batch by
batch.  A client that stops fetching stops server work (backpressure); a
client that disconnects mid-stream has its cursors closed exactly like any
abandoned evaluation (Section 5.4.3).

Concurrency model: one handler thread per connection
(``socketserver.ThreadingTCPServer``), all database work serialized under a
single lock.  Evaluation itself is single-threaded Python either way (and
the paper's CORAL was single-user); the lock is held per *request*, not per
connection, so many clients interleave at batch granularity — a slow
consumer never blocks the server, because between its fetches it holds
nothing.

Per-request resource limits reuse :class:`repro.eval.limits.ResourceLimits`:
the server's configured limits are cloned for every ``FETCH``/``QUERY``, so
each request gets a fresh timeout/tuple budget and one abusive query cannot
starve the rest beyond a single bounded request.

Observability: the server owns a :class:`repro.obs.MetricsRegistry`
(connection/request/cursor/answer counters, a request-latency histogram)
and, optionally, an :class:`repro.obs.EventTracer` recording per-connection
accept/request/close events.  Fault injection reuses :mod:`repro.faults`
with three new points — ``net.accept``, ``net.read``, ``net.write`` — so
chaos tests can kill connections at every I/O boundary.
"""

from __future__ import annotations

import socketserver
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple as PyTuple, Union

from ..api import Session
from ..api.session import QueryResult
from ..errors import CoralError, ProtocolError
from ..eval.limits import ResourceLimits
from ..faults import FaultInjector, SimulatedCrash
from ..language import Literal, parse_program, parse_query
from ..obs import EventTracer, FlightRecorder, MetricsRegistry, TelemetryServer
from ..storage.serde import encode_batch
from .protocol import (
    PROTOCOL_VERSION,
    read_frame,
    write_frame,
)

#: default answers per FETCH when the client does not say
DEFAULT_BATCH = 64


def query_variable_names(literal: Literal) -> List[str]:
    """The query's variable names in first-occurrence order (the order
    answer batches carry binding values on the wire)."""
    names: List[str] = []
    seen = set()
    for arg in literal.args:
        for var in arg.variables():
            if var.name != "_" and var.name not in seen:
                seen.add(var.name)
                names.append(var.name)
    return names


class _Cursor:
    """One server-side cursor: a lazy :class:`QueryResult` plus the wire
    metadata the client needs to decode its batches."""

    __slots__ = ("cursor_id", "result", "vars", "arity", "query")

    def __init__(
        self,
        cursor_id: int,
        result: QueryResult,
        variables: List[str],
        arity: int,
        query: str,
    ) -> None:
        self.cursor_id = cursor_id
        self.result = result
        self.vars = variables
        self.arity = arity
        self.query = query


class _Connection:
    """Per-connection server state: identity, handshake flag, open cursors."""

    __slots__ = ("conn_id", "peer", "peer_host", "greeted", "cursors")

    def __init__(self, conn_id: int, peer: str) -> None:
        self.conn_id = conn_id
        self.peer = peer
        # host only: the metric label for per-client counters (an ephemeral
        # port per connection would mint unbounded label series)
        self.peer_host = peer.rsplit(":", 1)[0] if ":" in peer else peer
        self.greeted = False
        self.cursors: Dict[int, _Cursor] = {}


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - thin shim, logic in server
        self.server.coral._handle_connection(self.request)


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    coral: "CoralServer"

    def handle_error(self, request, client_address) -> None:
        # an unhandled exception in one handler thread (e.g. an injected
        # SimulatedCrash) must neither kill the server nor spray a stack
        # trace; the connection's cursors were already freed by the
        # handler's finally block
        self.coral.metrics.counter(
            "server.errors", "request failures by kind", ("kind",)
        ).inc(1, "unhandled")


class CoralServer:
    """A TCP query server around one shared :class:`~repro.api.Session`.

    ::

        server = CoralServer(session, port=0)      # 0 = ephemeral
        server.start()                             # background thread
        host, port = server.address
        ... RemoteSession(host, port) ...
        server.shutdown()

    ``limits`` (a :class:`ResourceLimits`) is cloned per request so every
    ``FETCH`` gets a fresh timeout/tuple budget; ``faults`` threads a
    :class:`FaultInjector` through the ``net.*`` injection points;
    ``trace=True`` records per-connection events in ``server.tracer``.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        limits: Optional[ResourceLimits] = None,
        batch_size: int = DEFAULT_BATCH,
        faults: Optional[FaultInjector] = None,
        trace: bool = False,
        trace_limit: int = 100_000,
        telemetry_port: Optional[int] = None,
        telemetry_host: str = "127.0.0.1",
        flight: Union[None, bool, FlightRecorder] = None,
        rate_window: float = 30.0,
    ) -> None:
        self.session = session if session is not None else Session()
        self.limits = limits
        self.batch_size = batch_size
        self.faults = faults if faults is not None else FaultInjector()
        self.metrics = MetricsRegistry()
        self.tracer = EventTracer(limit=trace_limit) if trace else None
        #: the flight recorder surfaced at /debug/flight: an explicit one,
        #: True (install a fresh recorder on the session), or whatever the
        #: session already carries
        if flight is True:
            self.flight = (
                self.session.flight
                if self.session.flight is not None
                else self.session.enable_flight_recorder()
            )
        elif flight:
            self.flight = flight
        else:
            self.flight = self.session.flight
        #: rate-windowed request history for STATS (the @top dashboard):
        #: (perf_counter, answers) per request, bounded
        self.rate_window = rate_window
        self._recent: deque = deque(maxlen=8192)
        self._started_at = time.perf_counter()
        #: the /metrics—/healthz—/debug/flight endpoint (None = disabled)
        self.telemetry: Optional[TelemetryServer] = None
        if telemetry_port is not None:
            self.telemetry = TelemetryServer(
                port=telemetry_port,
                host=telemetry_host,
                registries=[self.metrics],
                flight=self.flight,
                health=self._health,
            )
        #: serializes all database work (parse, evaluate, update)
        self._db_lock = threading.RLock()
        #: guards the connection/cursor registry (never held during eval)
        self._state_lock = threading.Lock()
        self._connections: Dict[int, _Connection] = {}
        self._next_conn = 0
        self._next_cursor = 0
        self._requests_total = 0
        self._connections_total = 0
        self._cursors_opened = 0
        self._cursors_closed = 0
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.coral = self
        self._thread: Optional[threading.Thread] = None
        self._serving = False

        m = self.metrics
        self._m_conns = m.counter("server.connections.total", "connections accepted")
        self._m_active = m.gauge("server.connections.active", "open connections")
        self._m_requests = m.counter("server.requests", "requests by op", ("op",))
        self._m_errors = m.counter("server.errors", "request failures by kind", ("kind",))
        self._m_latency = m.histogram(
            "server.request.seconds", "request service time", ("op",)
        )
        self._m_cursors_opened = m.counter("server.cursors.opened", "cursors opened")
        self._m_cursors_closed = m.counter("server.cursors.closed", "cursors closed")
        self._m_cursors_open = m.gauge("server.cursors.open", "cursors currently open")
        self._m_pulls = m.counter(
            "server.cursor.pulls", "answers pulled from evaluation (get-next calls)"
        )
        self._m_answers = m.counter("server.answers.sent", "answers shipped to clients")
        # per-client host (not host:port — an ephemeral port per connection
        # would mint unbounded label series) and per-query-predicate labels
        self._m_client_requests = m.counter(
            "server.client.requests", "requests by client host", ("client",)
        )
        self._m_query_preds = m.counter(
            "server.query.predicates",
            "cursors opened per query predicate", ("pred",),
        )

    def _health(self) -> PyTuple[bool, str]:
        if self._serving:
            return True, "serving"
        return False, "not serving"

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> PyTuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return host, port

    @property
    def telemetry_address(self) -> Optional[PyTuple[str, int]]:
        return self.telemetry.address if self.telemetry is not None else None

    def start(self) -> "CoralServer":
        """Serve in a daemon thread; returns immediately."""
        if self._thread is not None:
            raise ProtocolError("server already started")
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="coral-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._started_at = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.start()
        self._tcp.serve_forever(poll_interval=0.05)

    def shutdown(self) -> None:
        """Stop accepting, close the listening socket, free all cursors."""
        if self.telemetry is not None:
            self.telemetry.shutdown()
        if self._serving:
            # BaseServer.shutdown blocks forever if serve_forever never ran
            self._tcp.shutdown()
            self._serving = False
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._state_lock:
            leftovers = list(self._connections.values())
            self._connections.clear()
        for conn in leftovers:
            self._free_cursors(conn)

    def __enter__(self) -> "CoralServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- connection loop -----------------------------------------------------

    def _handle_connection(self, sock) -> None:
        try:
            self.faults.check("net.accept")
        except OSError:
            self._m_errors.inc(1, "accept")
            return
        conn = self._register(sock)
        try:
            while True:
                try:
                    self.faults.check("net.read")
                    frame = read_frame(sock)
                except (ProtocolError, OSError):
                    # client vanished or spoke garbage mid-frame: drop it
                    self._m_errors.inc(1, "read")
                    return
                if frame is None:
                    return  # clean EOF
                header, body = frame
                if not self._serve_request(conn, sock, header, body):
                    return
        finally:
            self._unregister(conn)

    def _serve_request(self, conn, sock, header, body) -> bool:
        """Dispatch one request and send its response; False ends the
        connection (BYE, handshake refusal, or a dead socket)."""
        op = str(header.get("op", ""))
        started = time.perf_counter()
        keep_going = True
        try:
            response, rbody, keep_going = self._dispatch(conn, op, header, body)
        except SimulatedCrash:
            raise  # chaos tests: nothing may swallow a simulated crash
        except CoralError as exc:
            self._m_errors.inc(1, type(exc).__name__)
            response = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
            rbody = b""
        self._m_requests.inc(1, op or "?")
        self._m_client_requests.inc(1, conn.peer_host)
        self._m_latency.observe(time.perf_counter() - started, op or "?")
        answers = response.get("count", 0) if op == "FETCH" else 0
        # deque.append is atomic; stats() filters by age against rate_window
        self._recent.append((time.perf_counter(), answers))
        if self.tracer is not None:
            self.tracer.complete(
                f"request.{op or '?'}", "server", started, conn=conn.conn_id
            )
        try:
            self.faults.check("net.write")
            write_frame(sock, response, rbody)
        except (ProtocolError, OSError):
            self._m_errors.inc(1, "write")
            return False
        return keep_going

    def _register(self, sock) -> _Connection:
        try:
            peer = "%s:%s" % sock.getpeername()[:2]
        except OSError:
            peer = "?"
        with self._state_lock:
            self._next_conn += 1
            conn = _Connection(self._next_conn, peer)
            self._connections[conn.conn_id] = conn
            self._connections_total += 1
        self._m_conns.inc()
        self._m_active.inc()
        if self.tracer is not None:
            self.tracer.instant("net.accept", "server", conn=conn.conn_id, peer=peer)
        return conn

    def _unregister(self, conn: _Connection) -> None:
        with self._state_lock:
            self._connections.pop(conn.conn_id, None)
        self._free_cursors(conn)
        self._m_active.dec()
        if self.tracer is not None:
            self.tracer.instant("net.close", "server", conn=conn.conn_id)

    def _free_cursors(self, conn: _Connection) -> None:
        for cursor in list(conn.cursors.values()):
            self._close_cursor(conn, cursor.cursor_id)

    def _close_cursor(self, conn: _Connection, cursor_id: int) -> bool:
        cursor = conn.cursors.pop(cursor_id, None)
        if cursor is None:
            return False
        with self._db_lock:
            cursor.result.close()
        with self._state_lock:
            self._cursors_closed += 1
        self._m_cursors_closed.inc()
        self._m_cursors_open.dec()
        return True

    # -- request dispatch ----------------------------------------------------

    def _dispatch(
        self, conn: _Connection, op: str, header, body
    ) -> PyTuple[Dict[str, object], bytes, bool]:
        with self._state_lock:
            self._requests_total += 1
        if not conn.greeted:
            if op != "HELLO":
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": f"first request must be HELLO, got {op!r}",
                    },
                    b"",
                    False,
                )
            version = header.get("version")
            if version != PROTOCOL_VERSION:
                return (
                    {
                        "ok": False,
                        "error": "ProtocolError",
                        "message": (
                            f"protocol version mismatch: client speaks "
                            f"{version!r}, server speaks {PROTOCOL_VERSION}"
                        ),
                    },
                    b"",
                    False,
                )
            conn.greeted = True
            return (
                {
                    "ok": True,
                    "server": "repro.server/1",
                    "version": PROTOCOL_VERSION,
                },
                b"",
                True,
            )
        if op == "BYE":
            self._free_cursors(conn)
            return {"ok": True, "bye": True}, b"", False
        if op == "QUERY":
            return self._op_query(conn, header), b"", True
        if op == "FETCH":
            return self._op_fetch(conn, header) + (True,)
        if op == "CLOSE_CURSOR":
            cursor_id = int(header.get("cursor", -1))
            closed = self._close_cursor(conn, cursor_id)
            return {"ok": True, "closed": closed}, b"", True
        if op == "CONSULT":
            return self._op_consult(conn, header), b"", True
        if op == "INSERT":
            return self._op_update(header, insert=True), b"", True
        if op == "DELETE":
            return self._op_update(header, insert=False), b"", True
        if op == "STATS":
            return {"ok": True, "stats": self.stats()}, b"", True
        raise ProtocolError(f"unknown request op {op!r}")

    def _open_cursor(
        self,
        conn: _Connection,
        literal: Literal,
        query_text: str,
        result: Optional[QueryResult] = None,
    ) -> _Cursor:
        if result is None:
            result = self.session.query_literal(literal)
        if self.limits is not None:
            result.set_limits(self.limits.clone())
        with self._state_lock:
            self._next_cursor += 1
            self._cursors_opened += 1
            cursor = _Cursor(
                self._next_cursor,
                result,
                query_variable_names(literal),
                literal.arity,
                query_text,
            )
        conn.cursors[cursor.cursor_id] = cursor
        self._m_cursors_opened.inc()
        self._m_cursors_open.inc()
        self._m_query_preds.inc(1, f"{literal.pred}/{literal.arity}")
        return cursor

    def _op_query(self, conn: _Connection, header) -> Dict[str, object]:
        text = str(header.get("query", ""))
        with self._db_lock:
            literal = parse_query(text).literal
            cursor = self._open_cursor(conn, literal, text)
        return {
            "ok": True,
            "cursor": cursor.cursor_id,
            "vars": cursor.vars,
            "arity": cursor.arity,
        }

    def _op_consult(self, conn: _Connection, header) -> Dict[str, object]:
        source = str(header.get("source", ""))
        with self._db_lock:
            program = parse_program(source)
            if any(c.name == "consult" for c in program.commands):
                raise ProtocolError(
                    "remote consult may not read server-side files"
                )
            results = self.session.load_program(program)
            opened = []
            for query, result in zip(program.queries, results):
                literal = query.literal
                cursor = self._open_cursor(
                    conn, literal, str(literal), result=result
                )
                opened.append(
                    {
                        "cursor": cursor.cursor_id,
                        "vars": cursor.vars,
                        "arity": cursor.arity,
                    }
                )
        return {"ok": True, "cursors": opened}

    def _op_fetch(
        self, conn: _Connection, header
    ) -> PyTuple[Dict[str, object], bytes]:
        cursor_id = int(header.get("cursor", -1))
        cursor = conn.cursors.get(cursor_id)
        if cursor is None:
            raise ProtocolError(f"unknown cursor {cursor_id}")
        limit = int(header.get("max", self.batch_size))
        if limit < 1:
            raise ProtocolError(f"FETCH max must be >= 1, got {limit}")
        rows = []
        done = False
        with self._db_lock:
            if self.limits is not None:
                cursor.result.set_limits(self.limits.clone())
            try:
                for _ in range(limit):
                    answer = cursor.result.get_next()
                    self._m_pulls.inc()
                    if answer is None:
                        done = True
                        break
                    row = list(answer.tuple.args)
                    for name in cursor.vars:
                        row.append(answer.term(name))
                    rows.append(row)
            except CoralError:
                # evaluation died (limits, storage, non-primitive answer):
                # the cursor's state is unusable — free it, then report
                self._close_cursor(conn, cursor_id)
                raise
        try:
            body = encode_batch(rows)
        except CoralError:
            self._close_cursor(conn, cursor_id)
            raise
        if done:
            self._close_cursor(conn, cursor_id)
        self._m_answers.inc(len(rows))
        return (
            {"ok": True, "cursor": cursor_id, "count": len(rows), "done": done},
            body,
        )

    def _op_update(self, header, insert: bool) -> Dict[str, object]:
        pred = str(header.get("pred", ""))
        values = header.get("values", [])
        if not pred or not isinstance(values, list):
            raise ProtocolError("INSERT/DELETE need a pred and a values list")
        with self._db_lock:
            if insert:
                changed = self.session.insert(pred, *values)
            else:
                changed = self.session.delete(pred, *values)
        return {"ok": True, "changed": bool(changed)}

    # -- introspection -------------------------------------------------------

    def open_cursors(self) -> int:
        with self._state_lock:
            return sum(len(c.cursors) for c in self._connections.values())

    def _rates(self) -> Dict[str, float]:
        """Request/answer throughput over the trailing ``rate_window``
        seconds (clamped to actual uptime, so a young server's rates are
        not diluted by a window it has not lived through yet)."""
        now = time.perf_counter()
        horizon = now - self.rate_window
        recent = [item for item in self._recent if item[0] >= horizon]
        elapsed = max(1e-9, min(self.rate_window, now - self._started_at))
        return {
            "window_seconds": self.rate_window,
            "requests": len(recent),
            "requests_per_second": len(recent) / elapsed,
            "answers_per_second": sum(a for _, a in recent) / elapsed,
        }

    def _latency(self) -> Dict[str, Dict[str, object]]:
        """Per-op service-time percentiles from the request histogram."""
        out: Dict[str, Dict[str, object]] = {}
        for labels, snap in self._m_latency.collect().items():
            if snap["count"]:
                out[labels[0]] = {
                    "count": snap["count"],
                    "p50": snap["p50"],
                    "p90": snap["p90"],
                    "p99": snap["p99"],
                }
        return out

    def stats(self) -> Dict[str, object]:
        """The STATS payload: connection/cursor/request counters, trailing
        request rates and latency percentiles (what the shell's ``@top``
        renders), plus the shared session's evaluation statistics and the
        metrics registry."""
        with self._state_lock:
            connections = {
                "total": self._connections_total,
                "active": len(self._connections),
            }
            cursors = {
                "opened": self._cursors_opened,
                "closed": self._cursors_closed,
                "open": sum(
                    len(c.cursors) for c in self._connections.values()
                ),
            }
            requests_total = self._requests_total
        with self._db_lock:
            eval_stats = self.session.stats.snapshot()
            memo = getattr(self.session, "memo", None)
            memo_stats = memo.snapshot() if memo is not None else None
            buffer_stats = self.session.buffer_stats()
        payload = {
            "connections": connections,
            "cursors": cursors,
            "requests": requests_total,
            "rates": self._rates(),
            "latency": self._latency(),
            "eval": eval_stats,
            "metrics": self.metrics.collect(),
        }
        if buffer_stats is not None:
            payload["buffer"] = buffer_stats
        if memo_stats is not None:
            payload["memo"] = memo_stats
        return payload
