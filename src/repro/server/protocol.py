"""The wire protocol: length-prefixed frames carrying a JSON header and an
optional binary tuple batch.

CORAL ran over the EXODUS storage manager's client-server architecture
(paper Section 2); this module makes that hop real for *queries* rather than
pages.  The central design choice mirrors the paper's uniform get-next-tuple
interface (Sections 3, 5.6): a query opens a **server-side cursor**, and the
client pulls answers in batches with ``FETCH`` — a client that stops
fetching stops server work.

Frame layout (all integers big-endian)::

    +-----------+------------+----------------------+---------------+
    | u32 total | u32 hdrlen | header: JSON (UTF-8) | body: bytes   |
    +-----------+------------+----------------------+---------------+

``total`` counts everything after itself (4 + hdrlen + len(body)).  The
header is a JSON object; requests carry ``{"op": ...}``, responses carry
``{"ok": true/false}``.  The body, when present, is a tuple batch in the
*storage* codec (:func:`repro.storage.serde.encode_batch`) — the same
versioned, magic-prefixed encoding used for heap records, so the disk
format and the wire format cannot drift apart.

Request ops (client to server)::

    HELLO         version handshake; must be the first frame
    CONSULT       load program text into the shared database; contained
                  queries become cursors
    QUERY         open a cursor for one query string
    FETCH         pull up to `max` answers from a cursor
    CLOSE_CURSOR  abandon a cursor early (Section 5.4.3 on the wire)
    INSERT        add one base fact
    DELETE        remove one base fact
    SUBSCRIBE     register a live query (repro.live): the response carries
                  a subscription id and the initial snapshot as its body
    DELTA         long-poll one subscription's delta queue: the response
                  carries +/- signs in the header and the tuples in the
                  body; kind "resnapshot" replaces the client's folded
                  state after the bounded queue overflowed; kind "none"
                  is an empty poll (timeout), kind "closed" a server-side
                  teardown
    UNSUBSCRIBE   deregister a live query
    STATS         server counters: connections, cursors, requests, metrics
    TRACE         the spans a process recorded under one distributed trace
                  id (header ``id``); a shard router answers with the whole
                  fleet's spans (repro.obs.disttrace; docs/OBSERVABILITY.md)
    REPL_HELLO    enter the replication stream: the sender is a replica,
                  the header carries its last applied changelog sequence
    PROMOTE       turn a read replica into a writable primary (failover)
    WORKER_HELLO  the sender is a shard router (repro.sharding) claiming
                  this server as worker #N of its fleet; the response
                  carries the worker's pid and role so the supervisor can
                  verify it is talking to a live, freshly-booted process
    BYE           clean goodbye; the server closes the connection

After a successful ``REPL_HELLO`` the roles on the socket invert: the
*server* (a primary) pushes ``REPL_SHIP`` frames — one changelog record or
heartbeat each, the body carrying the record payload in the storage batch
codec — and the *client* (a replica) answers each with ``REPL_ACK`` carrying
its applied sequence.  See docs/REPLICATION.md.

Every request header (and ``REPL_SHIP``) may additionally carry an
**optional** ``trace`` field: a W3C-traceparent-style string
(``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``, flag bit 0x01 =
sampled) propagating a distributed trace context across hops — client to
router to workers, primary to replicas (:mod:`repro.obs.disttrace`).  The
field is fully backward compatible: old clients omit it, old servers
ignore it, and a malformed value is treated as absent rather than failing
the request.  The protocol version is unchanged.

Error responses carry ``{"ok": false, "error": <class name>, "message":
...}``; the client re-raises the matching :class:`~repro.errors.CoralError`
subclass, so remote failures look exactly like local ones.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Tuple as PyTuple

from ..errors import ProtocolError

#: protocol version spoken by this build; HELLO negotiates equality
PROTOCOL_VERSION = 1

#: refuse frames larger than this (a garbage length prefix must not
#: trigger a gigabyte allocation)
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: every legal request op, in lifecycle order
REQUEST_OPS = (
    "HELLO",
    "CONSULT",
    "QUERY",
    "FETCH",
    "CLOSE_CURSOR",
    "INSERT",
    "DELETE",
    "SUBSCRIBE",
    "DELTA",
    "UNSUBSCRIBE",
    "STATS",
    "TRACE",
    "REPL_HELLO",
    "PROMOTE",
    "WORKER_HELLO",
    "BYE",
)

#: frames exchanged on an established replication stream (server pushes
#: REPL_SHIP, the replica answers REPL_ACK) — not request ops
STREAM_OPS = ("REPL_SHIP", "REPL_ACK")


class FrameTimeout(Exception):
    """The socket timed out before *any* byte of the next frame arrived.

    Deliberately not a :class:`~repro.errors.CoralError`: this is the idle
    case, not an error — the server's connection loop uses it to poll its
    idle-reaping deadline, and ship loops use it to pace heartbeats.  A
    timeout *mid*-frame (some bytes arrived, then silence) still raises
    :class:`ProtocolError`: that peer is wedged, not idle.
    """


def encode_frame(header: Dict[str, object], body: bytes = b"") -> bytes:
    """One wire frame from a JSON-able header and an optional binary body."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    total = 4 + len(header_bytes) + len(body)
    if total > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {total} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return b"".join(
        (struct.pack(">II", total, len(header_bytes)), header_bytes, body)
    )


def decode_frame(payload: bytes) -> PyTuple[Dict[str, object], bytes]:
    """Split a frame payload (everything after the total-length prefix)
    back into its header dict and body bytes."""
    if len(payload) < 4:
        raise ProtocolError("truncated frame: missing header length")
    (header_len,) = struct.unpack_from(">I", payload, 0)
    if 4 + header_len > len(payload):
        raise ProtocolError(
            f"truncated frame: header claims {header_len} bytes, "
            f"{len(payload) - 4} available"
        )
    try:
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header, payload[4 + header_len :]


def _recv_exact(
    sock: socket.socket, count: int, idle_ok: bool = False
) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on clean EOF at a frame
    boundary.  EOF mid-frame raises :class:`ProtocolError`.

    With ``idle_ok`` a socket timeout before the *first* byte raises
    :class:`FrameTimeout` (nothing was consumed; the caller may retry);
    any timeout after bytes arrived — or without ``idle_ok`` — raises
    :class:`ProtocolError`, because half a frame followed by silence is a
    wedged peer, not an idle one.
    """
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            if idle_ok and remaining == count:
                raise FrameTimeout() from exc
            raise ProtocolError(
                f"connection timed out mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            ) from exc
        except OSError as exc:
            raise ProtocolError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
) -> Optional[PyTuple[Dict[str, object], bytes]]:
    """Read one frame; None on clean EOF before any bytes of a frame.

    On a socket with a timeout configured, raises :class:`FrameTimeout`
    when the timeout expires with *no* bytes of a frame read — the idle
    case — and :class:`ProtocolError` when it expires mid-frame.
    """
    prefix = _recv_exact(sock, 4, idle_ok=True)
    if prefix is None:
        return None
    (total,) = struct.unpack(">I", prefix)
    if total < 4 or total > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {total}")
    payload = _recv_exact(sock, total)
    if payload is None:
        raise ProtocolError("connection closed between length prefix and frame")
    return decode_frame(payload)


def write_frame(
    sock: socket.socket, header: Dict[str, object], body: bytes = b""
) -> None:
    try:
        sock.sendall(encode_frame(header, body))
    except OSError as exc:
        raise ProtocolError(f"connection lost while sending: {exc}") from exc
