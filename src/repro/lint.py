"""Static program checking — the paper's acknowledged gap, filled.

Section 9, under "On the negative side": *"CORAL makes no effort to use type
information in its processing.  No type checking or inferencing is performed
at compile-time, and errors due to type mismatches lead to subtle run-time
errors."*  This module implements the compile-time checks CORAL's authors
wished they had, as warnings a session (or the shell's ``@check.`` command)
can surface before evaluation:

* **unknown predicate** — a body literal that no rule defines, no module
  exports, no base facts populate, and no builtin implements: almost always
  a typo, and exactly the class of mistake that otherwise surfaces as an
  empty answer set;
* **arity clash** — the same predicate name used at two different arities
  (legal, but usually an arity mistake);
* **singleton variable** — a named variable occurring exactly once in a
  rule: either dead or a misspelling of another variable;
* **unsafe rule** — a head variable bound by no positive body literal: the
  rule derives non-ground facts, which CORAL *supports* (Section 3.1) but
  which is more often an accident than an intention;
* **unsafe negation / comparison** — a variable appearing only under
  negation or only in a comparison, which can never be bound when the
  literal is evaluated;
* **type conflict** — a predicate argument position that is used with
  constants of two different primitive types across the program's facts
  and rule constants (the paper's "subtle run-time errors" case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from .language.ast import ModuleDecl, Program, Rule
from .terms import Arg, Atom, Double, Int, Str, Var

PredKey = PyTuple[str, int]

#: finding severities
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Finding:
    severity: str
    code: str
    message: str
    module: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.module}]" if self.module else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


def _constant_type(arg: Arg) -> Optional[str]:
    if isinstance(arg, Int):
        return "integer"
    if isinstance(arg, Double):
        return "double"
    if isinstance(arg, Str):
        return "string"
    if isinstance(arg, Atom):
        return "atom"
    return None


class ProgramChecker:
    """Runs all checks over a parsed program plus session context."""

    def __init__(
        self,
        known_predicates: Optional[Set[PredKey]] = None,
        is_builtin=None,
    ) -> None:
        #: predicates known to exist outside the program being checked
        #: (base relations, other modules' exports)
        self.known = set(known_predicates or ())
        self.is_builtin = is_builtin or (lambda name, arity: False)

    # -- entry points --------------------------------------------------------

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        defined: Set[PredKey] = set(self.known)
        for fact in program.facts:
            defined.add(fact.head.key)
        for module in program.modules:
            defined.update(module.defined_predicates())
        arities: Dict[str, Set[int]] = {}
        for name, arity in defined:
            arities.setdefault(name, set()).add(arity)
        column_types: Dict[PyTuple[str, int, int], Set[str]] = {}

        for fact in program.facts:
            self._note_types(fact, column_types)
        for module in program.modules:
            for rule in module.rules:
                self._note_types(rule, column_types)
                findings.extend(
                    self._check_rule(rule, module.name, defined, arities)
                )
        findings.extend(self._type_conflicts(column_types))
        return findings

    def check_module(self, module: ModuleDecl) -> List[Finding]:
        program = Program(modules=[module])
        return self.check_program(program)

    # -- individual checks ------------------------------------------------------

    def _check_rule(
        self,
        rule: Rule,
        module_name: str,
        defined: Set[PredKey],
        arities: Dict[str, Set[int]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._unknown_predicates(rule, module_name, defined, arities))
        findings.extend(self._singletons(rule, module_name))
        findings.extend(self._safety(rule, module_name))
        return findings

    def _unknown_predicates(self, rule, module_name, defined, arities):
        findings = []
        for literal in rule.body:
            key = literal.key
            if (
                key in defined
                or self.is_builtin(literal.pred, literal.arity)
            ):
                continue
            other_arities = arities.get(literal.pred, set())
            if other_arities:
                findings.append(
                    Finding(
                        WARNING,
                        "arity-clash",
                        f"{literal.pred} is used with arity {literal.arity} "
                        f"in `{rule}` but defined with arity "
                        f"{sorted(other_arities)}",
                        module_name,
                    )
                )
            else:
                findings.append(
                    Finding(
                        WARNING,
                        "unknown-predicate",
                        f"{literal.pred}/{literal.arity} in `{rule}` is not "
                        f"defined by any rule, fact, export, or builtin",
                        module_name,
                    )
                )
        return findings

    def _singletons(self, rule: Rule, module_name: str) -> List[Finding]:
        occurrences: Dict[int, int] = {}
        names: Dict[int, str] = {}
        terms = list(rule.head.args) + [
            arg for literal in rule.body for arg in literal.args
        ] + [aggregation.expr for _p, aggregation in rule.head_aggregates]
        for term in terms:
            for var in term.variables():
                occurrences[var.vid] = occurrences.get(var.vid, 0) + 1
                names[var.vid] = var.name
        findings = []
        for vid, count in occurrences.items():
            name = names[vid]
            if count == 1 and name != "_" and not name.startswith("_"):
                findings.append(
                    Finding(
                        WARNING,
                        "singleton-variable",
                        f"variable {name} occurs only once in `{rule}` "
                        f"(use _ if intentional)",
                        module_name,
                    )
                )
        return findings

    def _safety(self, rule: Rule, module_name: str) -> List[Finding]:
        findings = []
        positive_vids: Set[int] = set()
        for literal in rule.body:
            if not literal.negated and not self.is_builtin(
                literal.pred, literal.arity
            ):
                for arg in literal.args:
                    positive_vids.update(v.vid for v in arg.variables())
        # '=' can bind its variables too
        for literal in rule.body:
            if literal.pred == "=" and not literal.negated:
                for arg in literal.args:
                    positive_vids.update(v.vid for v in arg.variables())

        aggregate_positions = {p for p, _a in rule.head_aggregates}
        for position, arg in enumerate(rule.head.args):
            if position in aggregate_positions:
                continue
            for var in arg.variables():
                if var.vid not in positive_vids and rule.body:
                    findings.append(
                        Finding(
                            WARNING,
                            "unsafe-rule",
                            f"head variable {var.name} of `{rule}` is not "
                            f"bound by any positive body literal: the rule "
                            f"derives non-ground facts",
                            module_name,
                        )
                    )
        for literal in rule.body:
            if literal.negated:
                for arg in literal.args:
                    for var in arg.variables():
                        if var.vid not in positive_vids:
                            findings.append(
                                Finding(
                                    WARNING,
                                    "unsafe-negation",
                                    f"variable {var.name} occurs only under "
                                    f"negation in `{rule}`",
                                    module_name,
                                )
                            )
        return findings

    def _note_types(self, rule: Rule, column_types) -> None:
        literals = [rule.head] + list(rule.body)
        for literal in literals:
            if self.is_builtin(literal.pred, literal.arity):
                continue
            for position, arg in enumerate(literal.args):
                type_name = _constant_type(arg)
                if type_name is not None:
                    column_types.setdefault(
                        (literal.pred, literal.arity, position), set()
                    ).add(type_name)

    def _type_conflicts(self, column_types) -> List[Finding]:
        findings = []
        for (pred, arity, position), types in sorted(column_types.items()):
            meaningful = types - {"atom"} if len(types) > 1 else types
            if len(meaningful) > 1:
                findings.append(
                    Finding(
                        WARNING,
                        "type-conflict",
                        f"argument {position + 1} of {pred}/{arity} is used "
                        f"with {' and '.join(sorted(types))} constants",
                    )
                )
        return findings


def check_source(source: str, session=None) -> List[Finding]:
    """Parse and check a program text; with a session, its base relations,
    exports, and builtins count as known predicates."""
    from .language import parse_program

    program = parse_program(source)
    known: Set[PredKey] = set()
    is_builtin = None
    if session is not None:
        known.update(session.ctx.base_relations.keys())
        known.update(session.modules.exports.keys())
        is_builtin = session.ctx.is_builtin
    return ProgramChecker(known, is_builtin).check_program(program)
