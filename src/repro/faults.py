"""Deterministic fault injection for the storage manager.

The paper delegates transactions and crash recovery to the EXODUS toolkit
(Section 2: *"Transactions and concurrency control are supported by the
EXODUS toolkit, and thus by CORAL"*), so our EXODUS stand-in has to earn
that contract.  This module provides the machinery the crash tests use to
prove it: a :class:`FaultInjector` that the storage layers consult at named
*injection points*, with deterministic schedules of the form "crash at the
Nth write", "fail the Kth fsync with an I/O error", or "tear this page write
after B bytes".

Injection points (all consulted via :meth:`FaultInjector.check`):

========================== ====================================================
point                      where it fires
========================== ====================================================
``disk.read_page``         :meth:`DiskFile.read_page`, before the read
``disk.write_page``        :meth:`DiskFile.write_page`, before the write
                           (supports ``tear_at``: a partial write, then crash)
``disk.allocate``          :meth:`DiskFile.allocate_page`, before extending
``disk.sync``              :meth:`DiskFile.sync`, before the fsync
``disk.truncate``          :meth:`DiskFile.truncate`, before shrinking
``journal.record``         :class:`UndoJournal` entry append, before writing
                           (supports ``tear_at``: a torn journal entry)
``journal.sync``           the journal fsync after each entry
``buffer.writeback``       :class:`BufferPool` eviction write-back
``buffer.flush``           each dirty write in :meth:`BufferPool.flush_all`
``server.write_page``      :meth:`StorageServer.write_page`, before
                           before-image logging
``server.commit``          :meth:`commit_transaction`, before the final sync
``server.commit.cleanup``  after the commit sync, before journal removal
``server.abort``           :meth:`abort_transaction`, before undo starts
``server.recover.start``   recovery, after the journal was found
``server.recover.entry``   recovery, before applying each before-image
``server.recover.cleanup`` recovery, before the recovered journal is removed
``net.accept``             :mod:`repro.server`, after accepting a connection
``net.read``               before reading a request frame from a client
``net.write``              before writing a response frame to a client
``repl.log``               :class:`~repro.replication.Changelog` append, before
                           the record reaches the changelog (primary side)
``repl.ship``              the primary's ship loop, before sending one
                           ``REPL_SHIP`` frame to a replica
``repl.ack``               the primary's ship loop, before waiting for the
                           replica's ``REPL_ACK``
``repl.apply``             the replica, before applying one shipped record
========================== ====================================================

The three ``net.*`` points sit at the query server's I/O boundaries
(:mod:`repro.server`); a *fail* there simulates a client that died or a
socket reset mid-stream — the server must drop only that connection (and
free its cursors) while continuing to serve everyone else.

A *crash* raises :class:`SimulatedCrash`; the test harness abandons the
server object (exactly what a process kill does to in-memory state) and
reopens the directory, which runs recovery.  A *fail* raises ``OSError``
inside the storage layer, exercising the layer's error wrapping (every
``OSError`` must surface as :class:`~repro.errors.StorageError`).  A *tear*
performs a prefix of the write and then crashes — the torn-page / torn-log
cases real disks produce on power loss.

The injector also counts every point it passes through (``counts``), which
is how the crash sweep enumerates its schedules: run the workload once with
a passive injector to learn how often each point is reached, then re-run it
once per (point, hit) pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Every named injection point, in stack order.  These names double as the
#: storage *trace event* names emitted by :mod:`repro.obs` — a profiler
#: installs itself as the injector's ``observer`` and receives one callback
#: per arrival, so a Chrome trace and a crash schedule share one vocabulary
#: (docs/OBSERVABILITY.md cross-links the two).
INJECTION_POINTS = (
    "disk.read_page",
    "disk.write_page",
    "disk.allocate",
    "disk.sync",
    "disk.truncate",
    "journal.record",
    "journal.sync",
    "buffer.writeback",
    "buffer.flush",
    "server.write_page",
    "server.commit",
    "server.commit.cleanup",
    "server.abort",
    "server.recover.start",
    "server.recover.entry",
    "server.recover.cleanup",
    "net.accept",
    "net.read",
    "net.write",
    "repl.log",
    "repl.ship",
    "repl.ack",
    "repl.apply",
)


class SimulatedCrash(Exception):
    """An injected process crash.

    Deliberately *not* a :class:`~repro.errors.CoralError`: application code
    catching ``CoralError`` must never swallow a simulated crash, just as it
    could not swallow a real ``kill -9``.
    """


class _Rule:
    """One scheduled fault: fire ``action`` on the ``hit``-th arrival."""

    __slots__ = ("point", "hit", "action", "keep_bytes", "message", "fired")

    def __init__(
        self,
        point: str,
        hit: int,
        action: str,
        keep_bytes: int = 0,
        message: str = "",
    ) -> None:
        if hit < 1:
            raise ValueError(f"fault hit counts are 1-based, got {hit}")
        self.point = point
        self.hit = hit
        self.action = action
        self.keep_bytes = keep_bytes
        self.message = message
        self.fired = False

    def __repr__(self) -> str:
        return f"<{self.action}@{self.point}#{self.hit}>"


class FaultInjector:
    """Named injection points with deterministic one-shot schedules.

    With no schedules installed the injector only counts arrivals, so a
    single (shared) instance can always be threaded through the storage
    stack at negligible cost.
    """

    def __init__(self) -> None:
        #: arrivals per point, over the injector's lifetime
        self.counts: Dict[str, int] = {}
        self._rules: Dict[str, List[_Rule]] = {}
        #: optional observability hook (a repro.obs Profiler): receives
        #: ``storage_event(point)`` per arrival while installed; None = off
        self.observer = None

    # -- scheduling ----------------------------------------------------------

    def crash_at(self, point: str, hit: int = 1) -> "FaultInjector":
        """Simulate a process crash the ``hit``-th time ``point`` is reached."""
        self._add(_Rule(point, hit, "crash"))
        return self

    def fail_at(
        self, point: str, hit: int = 1, message: str = "injected I/O failure"
    ) -> "FaultInjector":
        """Raise ``OSError`` (e.g. a failed fsync or a full disk) at the
        ``hit``-th arrival; the storage layer must wrap it as StorageError."""
        self._add(_Rule(point, hit, "fail", message=message))
        return self

    def tear_at(
        self, point: str, hit: int = 1, keep_bytes: int = 0
    ) -> "FaultInjector":
        """Tear the ``hit``-th write at ``point``: only the first
        ``keep_bytes`` bytes reach the file, then the process crashes."""
        self._add(_Rule(point, hit, "tear", keep_bytes=keep_bytes))
        return self

    def _add(self, rule: _Rule) -> None:
        self._rules.setdefault(rule.point, []).append(rule)

    def reset(self) -> None:
        """Clear all schedules and counters."""
        self.counts.clear()
        self._rules.clear()

    # -- the hook the storage layers call ------------------------------------

    def check(self, point: str) -> Optional[int]:
        """Record an arrival at ``point`` and apply any scheduled fault.

        Returns ``None`` normally; returns the ``keep_bytes`` of a scheduled
        *tear* so the caller (a write path) performs the partial write and
        raises :class:`SimulatedCrash` itself.  Raises
        :class:`SimulatedCrash` for a *crash* schedule and ``OSError`` for a
        *fail* schedule.
        """
        count = self.counts.get(point, 0) + 1
        self.counts[point] = count
        if self.observer is not None:
            self.observer.storage_event(point)
        rules = self._rules.get(point)
        if not rules:
            return None
        for rule in rules:
            if rule.fired or rule.hit != count:
                continue
            rule.fired = True
            if self.observer is not None:
                # a flight recorder (repro.obs.flight) dumps its ring here,
                # *before* the fault propagates, so the post-mortem's last
                # events include this arrival; a profiler has no on_fault
                on_fault = getattr(self.observer, "on_fault", None)
                if on_fault is not None:
                    on_fault(point, rule.action)
            if rule.action == "crash":
                raise SimulatedCrash(f"injected crash at {point} (hit {count})")
            if rule.action == "fail":
                raise OSError(f"{rule.message} at {point} (hit {count})")
            return rule.keep_bytes  # tear: caller tears the write
        return None

    def pending(self) -> List[_Rule]:
        """Schedules that have not fired yet (useful for sweep diagnostics)."""
        return [
            rule
            for rules in self._rules.values()
            for rule in rules
            if not rule.fired
        ]

    def __repr__(self) -> str:
        scheduled = sum(len(rules) for rules in self._rules.values())
        return f"<FaultInjector {scheduled} schedules, {len(self.counts)} points seen>"


#: A process-wide passive injector: storage objects constructed without an
#: explicit injector share this one, so the hooks are always live (and the
#: counters still observable) without any per-test plumbing.
PASSIVE = FaultInjector()
