"""In-memory relation implementations: hash relations, list relations,
multisets, and the *marks* mechanism.

Section 3.2: *"CORAL currently supports in-memory hash-relations ...  The
first and most important extension is the ability to get marks into a
relation, and distinguish between facts inserted after a mark was obtained
and facts inserted before the mark was obtained.  This feature is important
for the implementation of all variants of semi-naive evaluation.  The
implementation of this extension involves creating subsidiary relations, one
corresponding to each interval between marks, and transparently providing the
union of the subsidiary relations corresponding to the desired range of
marks.  A benefit of this organization is that it does not interfere with the
indexing mechanisms used for the relation (the indexing mechanisms are used
on each subsidiary relation)."*

Exactly that design: a :class:`HashRelation` is a list of
:class:`_Segment` subsidiary relations.  ``mark()`` closes the current
segment and opens a new one; a ranged scan unions the segments between two
marks.  Every index spec is realised once per segment, so delta scans are
indexed for free.

Duplicate semantics (Section 4.2): the default policy performs subsumption
checks — a new fact is discarded when an equal fact (ground) or a variant or
more general fact (non-ground, Section 3.1) is already stored.  A relation
may instead be declared a *multiset*, keeping one copy per derivation; the
optimizer then restricts duplicate checks to the magic predicates.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..errors import CoralError
from ..terms import Arg, BindEnv
from ..terms.unify import subsumes_all
from .base import GeneratorTupleIterator, Relation, Tuple, TupleIterator
from .index import ArgumentIndexSpec, Index, IndexSpec

_next_seqno = itertools.count(1)


class DuplicatePolicy(Enum):
    """How a relation treats re-derived facts (Section 4.2)."""

    #: set semantics with subsumption checks (the system default)
    SET = "set"
    #: multiset semantics: one copy per derivation, no checks
    MULTISET = "multiset"


class _Segment:
    """One subsidiary relation: the tuples inserted between two marks.

    Holds its own realised indexes, as the paper prescribes, so indexed
    access works uniformly on full scans and on delta scans.
    """

    __slots__ = ("tuples", "indexes")

    def __init__(self, specs: Sequence[IndexSpec]) -> None:
        #: seqno -> tuple, in insertion order (dict preserves it)
        self.tuples: Dict[int, Tuple] = {}
        self.indexes: List[Index] = [Index(spec) for spec in specs]

    def insert(self, tup: Tuple) -> None:
        self.tuples[tup.seqno] = tup
        for index in self.indexes:
            index.insert(tup)

    def delete(self, tup: Tuple) -> bool:
        if tup.seqno not in self.tuples:
            return False
        del self.tuples[tup.seqno]
        for index in self.indexes:
            index.delete(tup)
        return True

    def add_index(self, spec: IndexSpec) -> None:
        index = Index(spec)
        for tup in self.tuples.values():
            index.insert(tup)
        self.indexes.append(index)

    def __len__(self) -> int:
        return len(self.tuples)


class MarkedRelation(Relation):
    """Base class for in-memory relations supporting marks and indexes."""

    def mark(self) -> int:
        """Get a mark: facts inserted later are distinguishable from facts
        inserted earlier (Section 3.2).  Returns an opaque mark id usable as
        the ``since``/``until`` of a ranged scan."""
        raise NotImplementedError

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
        since: int = 0,
        until: Optional[int] = None,
    ) -> TupleIterator:
        raise NotImplementedError

    def count_since(self, mark: int) -> int:
        """How many tuples were inserted at or after ``mark`` (net of
        deletions) — the fixpoint's "did this iteration produce anything"
        test."""
        raise NotImplementedError


class HashRelation(MarkedRelation):
    """The workhorse in-memory relation: hashed duplicate detection,
    argument- and pattern-form indexes, marks via subsidiary segments."""

    def __init__(
        self,
        name: str,
        arity: int,
        policy: DuplicatePolicy = DuplicatePolicy.SET,
        index_specs: Sequence[IndexSpec] = (),
    ) -> None:
        super().__init__(name, arity)
        self.policy = policy
        self._specs: List[IndexSpec] = list(index_specs)
        self._segments: List[_Segment] = [_Segment(self._specs)]
        #: duplicate-detection key -> representative tuple (SET policy)
        self._by_key: Dict[Any, Tuple] = {}
        #: stored non-ground tuples, for subsumption checks of new facts
        self._nonground: List[Tuple] = []
        self._count = 0
        #: statistics: how many insert attempts were rejected as duplicates
        self.duplicates_rejected = 0

    # -- marks ---------------------------------------------------------------

    def mark(self) -> int:
        if len(self._segments[-1]):
            self._segments.append(_Segment(self._specs))
        return len(self._segments) - 1

    def count_since(self, mark: int) -> int:
        return sum(len(segment) for segment in self._segments[mark:])

    # -- updates --------------------------------------------------------------

    def _is_duplicate(self, tup: Tuple) -> bool:
        if tup.key() in self._by_key:
            return True
        for general in self._nonground:
            if general is not tup and subsumes_all(general.args, tup.args):
                return True
        return False

    def insert(self, tup: Tuple) -> bool:
        if len(tup.args) != self.arity:
            raise CoralError(
                f"arity mismatch inserting into {self.name}/{self.arity}: {tup}"
            )
        if self.policy is DuplicatePolicy.SET and self._is_duplicate(tup):
            self.duplicates_rejected += 1
            return False
        tup.seqno = next(_next_seqno)
        self._segments[-1].insert(tup)
        if self.policy is DuplicatePolicy.SET:
            self._by_key[tup.key()] = tup
        if not tup.is_ground():
            self._nonground.append(tup)
        self._count += 1
        return True

    def extend_new(self, tuples) -> int:
        """Bulk-insert tuples the caller guarantees are ground, of the right
        arity, and not already present — no duplicate or subsumption checks.

        The push evaluator's flush qualifies: it seeds its ``seen`` set from
        this relation's contents, so everything beyond the seed prefix is
        genuinely new.  Marks and indexes are maintained exactly as
        :meth:`insert` would."""
        segment = self._segments[-1]
        by_key = self._by_key if self.policy is DuplicatePolicy.SET else None
        count = 0
        for tup in tuples:
            tup.seqno = next(_next_seqno)
            segment.insert(tup)
            if by_key is not None:
                by_key[tup.key()] = tup
            count += 1
        self._count += count
        return count

    def delete(self, tup: Tuple) -> bool:
        stored = self._by_key.get(tup.key()) if self.policy is DuplicatePolicy.SET else None
        target = stored if stored is not None else self._find_exact(tup)
        if target is None:
            return False
        for segment in reversed(self._segments):
            if segment.delete(target):
                break
        else:
            return False
        if self.policy is DuplicatePolicy.SET:
            self._by_key.pop(target.key(), None)
        if not target.is_ground():
            try:
                self._nonground.remove(target)
            except ValueError:
                pass
        self._count -= 1
        return True

    def _find_exact(self, tup: Tuple) -> Optional[Tuple]:
        for segment in self._segments:
            for candidate in segment.tuples.values():
                if candidate == tup:
                    return candidate
        return None

    # -- indexes ---------------------------------------------------------------

    def add_index(self, spec: IndexSpec) -> None:
        """Add an index, populating it over the existing contents.

        Section 3.2: indices "can be added to existing relations".
        """
        if any(existing == spec for existing in self._specs if isinstance(spec, ArgumentIndexSpec)):
            return
        self._specs.append(spec)
        for segment in self._segments:
            segment.add_index(spec)

    @property
    def index_specs(self) -> Sequence[IndexSpec]:
        return tuple(self._specs)

    # -- scans -----------------------------------------------------------------

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
        since: int = 0,
        until: Optional[int] = None,
    ) -> TupleIterator:
        segments = self._segments[since:until]
        return GeneratorTupleIterator(self._generate(segments, pattern, env))

    def _generate(
        self,
        segments: Sequence[_Segment],
        pattern: Optional[Sequence[Arg]],
        env: Optional[BindEnv],
    ) -> Iterator[Tuple]:
        probe_key = None
        spec_position = None
        if pattern is not None and self._specs:
            for position, spec in enumerate(self._specs):
                key = spec.key_for_probe(pattern, env)
                if key is not None:
                    probe_key = key
                    spec_position = position
                    break
        for segment in segments:
            if spec_position is not None:
                yield from segment.indexes[spec_position].lookup(probe_key)
            else:
                yield from list(segment.tuples.values())

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Discard all tuples and marks (used by save-module resets)."""
        self._segments = [_Segment(self._specs)]
        self._by_key.clear()
        self._nonground.clear()
        self._count = 0


class ListRelation(MarkedRelation):
    """A relation organised as a linked list (Section 7.2): no hashing, no
    indexes — every access is a linear scan.

    Kept both as the simplest possible reference implementation (tests
    compare HashRelation behaviour against it) and as the baseline the
    indexing benchmarks measure against.
    """

    def __init__(self, name: str, arity: int) -> None:
        super().__init__(name, arity)
        self._tuples: List[Tuple] = []
        self._boundaries: List[int] = []

    def mark(self) -> int:
        self._boundaries.append(len(self._tuples))
        return len(self._boundaries)

    def count_since(self, mark: int) -> int:
        start = 0 if mark == 0 else self._boundaries[mark - 1]
        return len(self._tuples) - start

    def insert(self, tup: Tuple) -> bool:
        if len(tup.args) != self.arity:
            raise CoralError(
                f"arity mismatch inserting into {self.name}/{self.arity}: {tup}"
            )
        for existing in self._tuples:
            if existing == tup:
                return False
        tup.seqno = next(_next_seqno)
        self._tuples.append(tup)
        return True

    def delete(self, tup: Tuple) -> bool:
        for position, existing in enumerate(self._tuples):
            if existing == tup:
                del self._tuples[position]
                self._boundaries = [
                    b if b <= position else b - 1 for b in self._boundaries
                ]
                return True
        return False

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
        since: int = 0,
        until: Optional[int] = None,
    ) -> TupleIterator:
        start = 0 if since == 0 else self._boundaries[since - 1]
        end = len(self._tuples) if until is None else (
            len(self._tuples) if until > len(self._boundaries) else self._boundaries[until - 1]
        )
        return GeneratorTupleIterator(iter(list(self._tuples[start:end])))

    def __len__(self) -> int:
        return len(self._tuples)
