"""Tuples, the ``Relation`` abstract interface, and tuple iterators.

Section 3: *"The class Tuple defines tuples of Args.  A member of the class
Relation is a set of tuples.  The class Relation has a number of virtual
methods defined on it.  These include insert(Tuple*), delete(Tuple*), and an
iterator interface that allows tuples to be fetched from the relation, one at
a time.  The iterator is implemented using a member of a TupleIterator class
that is used to store the state or position of a scan on the relation, and to
allow multiple concurrent scans over the same relation."*

The iterator interface is the system-wide *get-next-tuple* abstraction
(Section 2): every relation — in-memory, persistent, derived by rules, or
defined by host-language code — presents exactly this surface, which is what
lets modules with different evaluation strategies interact transparently
(Section 5.6) and new relation implementations slot in without evaluator
changes (Section 7.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import CoralError
from ..terms import (
    Arg,
    BindEnv,
    Trail,
    Var,
    canonicalize_term,
    rename_term,
    resolve,
)


class Tuple:
    """An immutable tuple of :class:`Arg` values.

    Tuples stored in relations are *standalone*: their variables (if any —
    CORAL permits non-ground facts, Section 3.1) are interpreted without an
    external binding environment and are universally quantified.
    """

    __slots__ = ("args", "_ground", "_key", "seqno")

    def __init__(self, args: Sequence[Arg]) -> None:
        self.args = tuple(args)
        self._ground = all(arg.is_ground() for arg in self.args)
        self._key: Any = None
        #: insertion sequence number, assigned by the owning relation; used
        #: by the marks mechanism (Section 3.2) to partition deltas.
        self.seqno: int = -1

    @classmethod
    def ground(cls, args: Sequence[Arg]) -> "Tuple":
        """A tuple the caller guarantees is ground — skips the groundness
        walk.  The push compiler's flush creates tens of thousands at once
        from already-interned (hence ground) Args."""
        tup = cls.__new__(cls)
        tup.args = tuple(args)
        tup._ground = True
        tup._key = None
        tup.seqno = -1
        return tup

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        return self._ground

    def key(self) -> Any:
        """A hashable duplicate-detection key.

        Ground tuples key on their arguments' hash-consed/ground keys; a
        non-ground tuple keys on its canonical form (variables renamed to a
        fixed sequence), so *variants* get the same key.
        """
        cached = self._key
        if cached is None:
            if self._ground:
                cached = tuple(arg.ground_key() for arg in self.args)
            else:
                mapping: Dict[int, Var] = {}
                canon = tuple(canonicalize_term(arg, mapping) for arg in self.args)
                cached = ("~", canon)
            self._key = cached
        return cached

    def renamed(self) -> "Tuple":
        """A copy with fresh variables (standardize apart before use).

        Ground tuples are returned as-is — the common fast path.
        """
        if self._ground:
            return self
        mapping: Dict[int, Var] = {}
        return Tuple(tuple(rename_term(arg, mapping) for arg in self.args))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        if self._ground != other._ground:
            return False
        return self.key() == other.key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.key())

    def __len__(self) -> int:
        return len(self.args)

    def __getitem__(self, index: int) -> Arg:
        return self.args[index]

    def __iter__(self) -> Iterator[Arg]:
        return iter(self.args)

    def __repr__(self) -> str:
        return f"Tuple({list(self.args)!r})"

    def __str__(self) -> str:
        return "(" + ", ".join(str(arg) for arg in self.args) + ")"


def make_tuple(terms: Sequence[Arg], env: Optional[BindEnv]) -> Tuple:
    """Build a standalone tuple by resolving ``terms`` under ``env``.

    This is how a satisfied rule head becomes a fact: bindings are
    substituted in, and any remaining free variables stay universally
    quantified in the new fact.
    """
    return Tuple(tuple(resolve(term, env) for term in terms))


class TupleIterator(ABC):
    """State of one scan over a relation (the paper's TupleIterator; the
    footnote compares it to an SQL cursor).

    ``get_next()`` returns the next matching tuple or ``None`` when the scan
    is exhausted — the *get-next-tuple* interface.  Multiple iterators over
    the same relation may be open concurrently; each holds its own position.
    """

    @abstractmethod
    def get_next(self) -> Optional[Tuple]:
        """The next tuple, or None when exhausted."""

    def close(self) -> None:
        """Release scan resources (pinned pages, etc.).  Default: nothing."""

    def __iter__(self) -> Iterator[Tuple]:
        while True:
            item = self.get_next()
            if item is None:
                return
            yield item


class ListTupleIterator(TupleIterator):
    """Iterator over a materialized Python list of tuples."""

    def __init__(self, items: Sequence[Tuple]) -> None:
        self._items = items
        self._position = 0

    def get_next(self) -> Optional[Tuple]:
        if self._position >= len(self._items):
            return None
        item = self._items[self._position]
        self._position += 1
        return item


class GeneratorTupleIterator(TupleIterator):
    """Adapter from any Python iterator of tuples to the cursor interface."""

    def __init__(self, source: Iterable[Tuple]) -> None:
        self._source = iter(source)

    def get_next(self) -> Optional[Tuple]:
        return next(self._source, None)


class Relation(ABC):
    """Abstract relation: a set (or multiset) of tuples of a fixed arity.

    Subclasses: hash relations and list relations in memory
    (:mod:`repro.relations.memory`), persistent relations over the storage
    manager (:mod:`repro.storage.relation`), derived relations presented by
    module evaluation (:mod:`repro.modules`), and relations computed by
    host-language functions (:mod:`repro.api`).  The evaluator depends only
    on this interface.
    """

    def __init__(self, name: str, arity: int) -> None:
        if arity < 0:
            raise CoralError(f"negative arity for relation {name}")
        self.name = name
        self.arity = arity

    # -- update interface ----------------------------------------------------

    @abstractmethod
    def insert(self, tup: Tuple) -> bool:
        """Insert a tuple.  Returns True when the relation grew (i.e. the
        tuple was not a duplicate / not subsumed under the relation's
        duplicate-check policy)."""

    @abstractmethod
    def delete(self, tup: Tuple) -> bool:
        """Delete a tuple (exact match).  Returns True when found."""

    # -- scan interface --------------------------------------------------------

    @abstractmethod
    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
    ) -> TupleIterator:
        """Open a cursor over tuples matching ``pattern``.

        ``pattern`` is a sequence of terms interpreted under ``env``; bound
        positions act as a selection, which an index may serve.  Tuples
        returned are *candidates*: the caller still unifies the full literal
        against each (indexes may over-approximate, never under-approximate).
        With no pattern, the scan covers the whole relation.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored tuples."""

    # -- conveniences ---------------------------------------------------------

    def insert_values(self, *values: Any) -> bool:
        """Insert from plain Python values (host-language convenience)."""
        from ..terms import to_arg

        if len(values) != self.arity:
            raise CoralError(
                f"{self.name} has arity {self.arity}, got {len(values)} values"
            )
        return self.insert(Tuple(tuple(to_arg(v) for v in values)))

    def contains(self, tup: Tuple) -> bool:
        """Membership test (exact duplicate semantics of this relation)."""
        cursor = self.scan(tup.args, None)
        try:
            for candidate in cursor:
                if candidate == tup:
                    return True
            return False
        finally:
            cursor.close()

    def all_tuples(self) -> List[Tuple]:
        """Materialize the whole relation as a list (testing convenience)."""
        return list(self.scan())

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.scan())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}/{self.arity} ({len(self)} tuples)>"
