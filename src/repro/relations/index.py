"""Hash-based index structures for in-memory relations.

Section 3.3: *"CORAL allows for the specification of two types of hash-based
indices: (1) argument form indices, and (2) pattern form indices.  The first
form is the traditional multi-attribute hash index on a subset of the
arguments of a relation.  The hash function chosen works well on ground
terms; however, all terms that contain a variable are hashed to a special
value, denoted as var.  The second form is more sophisticated, and allows us
to retrieve precisely those facts that match a specified pattern, where the
pattern can contain variables."*

An index is described by an :class:`IndexSpec` (what to key on) and realised
as an :class:`Index` instance attached to each subsidiary segment of a marked
relation (Section 3.2 notes the marks machinery "does not interfere with the
indexing mechanisms ... the indexing mechanisms are used on each subsidiary
relation").

Indexes are *access paths*: a probe either yields a hash key (serve the
lookup from ``bucket[key] + var-bucket``) or is unusable (the relation falls
back to a heap scan).  Indexed lookups may over-approximate — the caller
always re-unifies — but must never miss a tuple that could unify with the
probe; tuples whose indexed positions contain variables therefore live in the
always-scanned *var* bucket, exactly the paper's special ``var`` hash value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import CoralError
from ..terms import Arg, BindEnv, Trail, Var, match, resolve
from .base import Tuple

#: Sentinel key for the var bucket.
VAR_BUCKET = "<var>"


class IndexSpec(ABC):
    """Describes one index on a relation: how tuples and probes map to keys."""

    @abstractmethod
    def key_for_tuple(self, tup: Tuple) -> Any:
        """The hash key under which ``tup`` is filed, or :data:`VAR_BUCKET`
        when the indexed parts are not ground, or ``None`` when the tuple can
        never unify with any probe this index serves (pattern indices only —
        such tuples are filed in no bucket)."""

    @abstractmethod
    def key_for_probe(
        self, pattern: Sequence[Arg], env: Optional[BindEnv]
    ) -> Optional[Any]:
        """The hash key a probe selects, or ``None`` when the probe does not
        bind the indexed parts (index unusable; caller scans the heap)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable form for `explain` output and error messages."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class ArgumentIndexSpec(IndexSpec):
    """Multi-attribute hash index on a subset of argument positions."""

    def __init__(self, arity: int, positions: Sequence[int]) -> None:
        if not positions:
            raise CoralError("argument index needs at least one position")
        if any(p < 0 or p >= arity for p in positions):
            raise CoralError(
                f"index positions {list(positions)} out of range for arity {arity}"
            )
        self.arity = arity
        self.positions = tuple(sorted(set(positions)))

    def key_for_tuple(self, tup: Tuple) -> Any:
        parts = []
        for position in self.positions:
            arg = tup.args[position]
            if not arg.is_ground():
                return VAR_BUCKET
            parts.append(arg.ground_key())
        return tuple(parts)

    def key_for_probe(
        self, pattern: Sequence[Arg], env: Optional[BindEnv]
    ) -> Optional[Any]:
        parts = []
        for position in self.positions:
            arg = resolve(pattern[position], env)
            if not arg.is_ground():
                return None
            parts.append(arg.ground_key())
        return tuple(parts)

    def describe(self) -> str:
        return "args(" + ",".join(str(p + 1) for p in self.positions) + ")"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArgumentIndexSpec)
            and other.arity == self.arity
            and other.positions == self.positions
        )

    def __hash__(self) -> int:
        return hash(("argidx", self.arity, self.positions))


class PatternIndexSpec(IndexSpec):
    """Index on a pattern with variables (Section 3.3, Section 5.5.1).

    Example from the paper::

        @make_index emp(Name, addr(Street, City)) (Name, City).

    files each ``emp`` tuple under the values its ``Name`` and ``City``
    subterms take when the tuple is matched against the pattern, so the
    lookup *"employees named John living in Madison"* is a single bucket
    probe even though ``City`` is nested inside a functor term.
    """

    def __init__(self, pattern: Sequence[Arg], key_vars: Sequence[Var]) -> None:
        if not key_vars:
            raise CoralError("pattern index needs at least one key variable")
        self.pattern = tuple(pattern)
        self.key_vars = tuple(key_vars)
        pattern_vids = {
            var.vid for term in self.pattern for var in term.variables()
        }
        for var in self.key_vars:
            if var.vid not in pattern_vids:
                raise CoralError(
                    f"key variable {var} does not occur in the index pattern"
                )

    def _extract(self, instance: Sequence[Arg], instance_env: Optional[BindEnv]):
        """Match the index pattern against ``instance``; return the key-var
        bindings as standalone terms, or None when the match fails."""
        env = BindEnv()
        trail = Trail()
        try:
            for pat, inst in zip(self.pattern, instance):
                if not match(pat, env, inst, instance_env, trail):
                    return None
            return [resolve(var, env) for var in self.key_vars]
        finally:
            trail.undo_to(0)

    def key_for_tuple(self, tup: Tuple) -> Any:
        values = self._extract(tup.args, None)
        if values is None:
            if tup.is_ground():
                # A *ground* tuple whose structure conflicts with the
                # pattern can never unify with a probe that produced an
                # index key (any such probe carries at least the pattern's
                # structure), so it is filed in no bucket — the index
                # retrieves "precisely those facts that match" (§3.3).
                return None
            # A tuple with variables at pattern positions could still unify
            # with pattern-shaped probes: the var bucket keeps it visible.
            return VAR_BUCKET
        parts = []
        for value in values:
            if not value.is_ground():
                return VAR_BUCKET
            parts.append(value.ground_key())
        return tuple(parts)

    def key_for_probe(
        self, pattern: Sequence[Arg], env: Optional[BindEnv]
    ) -> Optional[Any]:
        values = self._extract(pattern, env)
        if values is None:
            return None
        parts = []
        for value in values:
            if not value.is_ground():
                return None
            parts.append(value.ground_key())
        return tuple(parts)

    def describe(self) -> str:
        pattern = ", ".join(str(term) for term in self.pattern)
        keys = ", ".join(str(var) for var in self.key_vars)
        return f"pattern({pattern})({keys})"


class Index:
    """One realised hash index: buckets of tuples in insertion order."""

    __slots__ = ("spec", "_buckets")

    def __init__(self, spec: IndexSpec) -> None:
        self.spec = spec
        self._buckets: Dict[Any, List[Tuple]] = {}

    def insert(self, tup: Tuple) -> None:
        key = self.spec.key_for_tuple(tup)
        if key is None:
            return
        self._buckets.setdefault(key, []).append(tup)

    def delete(self, tup: Tuple) -> None:
        key = self.spec.key_for_tuple(tup)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(tup)
        except ValueError:
            pass

    def lookup(self, key: Any) -> Iterator[Tuple]:
        """Candidates for a probe that hashed to ``key``: the keyed bucket
        plus the var bucket (non-ground tuples match anything shape-wise)."""
        bucket = self._buckets.get(key)
        if bucket:
            yield from bucket
        if key != VAR_BUCKET:
            var_bucket = self._buckets.get(VAR_BUCKET)
            if var_bucket:
                yield from var_bucket

    def bucket_count(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"<Index {self.spec.describe()} buckets={len(self._buckets)}>"
