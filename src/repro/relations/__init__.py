"""Relation representation and implementation (paper Sections 3.2, 3.3, 7.2).

The evaluator sees only :class:`Relation` and its cursor
(:class:`TupleIterator`); concrete implementations — hash relations with
marks and indexes, list relations, persistent relations over the storage
manager, host-function relations — all hide behind that interface.
"""

from .base import (
    GeneratorTupleIterator,
    ListTupleIterator,
    Relation,
    Tuple,
    TupleIterator,
    make_tuple,
)
from .index import (
    VAR_BUCKET,
    ArgumentIndexSpec,
    Index,
    IndexSpec,
    PatternIndexSpec,
)
from .memory import DuplicatePolicy, HashRelation, ListRelation, MarkedRelation

__all__ = [
    "ArgumentIndexSpec",
    "DuplicatePolicy",
    "GeneratorTupleIterator",
    "HashRelation",
    "Index",
    "IndexSpec",
    "ListRelation",
    "ListTupleIterator",
    "MarkedRelation",
    "PatternIndexSpec",
    "Relation",
    "Tuple",
    "TupleIterator",
    "VAR_BUCKET",
    "make_tuple",
]
