"""Fixed-size pages and the slotted-page record layout.

The storage manager stand-in (for EXODUS, Section 2) stores everything in
fixed-size pages.  Heap pages use the classic slotted layout: a header and a
slot directory grow forward from the page start, record bytes grow backward
from the page end, and deleted slots become tombstones so record ids
``(page_id, slot)`` stay stable — B-tree entries point at records and must
survive unrelated deletions.

Layout::

    [ num_slots:u16 | free_end:u16 | slot_0 | slot_1 | ... ]     ... [records]
    slot_i = (offset:u16, length:u16); offset == 0 means tombstone.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple as PyTuple

from ..errors import StorageError

#: Size of every page, in bytes.
PAGE_SIZE = 4096

_HEADER = struct.Struct(">HH")  # num_slots, free_end
_SLOT = struct.Struct(">HH")  # record offset, record length
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size


class Page:
    """One in-buffer page: raw bytes plus buffer-manager bookkeeping."""

    __slots__ = ("file_name", "page_id", "data", "dirty", "pin_count")

    def __init__(self, file_name: str, page_id: int, data: Optional[bytearray] = None):
        self.file_name = file_name
        self.page_id = page_id
        self.data = data if data is not None else bytearray(PAGE_SIZE)
        if len(self.data) != PAGE_SIZE:
            raise StorageError(
                f"page {file_name}:{page_id} has {len(self.data)} bytes, "
                f"expected {PAGE_SIZE}"
            )
        self.dirty = False
        self.pin_count = 0

    def __repr__(self) -> str:
        return (
            f"<Page {self.file_name}:{self.page_id} "
            f"pins={self.pin_count} dirty={self.dirty}>"
        )


class SlottedPage:
    """Record-level view over a :class:`Page` (heap pages only)."""

    __slots__ = ("page",)

    def __init__(self, page: Page) -> None:
        self.page = page

    # -- header -----------------------------------------------------------

    def _header(self) -> PyTuple[int, int]:
        num_slots, free_end = _HEADER.unpack_from(self.page.data, 0)
        if free_end == 0:  # freshly allocated page
            free_end = PAGE_SIZE
        return num_slots, free_end

    def _set_header(self, num_slots: int, free_end: int) -> None:
        _HEADER.pack_into(self.page.data, 0, num_slots, free_end % PAGE_SIZE)
        self.page.dirty = True

    @staticmethod
    def initialize(page: Page) -> "SlottedPage":
        """Format a fresh page as an empty slotted page."""
        page.data[:] = bytes(PAGE_SIZE)
        slotted = SlottedPage(page)
        slotted._set_header(0, PAGE_SIZE)
        return slotted

    # -- record operations ---------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self._header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        num_slots, free_end = self._header()
        used_front = _HEADER_SIZE + num_slots * _SLOT_SIZE
        gap = free_end - used_front
        return max(0, gap - _SLOT_SIZE)

    def insert_record(self, record: bytes) -> Optional[int]:
        """Store ``record``; returns its slot number, or None when full."""
        if len(record) > self.free_space():
            return None
        num_slots, free_end = self._header()
        offset = free_end - len(record)
        self.page.data[offset : offset + len(record)] = record
        _SLOT.pack_into(
            self.page.data, _HEADER_SIZE + num_slots * _SLOT_SIZE, offset, len(record)
        )
        self._set_header(num_slots + 1, offset)
        return num_slots

    def get_record(self, slot: int) -> Optional[bytes]:
        """The record bytes at ``slot``, or None for a tombstone."""
        num_slots, _ = self._header()
        if slot < 0 or slot >= num_slots:
            raise StorageError(f"slot {slot} out of range (page has {num_slots})")
        offset, length = _SLOT.unpack_from(
            self.page.data, _HEADER_SIZE + slot * _SLOT_SIZE
        )
        if offset == 0:
            return None
        return bytes(self.page.data[offset : offset + length])

    def delete_record(self, slot: int) -> bool:
        """Tombstone the slot.  Space is not compacted (rids stay stable)."""
        num_slots, _ = self._header()
        if slot < 0 or slot >= num_slots:
            raise StorageError(f"slot {slot} out of range (page has {num_slots})")
        base = _HEADER_SIZE + slot * _SLOT_SIZE
        offset, _length = _SLOT.unpack_from(self.page.data, base)
        if offset == 0:
            return False
        _SLOT.pack_into(self.page.data, base, 0, 0)
        self.page.dirty = True
        return True

    def records(self) -> Iterator[PyTuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        num_slots, _ = self._header()
        for slot in range(num_slots):
            record = self.get_record(slot)
            if record is not None:
                yield slot, record

    def live_count(self) -> int:
        return sum(1 for _ in self.records())
