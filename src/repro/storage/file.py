"""Disk files and the storage server.

Section 2: *"Persistent data is stored either in text files, or using the
EXODUS storage manager, which has a client-server architecture.  Each CORAL
single-user process is a client that accesses the common persistent data from
the server."*

:class:`DiskFile` is one page file on the local filesystem.
:class:`StorageServer` plays the EXODUS server role: it owns a directory of
named page files and services page read/write requests from clients.  The
client-server boundary is *accounted* rather than networked — every request
increments request counters (and can carry a simulated per-request latency),
which is what the storage benchmarks measure; actually running an RPC stack
would add noise without exercising any additional CORAL code path.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..errors import StorageError
from .pages import PAGE_SIZE


class DiskFile:
    """A file of fixed-size pages with explicit read/write/allocate."""

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = path
        if not os.path.exists(path):
            if not create:
                raise StorageError(f"page file {path} does not exist")
            with open(path, "wb"):
                pass
        self._handle = open(path, "r+b")
        size = os.fstat(self._handle.fileno()).st_size
        if size % PAGE_SIZE:
            raise StorageError(f"page file {path} has a torn page (size {size})")
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page; returns its page id."""
        page_id = self._num_pages
        self._handle.seek(page_id * PAGE_SIZE)
        self._handle.write(bytes(PAGE_SIZE))
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        if page_id < 0 or page_id >= self._num_pages:
            raise StorageError(
                f"read of page {page_id} beyond end of {self.path} "
                f"({self._num_pages} pages)"
            )
        self._handle.seek(page_id * PAGE_SIZE)
        return bytearray(self._handle.read(PAGE_SIZE))

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError("write_page requires exactly one page of data")
        if page_id < 0 or page_id >= self._num_pages:
            raise StorageError(f"write of unallocated page {page_id} in {self.path}")
        self._handle.seek(page_id * PAGE_SIZE)
        self._handle.write(data)

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.flush()
        self._handle.close()


class ServerStats:
    """Request accounting at the client-server boundary."""

    __slots__ = ("page_reads", "page_writes", "allocations", "simulated_latency")

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.allocations = 0
        self.simulated_latency = 0.0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.allocations = 0
        self.simulated_latency = 0.0

    def __repr__(self) -> str:
        return (
            f"<ServerStats reads={self.page_reads} writes={self.page_writes} "
            f"allocs={self.allocations}>"
        )


class StorageServer:
    """The EXODUS-server stand-in: a directory of named page files.

    ``request_delay`` simulates the client-server round trip: each page
    request optionally sleeps for that many seconds (and always accrues it in
    ``stats.simulated_latency``), letting benchmarks show how the buffer
    pool's hit rate translates into saved round trips.
    """

    def __init__(self, directory: str, request_delay: float = 0.0) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.request_delay = request_delay
        self._files: Dict[str, DiskFile] = {}
        self.stats = ServerStats()
        self._journal = None
        self._recover_if_needed()

    def _file(self, name: str) -> DiskFile:
        handle = self._files.get(name)
        if handle is None:
            handle = DiskFile(os.path.join(self.directory, name))
            self._files[name] = handle
        return handle

    def _charge(self) -> None:
        self.stats.simulated_latency += self.request_delay
        if self.request_delay:
            time.sleep(self.request_delay)

    # -- the request interface used by clients -----------------------------

    def read_page(self, file_name: str, page_id: int) -> bytearray:
        self.stats.page_reads += 1
        self._charge()
        return self._file(file_name).read_page(page_id)

    def write_page(self, file_name: str, page_id: int, data: bytes) -> None:
        self.stats.page_writes += 1
        self._charge()
        handle = self._file(file_name)
        if self._journal is not None and page_id < handle.num_pages:
            self._journal.record(file_name, page_id, bytes(handle.read_page(page_id)))
        handle.write_page(page_id, data)

    def allocate_page(self, file_name: str) -> int:
        self.stats.allocations += 1
        self._charge()
        return self._file(file_name).allocate_page()

    def num_pages(self, file_name: str) -> int:
        return self._file(file_name).num_pages

    def sync(self, file_name: Optional[str] = None) -> None:
        targets = [self._files[file_name]] if file_name else self._files.values()
        for handle in targets:
            handle.sync()

    def close(self) -> None:
        for handle in self._files.values():
            handle.close()
        self._files.clear()

    # -- transactions (Section 2: delegated to the storage toolkit) -----------

    @property
    def _journal_path(self) -> str:
        return os.path.join(self.directory, "undo.journal")

    def begin_transaction(self) -> None:
        """Start recording page before-images; one transaction at a time
        (CORAL is a single-user system)."""
        from .xact import UndoJournal

        if self._journal is not None:
            raise StorageError("a transaction is already in progress")
        self._journal = UndoJournal(self._journal_path)

    def in_transaction(self) -> bool:
        return self._journal is not None

    def commit_transaction(self) -> None:
        if self._journal is None:
            raise StorageError("no transaction in progress")
        self.sync()
        self._journal.close_and_remove()
        self._journal = None

    def abort_transaction(self) -> None:
        """Restore every before-image recorded since ``begin_transaction``.

        Any buffer pool over this server must be dropped by the caller
        afterwards — its cached frames may hold aborted contents.
        """
        if self._journal is None:
            raise StorageError("no transaction in progress")
        for file_name, page_id, before in self._journal.before_images():
            self._file(file_name).write_page(page_id, before)
        self.sync()
        self._journal.close_and_remove()
        self._journal = None

    def _recover_if_needed(self) -> None:
        """Roll back a journal left behind by a crash (undo recovery)."""
        from .xact import read_journal

        if not os.path.exists(self._journal_path):
            return
        for file_name, page_id, before in read_journal(self._journal_path):
            handle = self._file(file_name)
            if page_id < handle.num_pages:
                handle.write_page(page_id, before)
        self.sync()
        os.remove(self._journal_path)
