"""Disk files and the storage server.

Section 2: *"Persistent data is stored either in text files, or using the
EXODUS storage manager, which has a client-server architecture.  Each CORAL
single-user process is a client that accesses the common persistent data from
the server."*

:class:`DiskFile` is one page file on the local filesystem.
:class:`StorageServer` plays the EXODUS server role: it owns a directory of
named page files and services page read/write requests from clients.  The
client-server boundary is *accounted* rather than networked — every request
increments request counters (and can carry a simulated per-request latency),
which is what the storage benchmarks measure; actually running an RPC stack
would add noise without exercising any additional CORAL code path.

Robustness contract (exercised by ``tests/test_crash_sweep.py``):

* every OS-level failure (``OSError``) is wrapped as
  :class:`~repro.errors.StorageError` with the original as ``__cause__``;
* operations on a closed file raise ``StorageError``, not ``ValueError``;
* every write/sync path passes through a :class:`~repro.faults.FaultInjector`
  injection point, so crashes, failed fsyncs, and torn writes can be
  scheduled deterministically;
* recovery (:meth:`StorageServer._recover_if_needed`) is idempotent and
  truncates pages allocated by the in-flight transaction, using the file
  lengths the journal recorded at first touch.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..errors import StorageError, TransactionError
from ..faults import PASSIVE, FaultInjector, SimulatedCrash
from .pages import PAGE_SIZE


class DiskFile:
    """A file of fixed-size pages with explicit read/write/allocate.

    Handles are opened unbuffered: every write reaches the OS immediately,
    so an injected crash (abandoning the object) loses nothing that a real
    process kill would have kept — the undo journal, not user-space
    buffering, is what provides atomicity.
    """

    def __init__(
        self,
        path: str,
        create: bool = True,
        faults: Optional[FaultInjector] = None,
        repair_torn_tail: bool = False,
    ) -> None:
        self.path = path
        self.faults = faults if faults is not None else PASSIVE
        self.closed = False
        try:
            if not os.path.exists(path):
                if not create:
                    raise StorageError(f"page file {path} does not exist")
                with open(path, "wb"):
                    pass
            self._handle = open(path, "r+b", buffering=0)
            size = os.fstat(self._handle.fileno()).st_size
        except OSError as exc:
            raise StorageError(f"cannot open page file {path}: {exc}") from exc
        if size % PAGE_SIZE:
            if not repair_torn_tail:
                raise StorageError(
                    f"page file {path} has a torn page (size {size})"
                )
            # recovery mode: the torn tail is an append that never committed
            # (page extensions are transaction-protected); cut it off
            size = (size // PAGE_SIZE) * PAGE_SIZE
            try:
                self._handle.truncate(size)
            except OSError as exc:
                raise StorageError(
                    f"cannot repair torn tail of {path}: {exc}"
                ) from exc
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _require_open(self) -> None:
        if self.closed:
            raise StorageError(f"page file {self.path} is closed")

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page; returns its page id."""
        self._require_open()
        page_id = self._num_pages
        try:
            self.faults.check("disk.allocate")
            self._handle.seek(page_id * PAGE_SIZE)
            self._handle.write(bytes(PAGE_SIZE))
        except OSError as exc:
            raise StorageError(
                f"cannot extend page file {self.path}: {exc}"
            ) from exc
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        self._require_open()
        if page_id < 0 or page_id >= self._num_pages:
            raise StorageError(
                f"read of page {page_id} beyond end of {self.path} "
                f"({self._num_pages} pages)"
            )
        try:
            self.faults.check("disk.read_page")
            self._handle.seek(page_id * PAGE_SIZE)
            return bytearray(self._handle.read(PAGE_SIZE))
        except OSError as exc:
            raise StorageError(
                f"cannot read page {page_id} of {self.path}: {exc}"
            ) from exc

    def write_page(self, page_id: int, data: bytes) -> None:
        self._require_open()
        if len(data) != PAGE_SIZE:
            raise StorageError("write_page requires exactly one page of data")
        if page_id < 0 or page_id >= self._num_pages:
            raise StorageError(f"write of unallocated page {page_id} in {self.path}")
        try:
            keep = self.faults.check("disk.write_page")
            self._handle.seek(page_id * PAGE_SIZE)
            if keep is not None:
                # torn write: a prefix of the page reaches the platter, then
                # the power goes out
                self._handle.write(bytes(data[:keep]))
                raise SimulatedCrash(
                    f"injected torn write of page {page_id} in {self.path} "
                    f"({keep}/{PAGE_SIZE} bytes)"
                )
            self._handle.write(data)
        except OSError as exc:
            raise StorageError(
                f"cannot write page {page_id} of {self.path}: {exc}"
            ) from exc

    def truncate(self, num_pages: int) -> None:
        """Shrink the file to ``num_pages`` pages (abort/recovery of pages
        allocated by an in-flight transaction)."""
        self._require_open()
        if num_pages < 0 or num_pages > self._num_pages:
            raise StorageError(
                f"cannot truncate {self.path} to {num_pages} pages "
                f"(has {self._num_pages})"
            )
        try:
            self.faults.check("disk.truncate")
            self._handle.truncate(num_pages * PAGE_SIZE)
        except OSError as exc:
            raise StorageError(
                f"cannot truncate page file {self.path}: {exc}"
            ) from exc
        self._num_pages = num_pages

    def sync(self) -> None:
        self._require_open()
        try:
            self.faults.check("disk.sync")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot sync page file {self.path}: {exc}") from exc

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._handle.flush()
            self._handle.close()
        except OSError as exc:
            raise StorageError(f"cannot close page file {self.path}: {exc}") from exc


class ServerStats:
    """Request accounting at the client-server boundary."""

    __slots__ = ("page_reads", "page_writes", "allocations", "simulated_latency")

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.allocations = 0
        self.simulated_latency = 0.0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.allocations = 0
        self.simulated_latency = 0.0

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy; the profiler diffs two of these."""
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "allocations": self.allocations,
        }

    def __repr__(self) -> str:
        return (
            f"<ServerStats reads={self.page_reads} writes={self.page_writes} "
            f"allocs={self.allocations}>"
        )


class StorageServer:
    """The EXODUS-server stand-in: a directory of named page files.

    ``request_delay`` simulates the client-server round trip: each page
    request optionally sleeps for that many seconds (and always accrues it in
    ``stats.simulated_latency``), letting benchmarks show how the buffer
    pool's hit rate translates into saved round trips.

    ``faults`` threads a :class:`~repro.faults.FaultInjector` through every
    file the server opens and every journal it creates; the default shares
    the passive process-wide injector (counting only, no faults).
    """

    def __init__(
        self,
        directory: str,
        request_delay: float = 0.0,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.faults = faults if faults is not None else PASSIVE
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create storage directory {directory}: {exc}"
            ) from exc
        self.directory = directory
        self.request_delay = request_delay
        #: set by :meth:`close`; a closed server accepts no further requests,
        #: and ``Session.close`` skips its flush when the pool's server is
        #: already gone (so tearing a session down twice cannot raise)
        self.closed = False
        self._files: Dict[str, DiskFile] = {}
        self.stats = ServerStats()
        self._journal = None
        self._recovering = False
        self._recover_if_needed()

    def _file(self, name: str) -> DiskFile:
        handle = self._files.get(name)
        if handle is None:
            handle = DiskFile(
                os.path.join(self.directory, name),
                faults=self.faults,
                repair_torn_tail=self._recovering,
            )
            self._files[name] = handle
        if self._journal is not None:
            # first touch in this transaction: record the file's length so
            # abort/recovery can truncate pages allocated mid-transaction
            self._journal.record_length(name, handle.num_pages)
        return handle

    def _charge(self) -> None:
        self.stats.simulated_latency += self.request_delay
        if self.request_delay:
            time.sleep(self.request_delay)

    # -- the request interface used by clients -----------------------------

    def read_page(self, file_name: str, page_id: int) -> bytearray:
        self.stats.page_reads += 1
        self._charge()
        return self._file(file_name).read_page(page_id)

    def write_page(self, file_name: str, page_id: int, data: bytes) -> None:
        self.stats.page_writes += 1
        self._charge()
        self.faults.check("server.write_page")
        handle = self._file(file_name)
        if self._journal is not None and page_id < handle.num_pages:
            recorded = self._journal.recorded_length(file_name)
            if recorded is None or page_id < recorded:
                # only pages that existed before the transaction need a
                # before-image; younger pages are truncated away on undo
                self._journal.record(
                    file_name, page_id, bytes(handle.read_page(page_id))
                )
        handle.write_page(page_id, data)

    def allocate_page(self, file_name: str) -> int:
        self.stats.allocations += 1
        self._charge()
        return self._file(file_name).allocate_page()

    def num_pages(self, file_name: str) -> int:
        return self._file(file_name).num_pages

    def sync(self, file_name: Optional[str] = None) -> None:
        targets = [self._files[file_name]] if file_name else self._files.values()
        for handle in targets:
            handle.sync()

    def close(self) -> None:
        """Close every open page file.  Idempotent: a second close (e.g. a
        ``Session.__exit__`` after an explicit ``close()``) is a no-op."""
        if self.closed:
            return
        self.closed = True
        for handle in self._files.values():
            handle.close()
        self._files.clear()

    # -- transactions (Section 2: delegated to the storage toolkit) -----------

    @property
    def _journal_path(self) -> str:
        return os.path.join(self.directory, "undo.journal")

    def begin_transaction(self) -> None:
        """Start recording page before-images; one transaction at a time
        (CORAL is a single-user system)."""
        from .xact import UndoJournal

        if self._journal is not None:
            raise TransactionError("a transaction is already in progress")
        self._journal = UndoJournal(self._journal_path, faults=self.faults)

    def in_transaction(self) -> bool:
        return self._journal is not None

    def commit_transaction(self) -> None:
        """Make the transaction's writes permanent.  Journal removal is the
        commit point: until the journal is gone, a crash rolls back."""
        if self._journal is None:
            raise TransactionError("no transaction in progress")
        self.faults.check("server.commit")
        self.sync()
        self.faults.check("server.commit.cleanup")
        self._journal.close_and_remove()
        self._journal = None

    def abort_transaction(self) -> None:
        """Restore every before-image recorded since ``begin_transaction``
        and truncate files back to their pre-transaction page counts.

        Any buffer pool over this server must be dropped by the caller
        afterwards — its cached frames may hold aborted contents.
        """
        if self._journal is None:
            raise TransactionError("no transaction in progress")
        self.faults.check("server.abort")
        journal = self._journal
        self._journal = None  # undo writes below must not re-journal
        try:
            for file_name, num_pages in journal.file_lengths().items():
                handle = self._file(file_name)
                if handle.num_pages > num_pages:
                    handle.truncate(num_pages)
            for file_name, page_id, before in journal.before_images():
                handle = self._file(file_name)
                if page_id < handle.num_pages:
                    handle.write_page(page_id, before)
            self.sync()
        except BaseException:
            self._journal = journal  # leave the journal for crash recovery
            raise
        journal.close_and_remove()

    def _recover_if_needed(self) -> None:
        """Roll back a journal left behind by a crash (undo recovery).

        Idempotent by construction: the journal is only read, every applied
        action writes absolute state (truncate-to-length, restore-image),
        and the journal is removed last — so a crash at any point during
        recovery is handled by recovering again on the next open.
        """
        from .xact import read_journal

        if not os.path.exists(self._journal_path):
            return
        self.faults.check("server.recover.start")
        contents = read_journal(self._journal_path)  # StorageError if corrupt
        self._recovering = True
        try:
            for file_name, num_pages in contents.file_lengths.items():
                handle = self._file(file_name)
                if handle.num_pages > num_pages:
                    handle.truncate(num_pages)
            for file_name, page_id, before in contents.before_images:
                self.faults.check("server.recover.entry")
                handle = self._file(file_name)
                if page_id < handle.num_pages:
                    handle.write_page(page_id, before)
            self.sync()
        finally:
            self._recovering = False
        self.faults.check("server.recover.cleanup")
        try:
            os.remove(self._journal_path)
        except OSError as exc:
            raise StorageError(
                f"cannot remove recovered journal {self._journal_path}: {exc}"
            ) from exc
