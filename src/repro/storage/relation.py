"""Persistent relations over the page-based storage manager.

Section 3.2: *"CORAL uses the EXODUS storage manager to support persistent
relations ... Currently, tuples in a persistent relation are restricted to
have fields of primitive types only."*  Section 2: *"a 'get-next-tuple'
request on a persistent relation results in a page-level I/O request by the
buffer manager"* and *"the data can be accessed purely out of pages in the
EXODUS buffer pool"* — scans here decode tuples straight out of buffered
pages; nothing is bulk-copied into in-memory CORAL structures.

A :class:`PersistentRelation` is a heap file of slotted pages plus any number
of B-tree indexes (one page file each).  Relation metadata (arity, declared
indexes) persists in a small JSON catalog next to the page files so a later
process can re-open the relation — the "multiple CORAL processes could
interact by accessing persistent data" story of Section 2.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import StorageError
from ..terms import Arg, BindEnv, resolve
from ..relations.base import (
    GeneratorTupleIterator,
    Relation,
    Tuple,
    TupleIterator,
)
from .btree import BTree, Rid
from .buffer import BufferPool
from .pages import SlottedPage
from .serde import decode_tuple, encode_tuple


class PersistentRelation(Relation):
    """A relation stored in pages, accessed through the buffer pool."""

    def __init__(
        self,
        name: str,
        arity: int,
        pool: BufferPool,
        unique: bool = True,
    ) -> None:
        super().__init__(name, arity)
        self.pool = pool
        self.unique = unique
        self._heap_file = f"{name}.heap"
        #: argument-position tuples with a B-tree, e.g. [(0,), (0, 1)]
        self._index_positions: List[PyTuple[int, ...]] = []
        self._indexes: Dict[PyTuple[int, ...], BTree] = {}
        self._count = 0
        self._last_page_with_space: Optional[int] = None
        self._load_or_create_catalog()

    # -- catalog -----------------------------------------------------------

    @property
    def _catalog_path(self) -> str:
        return os.path.join(self.pool.server.directory, f"{self.name}.meta.json")

    def _load_or_create_catalog(self) -> None:
        if os.path.exists(self._catalog_path):
            try:
                with open(self._catalog_path) as handle:
                    catalog = json.load(handle)
            except OSError as exc:
                raise StorageError(
                    f"cannot read catalog {self._catalog_path}: {exc}"
                ) from exc
            except ValueError as exc:
                raise StorageError(
                    f"catalog {self._catalog_path} is corrupted: {exc}"
                ) from exc
            if catalog["arity"] != self.arity:
                raise StorageError(
                    f"catalog arity {catalog['arity']} != requested {self.arity} "
                    f"for persistent relation {self.name}"
                )
            self.unique = catalog["unique"]
            for positions in catalog["indexes"]:
                self._open_index(tuple(positions))
            self._count = sum(1 for _ in self._heap_records())
        else:
            self._save_catalog()

    def _save_catalog(self) -> None:
        try:
            with open(self._catalog_path, "w") as handle:
                json.dump(
                    {
                        "arity": self.arity,
                        "unique": self.unique,
                        "indexes": [list(p) for p in self._index_positions],
                    },
                    handle,
                )
        except OSError as exc:
            raise StorageError(
                f"cannot write catalog {self._catalog_path}: {exc}"
            ) from exc

    # -- indexes -----------------------------------------------------------

    def _index_file(self, positions: PyTuple[int, ...]) -> str:
        return f"{self.name}.idx_{'_'.join(str(p) for p in positions)}"

    def _open_index(self, positions: PyTuple[int, ...]) -> BTree:
        tree = BTree(self.pool, self._index_file(positions))
        if positions not in self._index_positions:
            self._index_positions.append(positions)
        self._indexes[positions] = tree
        return tree

    def create_index(self, positions: Sequence[int]) -> None:
        """Create a B-tree index on the given argument positions, populating
        it over existing tuples (indexes can be added later, Section 3.2)."""
        key = tuple(sorted(set(positions)))
        if any(p < 0 or p >= self.arity for p in key):
            raise StorageError(f"index positions {list(positions)} out of range")
        if key in self._indexes:
            return
        tree = self._open_index(key)
        for rid, args in self._heap_records():
            tree.insert([args[p] for p in key], rid)
        self._save_catalog()

    # -- heap access ----------------------------------------------------------

    def _heap_records(self) -> Iterator[PyTuple[Rid, List[Arg]]]:
        """Every live record: ((page, slot), decoded args).  One pinned page
        at a time — the scan runs out of the buffer pool."""
        num_pages = self.pool.server.num_pages(self._heap_file)
        for page_id in range(num_pages):
            page = self.pool.fetch_page(self._heap_file, page_id)
            try:
                slotted = SlottedPage(page)
                for slot, record in slotted.records():
                    yield (page_id, slot), decode_tuple(record)
            finally:
                self.pool.unpin(page)

    def _fetch_by_rid(self, rid: Rid) -> Optional[List[Arg]]:
        page = self.pool.fetch_page(self._heap_file, rid[0])
        try:
            record = SlottedPage(page).get_record(rid[1])
            return decode_tuple(record) if record is not None else None
        finally:
            self.pool.unpin(page)

    # -- Relation interface ------------------------------------------------------

    def insert(self, tup: Tuple) -> bool:
        if len(tup.args) != self.arity:
            raise StorageError(
                f"arity mismatch inserting into {self.name}/{self.arity}"
            )
        record = encode_tuple(tup.args)  # also validates primitive-only fields
        if self.unique and self._exists(tup.args):
            return False
        rid = self._append_record(record)
        for positions, tree in self._indexes.items():
            tree.insert([tup.args[p] for p in positions], rid)
        self._count += 1
        return True

    def _exists(self, args: Sequence[Arg]) -> bool:
        best = self._best_index([True] * self.arity)
        if best is not None:
            positions, tree = best
            for rid in tree.search([args[p] for p in positions]):
                stored = self._fetch_by_rid(rid)
                if stored is not None and all(
                    s == a for s, a in zip(stored, args)
                ):
                    return True
            return False
        return any(
            all(s == a for s, a in zip(stored, args))
            for _rid, stored in self._heap_records()
        )

    def _append_record(self, record: bytes) -> Rid:
        if self._last_page_with_space is not None:
            page = self.pool.fetch_page(self._heap_file, self._last_page_with_space)
            try:
                slot = SlottedPage(page).insert_record(record)
                if slot is not None:
                    self.pool.unpin(page, dirty=True)
                    return (page.page_id, slot)
            except Exception:
                self.pool.unpin(page)
                raise
            self.pool.unpin(page)
        page = self.pool.new_page(self._heap_file)
        try:
            slotted = SlottedPage.initialize(page)
            slot = slotted.insert_record(record)
            if slot is None:
                raise StorageError(
                    f"record of {len(record)} bytes does not fit in a page"
                )
            self._last_page_with_space = page.page_id
            return (page.page_id, slot)
        finally:
            self.pool.unpin(page, dirty=True)

    def delete(self, tup: Tuple) -> bool:
        for rid, stored in self._candidate_records(tup.args, None):
            if len(stored) == len(tup.args) and all(
                s == a for s, a in zip(stored, tup.args)
            ):
                page = self.pool.fetch_page(self._heap_file, rid[0])
                try:
                    SlottedPage(page).delete_record(rid[1])
                finally:
                    self.pool.unpin(page, dirty=True)
                for positions, tree in self._indexes.items():
                    tree.delete([stored[p] for p in positions], rid)
                self._count -= 1
                self._last_page_with_space = rid[0]
                return True
        return False

    def _best_index(
        self, bound: Sequence[bool]
    ) -> Optional[PyTuple[PyTuple[int, ...], BTree]]:
        """The widest index all of whose positions are bound by the probe."""
        best: Optional[PyTuple[PyTuple[int, ...], BTree]] = None
        for positions, tree in self._indexes.items():
            if all(bound[p] for p in positions):
                if best is None or len(positions) > len(best[0]):
                    best = (positions, tree)
        return best

    def _candidate_records(
        self, pattern: Optional[Sequence[Arg]], env: Optional[BindEnv]
    ) -> Iterator[PyTuple[Rid, List[Arg]]]:
        if pattern is not None:
            resolved = [resolve(term, env) for term in pattern]
            bound = [term.is_ground() for term in resolved]
            best = self._best_index(bound)
            if best is not None:
                positions, tree = best
                for rid in tree.search([resolved[p] for p in positions]):
                    stored = self._fetch_by_rid(rid)
                    if stored is not None:
                        yield rid, stored
                return
        yield from self._heap_records()

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
    ) -> TupleIterator:
        return GeneratorTupleIterator(
            Tuple(tuple(args))
            for _rid, args in self._candidate_records(pattern, env)
        )

    def scan_ordered(
        self,
        positions: Sequence[int],
        low: Optional[Sequence[Arg]] = None,
        high: Optional[Sequence[Arg]] = None,
    ) -> TupleIterator:
        """A B-tree range scan: tuples with ``low <= key <= high`` on the
        index over ``positions``, in key order (the indexed-scan facility
        of the storage manager, Section 2).  Bounds of None are open."""
        key = tuple(sorted(set(positions)))
        tree = self._indexes.get(key)
        if tree is None:
            raise StorageError(
                f"no B-tree on positions {list(positions)} of {self.name} "
                f"(create_index first)"
            )

        def generate():
            for _key, rid in tree.range_scan(low, high):
                stored = self._fetch_by_rid(rid)
                if stored is not None:
                    yield Tuple(tuple(stored))

        return GeneratorTupleIterator(generate())

    def __len__(self) -> int:
        return self._count
