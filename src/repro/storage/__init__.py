"""The page-based storage manager — the EXODUS stand-in (paper Section 2).

Layers, bottom-up: fixed-size pages with a slotted record layout
(:mod:`repro.storage.pages`); page files and the accounted client-server
boundary (:mod:`repro.storage.file`); the client buffer pool
(:mod:`repro.storage.buffer`); paged B-tree indexes
(:mod:`repro.storage.btree`); persistent relations
(:mod:`repro.storage.relation`); and page-level transactions
(:mod:`repro.storage.xact`).
"""

from .buffer import BufferPool, BufferStats
from .btree import BTree
from .file import DiskFile, ServerStats, StorageServer
from .pages import PAGE_SIZE, Page, SlottedPage
from .relation import PersistentRelation
from .serde import decode_tuple, encode_tuple, sort_key
from .xact import JournalContents, UndoJournal, read_journal

__all__ = [
    "BTree",
    "BufferPool",
    "BufferStats",
    "DiskFile",
    "JournalContents",
    "PAGE_SIZE",
    "Page",
    "PersistentRelation",
    "ServerStats",
    "SlottedPage",
    "StorageServer",
    "UndoJournal",
    "decode_tuple",
    "encode_tuple",
    "read_journal",
    "sort_key",
]
