"""Transactions for the storage manager: a page-level undo journal.

Section 2: *"Transactions and concurrency control are supported by the
EXODUS toolkit, and thus by CORAL."*  CORAL itself delegated the problem;
this stand-in provides the same contract at the granularity CORAL used it —
single-user, page-level atomicity:

* ``begin`` starts a transaction; the *first* physical write to each page
  records its before-image in an on-disk journal;
* ``commit`` discards the journal (all writes are already durable or will
  be on the next flush);
* ``abort`` restores every before-image;
* ``recover`` replays a journal left behind by a crash, restoring the
  pre-transaction state.

Being single-user (the paper's design point) there is no lock manager; the
journal gives atomicity and crash recovery, which is what the tests and the
persistent-relation examples exercise.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Iterator, Tuple as PyTuple

from ..errors import StorageError
from .pages import PAGE_SIZE

_ENTRY_HEADER = struct.Struct(">HI")  # file-name length, page id


class UndoJournal:
    """Before-images for one in-flight transaction, persisted to disk."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._recorded: Dict[PyTuple[str, int], bytes] = {}
        self._handle = open(path, "wb")

    def record(self, file_name: str, page_id: int, before: bytes) -> None:
        """Remember the pre-write contents of a page (first write only)."""
        key = (file_name, page_id)
        if key in self._recorded:
            return
        if len(before) != PAGE_SIZE:
            raise StorageError("before-image must be exactly one page")
        self._recorded[key] = before
        name_bytes = file_name.encode("utf-8")
        self._handle.write(_ENTRY_HEADER.pack(len(name_bytes), page_id))
        self._handle.write(name_bytes)
        self._handle.write(before)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def before_images(self) -> Iterator[PyTuple[str, int, bytes]]:
        """All recorded (file, page, before-image) entries, oldest first."""
        for (file_name, page_id), before in self._recorded.items():
            yield file_name, page_id, before

    def close_and_remove(self) -> None:
        self._handle.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __len__(self) -> int:
        return len(self._recorded)


def read_journal(path: str) -> Iterator[PyTuple[str, int, bytes]]:
    """Parse a journal file left on disk (crash recovery).

    Truncated trailing entries (a crash mid-append) are ignored — the
    journal is an undo log, so a partially written last entry corresponds
    to a page write that never happened.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset + _ENTRY_HEADER.size <= len(data):
        name_length, page_id = _ENTRY_HEADER.unpack_from(data, offset)
        offset += _ENTRY_HEADER.size
        end = offset + name_length + PAGE_SIZE
        if end > len(data):
            return
        file_name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        before = data[offset : offset + PAGE_SIZE]
        offset += PAGE_SIZE
        yield file_name, page_id, before
