"""Transactions for the storage manager: a checksummed page-level undo journal.

Section 2: *"Transactions and concurrency control are supported by the
EXODUS toolkit, and thus by CORAL."*  CORAL itself delegated the problem;
this stand-in provides the same contract at the granularity CORAL used it —
single-user, page-level atomicity:

* ``begin`` starts a transaction; the *first* physical write to each page
  records its before-image in an on-disk journal, and the first touch of
  each file records the file's page count (so pages allocated mid-
  transaction can be truncated away on abort);
* ``commit`` syncs the data files and then discards the journal — journal
  removal *is* the commit point;
* ``abort`` restores every before-image and truncates files back to their
  recorded lengths;
* ``recover`` replays a journal left behind by a crash, restoring the
  pre-transaction state.  Recovery is idempotent: it only reads the journal
  and writes absolute state, so a crash *during* recovery is recovered by
  simply recovering again.

Journal format v2 (v1 had neither header nor checksums)::

    header:  magic "CORALJ2\\n" | version:u16
    entry:   kind:u8 | name_len:u16 | value:u32 | crc:u32 | name | payload

``kind`` is ``PAGE`` (value = page id, payload = one page before-image) or
``FILE_LEN`` (value = the file's page count at first touch, no payload).
``crc`` is CRC32 over kind, name_len, value, name, and payload.  On read, a
*truncated* trailing entry (a crash mid-append) is ignored — the journal is
an undo log, so a torn last entry corresponds to a page write that never
happened — but a *corrupted* entry (bytes present, checksum wrong) halts
recovery with :class:`StorageError`: applying a garbage before-image would
silently destroy committed data, which is strictly worse than stopping.

Being single-user (the paper's design point) there is no lock manager; the
journal gives atomicity and crash recovery, which is what the crash sweep
(``tests/test_crash_sweep.py``) exercises through the fault-injection hooks
(:mod:`repro.faults`) threaded through every append and fsync here.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple as PyTuple

from ..errors import StorageError
from ..faults import PASSIVE, FaultInjector, SimulatedCrash
from .pages import PAGE_SIZE

JOURNAL_MAGIC = b"CORALJ2\n"
JOURNAL_VERSION = 2

_FILE_HEADER = struct.Struct(">8sH")  # magic, version
_ENTRY_HEADER = struct.Struct(">BHII")  # kind, file-name length, value, crc32

#: entry kinds
KIND_PAGE = 1  # value = page id, payload = PAGE_SIZE before-image
KIND_FILE_LEN = 2  # value = num_pages at first touch, no payload


def _entry_crc(kind: int, name_bytes: bytes, value: int, payload: bytes) -> int:
    crc = zlib.crc32(bytes((kind,)))
    crc = zlib.crc32(_ENTRY_HEADER.pack(kind, len(name_bytes), value, 0)[1:7], crc)
    crc = zlib.crc32(name_bytes, crc)
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


def _encode_entry(kind: int, file_name: str, value: int, payload: bytes) -> bytes:
    name_bytes = file_name.encode("utf-8")
    crc = _entry_crc(kind, name_bytes, value, payload)
    return (
        _ENTRY_HEADER.pack(kind, len(name_bytes), value, crc)
        + name_bytes
        + payload
    )


class UndoJournal:
    """Before-images and file lengths for one in-flight transaction,
    persisted (and fsynced, entry by entry) to disk."""

    def __init__(self, path: str, faults: Optional[FaultInjector] = None) -> None:
        self.path = path
        self.faults = faults if faults is not None else PASSIVE
        self._recorded: Dict[PyTuple[str, int], bytes] = {}
        self._lengths: Dict[str, int] = {}
        try:
            self._handle = open(path, "wb", buffering=0)
            self._handle.write(_FILE_HEADER.pack(JOURNAL_MAGIC, JOURNAL_VERSION))
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot create undo journal {path}: {exc}") from exc

    # -- appends -------------------------------------------------------------

    def _append(self, kind: int, file_name: str, value: int, payload: bytes) -> None:
        entry = _encode_entry(kind, file_name, value, payload)
        keep = self.faults.check("journal.record")
        try:
            if keep is not None:
                # torn journal append: a prefix of the entry reaches disk,
                # then the process dies
                self._handle.write(entry[:keep])
                raise SimulatedCrash(
                    f"injected torn journal append ({keep}/{len(entry)} bytes)"
                )
            self._handle.write(entry)
            self.faults.check("journal.sync")
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(
                f"undo journal append failed for {self.path}: {exc}"
            ) from exc

    def record(self, file_name: str, page_id: int, before: bytes) -> None:
        """Remember the pre-write contents of a page (first write only)."""
        key = (file_name, page_id)
        if key in self._recorded:
            return
        if len(before) != PAGE_SIZE:
            raise StorageError("before-image must be exactly one page")
        self._append(KIND_PAGE, file_name, page_id, before)
        self._recorded[key] = before

    def record_length(self, file_name: str, num_pages: int) -> None:
        """Remember a file's page count at its first touch in this
        transaction (first touch only); abort/recovery truncates back."""
        if file_name in self._lengths:
            return
        self._append(KIND_FILE_LEN, file_name, num_pages, b"")
        self._lengths[file_name] = num_pages

    # -- reads (abort path) ----------------------------------------------------

    def recorded_length(self, file_name: str) -> Optional[int]:
        return self._lengths.get(file_name)

    def file_lengths(self) -> Dict[str, int]:
        return dict(self._lengths)

    def before_images(self) -> Iterator[PyTuple[str, int, bytes]]:
        """All recorded (file, page, before-image) entries, oldest first."""
        for (file_name, page_id), before in self._recorded.items():
            yield file_name, page_id, before

    def close_and_remove(self) -> None:
        try:
            self._handle.close()
            if os.path.exists(self.path):
                os.remove(self.path)
        except OSError as exc:
            raise StorageError(
                f"cannot remove undo journal {self.path}: {exc}"
            ) from exc

    def __len__(self) -> int:
        return len(self._recorded)


class JournalContents:
    """A parsed on-disk journal: what recovery needs to undo."""

    __slots__ = ("file_lengths", "before_images")

    def __init__(
        self,
        file_lengths: Dict[str, int],
        before_images: List[PyTuple[str, int, bytes]],
    ) -> None:
        self.file_lengths = file_lengths
        self.before_images = before_images


def read_journal(path: str) -> JournalContents:
    """Parse a journal file left on disk (crash recovery).

    Truncated trailing entries (a crash mid-append) are ignored, but any
    corrupted entry — present in full yet failing its CRC32, or carrying an
    unknown kind — raises :class:`StorageError`: recovery must halt rather
    than apply garbage before-images over committed data.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise StorageError(f"cannot read undo journal {path}: {exc}") from exc
    if len(data) < _FILE_HEADER.size:
        # crash before the header reached disk: an empty transaction
        return JournalContents({}, [])
    magic, version = _FILE_HEADER.unpack_from(data, 0)
    if magic != JOURNAL_MAGIC:
        raise StorageError(
            f"undo journal {path} has bad magic {magic!r}; refusing to recover "
            f"from an unrecognized journal"
        )
    if version != JOURNAL_VERSION:
        raise StorageError(
            f"undo journal {path} has unsupported version {version} "
            f"(expected {JOURNAL_VERSION})"
        )

    lengths: Dict[str, int] = {}
    images: List[PyTuple[str, int, bytes]] = []
    seen_pages = set()
    offset = _FILE_HEADER.size
    size = len(data)
    while offset < size:
        if offset + _ENTRY_HEADER.size > size:
            return JournalContents(lengths, images)  # torn trailing header
        kind, name_length, value, crc = _ENTRY_HEADER.unpack_from(data, offset)
        payload_length = PAGE_SIZE if kind == KIND_PAGE else 0
        end = offset + _ENTRY_HEADER.size + name_length + payload_length
        if kind not in (KIND_PAGE, KIND_FILE_LEN):
            raise StorageError(
                f"undo journal {path} has an entry of unknown kind {kind} at "
                f"offset {offset}; recovery halted"
            )
        if end > size:
            return JournalContents(lengths, images)  # torn trailing entry
        name_start = offset + _ENTRY_HEADER.size
        name_bytes = data[name_start : name_start + name_length]
        payload = data[name_start + name_length : end]
        if _entry_crc(kind, name_bytes, value, payload) != crc:
            raise StorageError(
                f"undo journal {path} has a corrupted entry at offset "
                f"{offset} (checksum mismatch); recovery halted"
            )
        file_name = name_bytes.decode("utf-8")
        if kind == KIND_FILE_LEN:
            lengths.setdefault(file_name, value)
        else:
            key = (file_name, value)
            if key not in seen_pages:
                seen_pages.add(key)
                images.append((file_name, value, payload))
        offset = end
    return JournalContents(lengths, images)
