"""A paged B-tree index for persistent relations.

Section 3.3: *"Hash-based indices for in-memory relations and B-tree indices
for persistent relations are currently available in the CORAL system."*

The tree lives in its own page file, accessed through the client buffer pool
like every other page, so index probes show up in the same I/O accounting as
heap scans.  Keys are tuples of primitive-typed arguments (the persistent
restriction, Section 3.2) compared through :func:`repro.storage.serde.sort_key`;
values are record ids ``(heap_page_id, slot)``.  Duplicate keys are allowed —
a relation may index a non-unique prefix of its arguments.

Structure: page 0 is a meta page holding the root pointer; leaves are
singly linked for range scans.  Deletion is lazy (entries are removed from
leaves without rebalancing), the usual engineering trade-off in systems whose
relations grow monotonically during fixpoint evaluation.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import StorageError
from ..terms import Arg
from .buffer import BufferPool
from .pages import PAGE_SIZE
from .serde import decode_tuple, encode_tuple, sort_key

#: Record id: (heap page id, slot number).
Rid = PyTuple[int, int]

_META = struct.Struct(">4sI")  # magic, root page id
_MAGIC = b"BTR1"
_NODE_HEADER = struct.Struct(">BHi")  # is_leaf, count, next_leaf (-1 = none)
_LEAF_ENTRY_FIXED = struct.Struct(">HIH")  # key_len, rid page, rid slot
_BRANCH_ENTRY_FIXED = struct.Struct(">HI")  # key_len, child page id

#: Split a node once it holds this many entries ...
MAX_KEYS = 32
#: ... or once its serialized form would exceed this many bytes.
MAX_NODE_BYTES = PAGE_SIZE - 64


class _Node:
    """Deserialized form of one B-tree node."""

    __slots__ = ("page_id", "is_leaf", "keys", "rids", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[PyTuple] = []
        #: leaf payloads, parallel to keys
        self.rids: List[Rid] = []
        #: branch children: len(keys) + 1 page ids
        self.children: List[int] = []
        self.next_leaf: int = -1

    # -- serialization -------------------------------------------------------

    def serialize(self) -> bytes:
        parts = [
            _NODE_HEADER.pack(1 if self.is_leaf else 0, len(self.keys), self.next_leaf)
        ]
        if self.is_leaf:
            for key, rid in zip(self.keys, self.rids):
                blob = _encode_key(key)
                parts.append(_LEAF_ENTRY_FIXED.pack(len(blob), rid[0], rid[1]))
                parts.append(blob)
        else:
            parts.append(struct.pack(">I", self.children[0]))
            for key, child in zip(self.keys, self.children[1:]):
                blob = _encode_key(key)
                parts.append(_BRANCH_ENTRY_FIXED.pack(len(blob), child))
                parts.append(blob)
        data = b"".join(parts)
        if len(data) > PAGE_SIZE:
            raise StorageError(
                f"B-tree node overflow ({len(data)} bytes): key too large for a page"
            )
        return data

    @staticmethod
    def deserialize(page_id: int, data: bytes) -> "_Node":
        is_leaf, count, next_leaf = _NODE_HEADER.unpack_from(data, 0)
        node = _Node(page_id, bool(is_leaf))
        node.next_leaf = next_leaf
        offset = _NODE_HEADER.size
        if node.is_leaf:
            for _ in range(count):
                key_len, rid_page, rid_slot = _LEAF_ENTRY_FIXED.unpack_from(
                    data, offset
                )
                offset += _LEAF_ENTRY_FIXED.size
                node.keys.append(_decode_key(data[offset : offset + key_len]))
                node.rids.append((rid_page, rid_slot))
                offset += key_len
        else:
            (first_child,) = struct.unpack_from(">I", data, offset)
            offset += 4
            node.children.append(first_child)
            for _ in range(count):
                key_len, child = _BRANCH_ENTRY_FIXED.unpack_from(data, offset)
                offset += _BRANCH_ENTRY_FIXED.size
                node.keys.append(_decode_key(data[offset : offset + key_len]))
                node.children.append(child)
                offset += key_len
        return node

    def serialized_size(self) -> int:
        size = _NODE_HEADER.size + (0 if self.is_leaf else 4)
        for key in self.keys:
            size += len(_encode_key(key)) + (
                _LEAF_ENTRY_FIXED.size if self.is_leaf else _BRANCH_ENTRY_FIXED.size
            )
        return size


def _encode_key(key: PyTuple) -> bytes:
    from .serde import key_to_args

    return encode_tuple(key_to_args(key))


def _decode_key(blob: bytes) -> PyTuple:
    return sort_key(decode_tuple(blob))


class BTreeStats:
    """Node-level accounting shared by every B-tree on one buffer pool.

    Counts logical node operations (deserializations, serializations,
    splits); whether a node read also costs a server round trip is the
    buffer pool's story, so the two sets of counters compose rather than
    double-count.
    """

    __slots__ = ("node_reads", "node_writes", "splits")

    def __init__(self) -> None:
        self.node_reads = 0
        self.node_writes = 0
        self.splits = 0

    def reset(self) -> None:
        self.node_reads = 0
        self.node_writes = 0
        self.splits = 0

    def snapshot(self) -> dict:
        return {
            "node_reads": self.node_reads,
            "node_writes": self.node_writes,
            "splits": self.splits,
        }

    def __repr__(self) -> str:
        return (
            f"<BTreeStats reads={self.node_reads} writes={self.node_writes} "
            f"splits={self.splits}>"
        )


class BTree:
    """The index proper: insert/delete/search/range over (key, rid) pairs."""

    def __init__(self, pool: BufferPool, file_name: str) -> None:
        self.pool = pool
        self.file_name = file_name
        stats = getattr(pool, "btree_stats", None)
        if stats is None:
            stats = pool.btree_stats = BTreeStats()
        self.stats = stats
        if self.pool.server.num_pages(file_name) == 0:
            meta = self.pool.new_page(file_name)  # page 0
            root = self.pool.new_page(file_name)  # page 1: empty leaf root
            try:
                node = _Node(root.page_id, is_leaf=True)
                root.data[: len(node.serialize())] = node.serialize()
                self._write_meta(meta, root.page_id)
            finally:
                self.pool.unpin(root, dirty=True)
                self.pool.unpin(meta, dirty=True)

    # -- meta page --------------------------------------------------------------

    def _write_meta(self, page, root_id: int) -> None:
        page.data[: _META.size] = _META.pack(_MAGIC, root_id)
        page.dirty = True

    def _root_id(self) -> int:
        page = self.pool.fetch_page(self.file_name, 0)
        try:
            magic, root_id = _META.unpack_from(page.data, 0)
            if magic != _MAGIC:
                raise StorageError(f"{self.file_name} is not a B-tree file")
            return root_id
        finally:
            self.pool.unpin(page)

    def _set_root(self, root_id: int) -> None:
        page = self.pool.fetch_page(self.file_name, 0)
        try:
            self._write_meta(page, root_id)
        finally:
            self.pool.unpin(page, dirty=True)

    # -- node I/O ---------------------------------------------------------------

    def _read_node(self, page_id: int) -> _Node:
        self.stats.node_reads += 1
        page = self.pool.fetch_page(self.file_name, page_id)
        try:
            return _Node.deserialize(page_id, bytes(page.data))
        finally:
            self.pool.unpin(page)

    def _write_node(self, node: _Node) -> None:
        self.stats.node_writes += 1
        page = self.pool.fetch_page(self.file_name, node.page_id)
        try:
            blob = node.serialize()
            page.data[:] = blob + bytes(PAGE_SIZE - len(blob))
        finally:
            self.pool.unpin(page, dirty=True)

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self.pool.new_page(self.file_name)
        try:
            return _Node(page.page_id, is_leaf)
        finally:
            self.pool.unpin(page, dirty=True)

    # -- public operations ---------------------------------------------------------

    def insert(self, key_args: Sequence[Arg], rid: Rid) -> None:
        """Add one (key, rid) entry.  Duplicate keys are permitted."""
        key = sort_key(key_args)
        root = self._read_node(self._root_id())
        split = self._insert_into(root, key, rid)
        if split is not None:
            middle_key, right_id = split
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [root.page_id, right_id]
            self._write_node(new_root)
            self._set_root(new_root.page_id)

    def _insert_into(
        self, node: _Node, key: PyTuple, rid: Rid
    ) -> Optional[PyTuple[PyTuple, int]]:
        """Insert under ``node``; returns (separator, new-right-page) if split."""
        if node.is_leaf:
            position = _upper_bound(node.keys, key)
            node.keys.insert(position, key)
            node.rids.insert(position, rid)
        else:
            slot = _child_index(node.keys, key)
            child = self._read_node(node.children[slot])
            split = self._insert_into(child, key, rid)
            if split is not None:
                middle_key, right_id = split
                node.keys.insert(slot, middle_key)
                node.children.insert(slot + 1, right_id)

        if len(node.keys) > MAX_KEYS or node.serialized_size() > MAX_NODE_BYTES:
            return self._split(node)
        self._write_node(node)
        return None

    def _split(self, node: _Node) -> PyTuple[PyTuple, int]:
        self.stats.splits += 1
        middle = len(node.keys) // 2
        right = self._new_node(node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[middle:]
            right.rids = node.rids[middle:]
            node.keys = node.keys[:middle]
            node.rids = node.rids[:middle]
            right.next_leaf = node.next_leaf
            node.next_leaf = right.page_id
            separator = right.keys[0]
        else:
            separator = node.keys[middle]
            right.keys = node.keys[middle + 1 :]
            right.children = node.children[middle + 1 :]
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]
        self._write_node(node)
        self._write_node(right)
        return separator, right.page_id

    def _find_leaf(self, key: PyTuple) -> _Node:
        """Leftmost leaf that can contain ``key`` — equal keys may span a
        separator, so descent breaks ties to the left and lookups walk the
        leaf chain rightward."""
        node = self._read_node(self._root_id())
        while not node.is_leaf:
            node = self._read_node(node.children[_lower_bound(node.keys, key)])
        return node

    def search(self, key_args: Sequence[Arg]) -> List[Rid]:
        """All rids stored under exactly this key."""
        key = sort_key(key_args)
        node = self._find_leaf(key)
        results: List[Rid] = []
        while True:
            position = _lower_bound(node.keys, key)
            while position < len(node.keys) and node.keys[position] == key:
                results.append(node.rids[position])
                position += 1
            if position < len(node.keys) or node.next_leaf < 0:
                return results
            node = self._read_node(node.next_leaf)

    def range_scan(
        self,
        low: Optional[Sequence[Arg]] = None,
        high: Optional[Sequence[Arg]] = None,
    ) -> Iterator[PyTuple[PyTuple, Rid]]:
        """Yield (key, rid) for low <= key <= high, in key order."""
        low_key = sort_key(low) if low is not None else None
        high_key = sort_key(high) if high is not None else None
        if low_key is not None:
            node = self._find_leaf(low_key)
            position = _lower_bound(node.keys, low_key)
        else:
            node = self._read_node(self._root_id())
            while not node.is_leaf:
                node = self._read_node(node.children[0])
            position = 0
        while True:
            while position < len(node.keys):
                key = node.keys[position]
                if high_key is not None and key > high_key:
                    return
                yield key, node.rids[position]
                position += 1
            if node.next_leaf < 0:
                return
            node = self._read_node(node.next_leaf)
            position = 0

    def delete(self, key_args: Sequence[Arg], rid: Rid) -> bool:
        """Remove one (key, rid) entry (lazy: leaves are not rebalanced)."""
        key = sort_key(key_args)
        node = self._find_leaf(key)
        while True:
            position = _lower_bound(node.keys, key)
            while position < len(node.keys) and node.keys[position] == key:
                if node.rids[position] == rid:
                    del node.keys[position]
                    del node.rids[position]
                    self._write_node(node)
                    return True
                position += 1
            if position < len(node.keys) or node.next_leaf < 0:
                return False
            node = self._read_node(node.next_leaf)

    # -- diagnostics ------------------------------------------------------------

    def height(self) -> int:
        node = self._read_node(self._root_id())
        levels = 1
        while not node.is_leaf:
            node = self._read_node(node.children[0])
            levels += 1
        return levels

    def check_invariants(self) -> None:
        """Verify ordering and structure; raises StorageError on corruption.

        Used by the property-based tests: after any sequence of inserts and
        deletes the tree must keep sorted leaves, a consistent leaf chain,
        and separator keys bounding their subtrees.
        """
        self._check_node(self._read_node(self._root_id()), None, None)
        previous_last: Optional[PyTuple] = None
        for key, _rid in self.range_scan():
            if previous_last is not None and key < previous_last:
                raise StorageError("B-tree leaf chain out of order")
            previous_last = key

    def _check_node(
        self, node: _Node, low: Optional[PyTuple], high: Optional[PyTuple]
    ) -> None:
        for left, right in zip(node.keys, node.keys[1:]):
            if left > right:
                raise StorageError(f"unsorted keys in node {node.page_id}")
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError(f"key below separator in node {node.page_id}")
            if high is not None and key > high:
                raise StorageError(f"key above separator in node {node.page_id}")
        if not node.is_leaf:
            if len(node.children) != len(node.keys) + 1:
                raise StorageError(f"branch fanout mismatch in node {node.page_id}")
            bounds = [low] + list(node.keys) + [high]
            for index, child_id in enumerate(node.children):
                self._check_node(
                    self._read_node(child_id), bounds[index], bounds[index + 1]
                )


def _lower_bound(keys: List[PyTuple], key: PyTuple) -> int:
    import bisect

    return bisect.bisect_left(keys, key)


def _upper_bound(keys: List[PyTuple], key: PyTuple) -> int:
    import bisect

    return bisect.bisect_right(keys, key)


def _child_index(keys: List[PyTuple], key: PyTuple) -> int:
    """Which child subtree a key belongs to (rightmost on equality, so equal
    keys can span the separator and search walks the leaf chain)."""
    import bisect

    return bisect.bisect_right(keys, key)
