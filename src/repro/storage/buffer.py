"""The client-side buffer pool.

Section 2: *"Data stored using the EXODUS storage manager is paged into
EXODUS buffers on demand, making use of the indexing and scan facilities of
the storage manager ... the data can be accessed purely out of pages in the
EXODUS buffer pool."*  Section 3.2: *"CORAL is the client process, and
maintains buffers for persistent relations.  If a requested tuple is not in
the client buffer pool, a request is forwarded to the EXODUS server and the
page with the requested tuple is retrieved."*

A bounded pool of frames with pin/unpin discipline and LRU eviction of
unpinned frames.  Dirty pages write back to the server on eviction and on
``flush_all``.  Hit/miss statistics feed the storage benchmarks (experiment
E11): the paper's 'get-next-tuple request becomes a page-level I/O request'
claim is observable as pool misses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple as PyTuple

from ..errors import SessionClosedError, StorageError
from .file import StorageServer
from .pages import Page


class BufferStats:
    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy; the profiler diffs two of these."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    def __repr__(self) -> str:
        return (
            f"<BufferStats hits={self.hits} misses={self.misses} "
            f"hit_rate={self.hit_rate:.2%} evictions={self.evictions}>"
        )


class BufferPool:
    """A fixed-capacity page cache in front of a :class:`StorageServer`."""

    def __init__(self, server: StorageServer, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.server = server
        self.capacity = capacity
        #: (file, page_id) -> Page, in LRU order (oldest first)
        self._frames: "OrderedDict[PyTuple[str, int], Page]" = OrderedDict()
        self.stats = BufferStats()
        #: node-level B-tree counters; lazily attached by the first
        #: :class:`~repro.storage.btree.BTree` opened over this pool (kept
        #: here so every index on the pool shares one accounting object)
        self.btree_stats = None

    def __len__(self) -> int:
        return len(self._frames)

    # -- pin / unpin ---------------------------------------------------------

    def _require_open(self) -> None:
        """Even cache hits are refused once the server is closed: a page
        served from a dead stack would never be flushed, and writes against
        it would be silently lost (the server used to lazily re-open page
        files on demand, masking exactly that)."""
        if self.server.closed:
            raise SessionClosedError(
                "storage is closed: the owning session (or its storage "
                "server) was shut down; reopen storage before touching "
                "persistent relations"
            )

    def fetch_page(self, file_name: str, page_id: int) -> Page:
        """Pin and return the page, reading it from the server on a miss."""
        self._require_open()
        key = (file_name, page_id)
        page = self._frames.get(key)
        if page is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
            page.pin_count += 1
            return page
        self.stats.misses += 1
        self._ensure_frame_available()
        data = self.server.read_page(file_name, page_id)
        page = Page(file_name, page_id, data)
        page.pin_count = 1
        self._frames[key] = page
        return page

    def new_page(self, file_name: str) -> Page:
        """Allocate a fresh page at the server and pin it."""
        self._require_open()
        self._ensure_frame_available()
        page_id = self.server.allocate_page(file_name)
        page = Page(file_name, page_id)
        page.pin_count = 1
        page.dirty = True
        self._frames[(file_name, page_id)] = page
        return page

    def unpin(self, page: Page, dirty: bool = False) -> None:
        if page.pin_count <= 0:
            raise StorageError(f"unpin of unpinned page {page!r}")
        page.pin_count -= 1
        if dirty:
            page.dirty = True

    # -- eviction / flushing -----------------------------------------------

    def _ensure_frame_available(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for key, page in self._frames.items():
            if page.pin_count == 0:
                self._evict(key, page)
                return
        raise StorageError(
            f"buffer pool exhausted: all {self.capacity} frames are pinned"
        )

    def _evict(self, key: PyTuple[str, int], page: Page) -> None:
        if page.dirty:
            try:
                self.server.faults.check("buffer.writeback")
            except OSError as exc:
                raise StorageError(f"writeback failed: {exc}") from exc
            self.server.write_page(page.file_name, page.page_id, bytes(page.data))
            self.stats.writebacks += 1
        del self._frames[key]
        self.stats.evictions += 1

    def flush_all(self) -> None:
        """Write every dirty page back to the server (pages stay cached)."""
        for page in self._frames.values():
            if page.dirty:
                try:
                    self.server.faults.check("buffer.flush")
                except OSError as exc:
                    raise StorageError(f"flush failed: {exc}") from exc
                self.server.write_page(
                    page.file_name, page.page_id, bytes(page.data)
                )
                self.stats.writebacks += 1
                page.dirty = False

    def drop_all(self) -> None:
        """Flush then empty the pool (for tests of cold-cache behaviour)."""
        self.flush_all()
        pinned = [p for p in self._frames.values() if p.pin_count]
        if pinned:
            raise StorageError(f"cannot drop pool: {len(pinned)} pages pinned")
        self._frames.clear()
