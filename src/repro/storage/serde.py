"""Serialization of primitive-typed tuples for the storage manager.

Section 3.1: *"The current implementation restricts data that is stored
using the EXODUS storage manager to be limited to terms of these primitive
types.  Such data is stored on disk in its machine representation."*

The codec therefore handles exactly the primitive types — integers (including
arbitrary precision), doubles, strings, and atoms — and refuses functor terms
and variables, mirroring the paper's restriction (Section 3.2 carries it
forward: "tuples in a persistent relation are restricted to have fields of
primitive types only").

Two encodings are provided:

* :func:`encode_tuple` / :func:`decode_tuple` — the record format used in
  slotted heap pages;
* :func:`sort_key` — an order-preserving in-memory key for B-tree
  comparisons (a tuple of ``(type-tag, value)`` pairs, giving a total order
  across mixed types).
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple as PyTuple

from ..errors import StorageError
from ..terms import Arg, Atom, BigNum, Double, Int, Str

_TAG_INT = 1
_TAG_DOUBLE = 2
_TAG_STR = 3
_TAG_ATOM = 4
_TAG_BIGNUM = 5

#: Integers outside this range are stored length-prefixed as bignums.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_arg(arg: Arg) -> bytes:
    """Encode one primitive argument to its machine representation."""
    if isinstance(arg, Int):  # covers BigNum
        value = arg.value
        if _INT64_MIN <= value <= _INT64_MAX and not isinstance(arg, BigNum):
            return struct.pack(">Bq", _TAG_INT, value)
        payload = value.to_bytes(
            (value.bit_length() + 8) // 8 or 1, "big", signed=True
        )
        return struct.pack(">BI", _TAG_BIGNUM, len(payload)) + payload
    if isinstance(arg, Double):
        return struct.pack(">Bd", _TAG_DOUBLE, arg.value)
    if isinstance(arg, Str):
        payload = arg.value.encode("utf-8")
        return struct.pack(">BI", _TAG_STR, len(payload)) + payload
    if isinstance(arg, Atom):
        payload = arg.name.encode("utf-8")
        return struct.pack(">BI", _TAG_ATOM, len(payload)) + payload
    raise StorageError(
        f"persistent relations are restricted to primitive types; got {arg!r}"
    )


def decode_arg(data: bytes, offset: int) -> PyTuple[Arg, int]:
    """Decode one argument starting at ``offset``; returns (arg, new offset)."""
    tag = data[offset]
    offset += 1
    if tag == _TAG_INT:
        (value,) = struct.unpack_from(">q", data, offset)
        return Int(value), offset + 8
    if tag == _TAG_DOUBLE:
        (value,) = struct.unpack_from(">d", data, offset)
        return Double(value), offset + 8
    if tag in (_TAG_STR, _TAG_ATOM, _TAG_BIGNUM):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        payload = data[offset : offset + length]
        offset += length
        if tag == _TAG_STR:
            return Str(payload.decode("utf-8")), offset
        if tag == _TAG_ATOM:
            return Atom(payload.decode("utf-8")), offset
        return BigNum(int.from_bytes(payload, "big", signed=True)), offset
    raise StorageError(f"corrupt record: unknown type tag {tag}")


def encode_tuple(args: Sequence[Arg]) -> bytes:
    """Encode a whole tuple as one heap record."""
    parts = [struct.pack(">H", len(args))]
    for arg in args:
        parts.append(encode_arg(arg))
    return b"".join(parts)


def decode_tuple(data: bytes) -> List[Arg]:
    """Decode a heap record back into its argument list."""
    (count,) = struct.unpack_from(">H", data, 0)
    offset = 2
    args: List[Arg] = []
    for _ in range(count):
        arg, offset = decode_arg(data, offset)
        args.append(arg)
    return args


def sort_key(args: Sequence[Arg]) -> PyTuple:
    """An order-preserving comparison key for B-tree indexes.

    Each argument contributes ``(tag, value)``; tuples of such pairs compare
    with a total order even across mixed types (ordered by tag first).
    """
    key = []
    for arg in args:
        if isinstance(arg, Int):
            key.append((_TAG_INT, arg.value))
        elif isinstance(arg, Double):
            key.append((_TAG_DOUBLE, arg.value))
        elif isinstance(arg, Str):
            key.append((_TAG_STR, arg.value))
        elif isinstance(arg, Atom):
            key.append((_TAG_ATOM, arg.name))
        else:
            raise StorageError(
                f"B-tree keys are restricted to primitive types; got {arg!r}"
            )
    return tuple(key)


def key_to_args(key: PyTuple) -> List[Arg]:
    """Inverse of :func:`sort_key` (used when scanning an index)."""
    args: List[Arg] = []
    for tag, value in key:
        if tag == _TAG_INT:
            args.append(Int(value))
        elif tag == _TAG_DOUBLE:
            args.append(Double(value))
        elif tag == _TAG_STR:
            args.append(Str(value))
        elif tag == _TAG_ATOM:
            args.append(Atom(value))
        else:
            raise StorageError(f"corrupt key tag {tag}")
    return args
