"""Serialization of primitive-typed tuples for the storage manager.

Section 3.1: *"The current implementation restricts data that is stored
using the EXODUS storage manager to be limited to terms of these primitive
types.  Such data is stored on disk in its machine representation."*

The codec therefore handles exactly the primitive types — integers (including
arbitrary precision), doubles, strings, and atoms — and refuses functor terms
and variables, mirroring the paper's restriction (Section 3.2 carries it
forward: "tuples in a persistent relation are restricted to have fields of
primitive types only").

Three encodings are provided:

* :func:`encode_tuple` / :func:`decode_tuple` — the record format used in
  slotted heap pages;
* :func:`encode_batch` / :func:`decode_batch` — a self-describing *batch* of
  tuples under a versioned magic header, shared by the wire protocol
  (:mod:`repro.server` answer batches) and any future bulk file format, so
  the disk record format and the wire format cannot silently drift: both
  sides go through the same per-argument codec, and a reader confronted
  with a different codec version fails with a clear error instead of
  misparsing;
* :func:`sort_key` — an order-preserving in-memory key for B-tree
  comparisons (a tuple of ``(type-tag, value)`` pairs, giving a total order
  across mixed types).
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple as PyTuple

from ..errors import StorageError
from ..terms import Arg, Atom, BigNum, Double, Int, Str

_TAG_INT = 1
_TAG_DOUBLE = 2
_TAG_STR = 3
_TAG_ATOM = 4
_TAG_BIGNUM = 5

#: Integers outside this range are stored length-prefixed as bignums.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_arg(arg: Arg) -> bytes:
    """Encode one primitive argument to its machine representation."""
    if isinstance(arg, Int):  # covers BigNum
        value = arg.value
        if _INT64_MIN <= value <= _INT64_MAX and not isinstance(arg, BigNum):
            return struct.pack(">Bq", _TAG_INT, value)
        payload = value.to_bytes(
            (value.bit_length() + 8) // 8 or 1, "big", signed=True
        )
        return struct.pack(">BI", _TAG_BIGNUM, len(payload)) + payload
    if isinstance(arg, Double):
        return struct.pack(">Bd", _TAG_DOUBLE, arg.value)
    if isinstance(arg, Str):
        payload = arg.value.encode("utf-8")
        return struct.pack(">BI", _TAG_STR, len(payload)) + payload
    if isinstance(arg, Atom):
        payload = arg.name.encode("utf-8")
        return struct.pack(">BI", _TAG_ATOM, len(payload)) + payload
    raise StorageError(
        f"persistent relations are restricted to primitive types; got {arg!r}"
    )


def decode_arg(data: bytes, offset: int) -> PyTuple[Arg, int]:
    """Decode one argument starting at ``offset``; returns (arg, new offset).

    Every way a corrupt buffer can fail — truncated mid-field, short
    payload, invalid UTF-8 — surfaces as :class:`StorageError`, never as a
    raw ``struct.error``/``IndexError``/``UnicodeDecodeError``.
    """
    if offset >= len(data):
        raise StorageError("corrupt record: truncated argument tag")
    tag = data[offset]
    offset += 1
    try:
        if tag == _TAG_INT:
            (value,) = struct.unpack_from(">q", data, offset)
            return Int(value), offset + 8
        if tag == _TAG_DOUBLE:
            (value,) = struct.unpack_from(">d", data, offset)
            return Double(value), offset + 8
        if tag in (_TAG_STR, _TAG_ATOM, _TAG_BIGNUM):
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            payload = data[offset : offset + length]
            if len(payload) != length:
                raise StorageError(
                    "corrupt record: truncated argument payload"
                )
            offset += length
            if tag == _TAG_STR:
                return Str(payload.decode("utf-8")), offset
            if tag == _TAG_ATOM:
                return Atom(payload.decode("utf-8")), offset
            return BigNum(int.from_bytes(payload, "big", signed=True)), offset
    except struct.error:
        raise StorageError("corrupt record: truncated argument") from None
    except UnicodeDecodeError:
        raise StorageError("corrupt record: invalid UTF-8 payload") from None
    raise StorageError(f"corrupt record: unknown type tag {tag}")


def encode_tuple(args: Sequence[Arg]) -> bytes:
    """Encode a whole tuple as one heap record."""
    parts = [struct.pack(">H", len(args))]
    for arg in args:
        parts.append(encode_arg(arg))
    return b"".join(parts)


def decode_tuple(data: bytes) -> List[Arg]:
    """Decode a heap record back into its argument list."""
    try:
        (count,) = struct.unpack_from(">H", data, 0)
    except struct.error:
        raise StorageError("corrupt record: truncated arity header") from None
    offset = 2
    args: List[Arg] = []
    for _ in range(count):
        arg, offset = decode_arg(data, offset)
        args.append(arg)
    return args


#: Magic bytes opening every tuple batch ("Coral Batch").
BATCH_MAGIC = b"CB"

#: Version of the per-argument codec above.  Bump whenever a tag's meaning
#: or layout changes; readers refuse other versions outright.
CODEC_VERSION = 1

#: Refuse batches that claim more tuples than this (a corrupt or hostile
#: header must not trigger a giant allocation before the payload runs out).
_MAX_BATCH_TUPLES = 1 << 24


def encode_batch(rows: Sequence[Sequence[Arg]]) -> bytes:
    """Encode many tuples as one self-describing block.

    Layout: ``BATCH_MAGIC`` (2 bytes) + version (1 byte) + tuple count
    (``>I``) + for each tuple a ``>I`` length prefix and its
    :func:`encode_tuple` record.  The same primitive-type restriction as
    persistent relations applies (the paper's Section 3.1 boundary).
    """
    parts = [BATCH_MAGIC, struct.pack(">BI", CODEC_VERSION, len(rows))]
    for row in rows:
        record = encode_tuple(row)
        parts.append(struct.pack(">I", len(record)))
        parts.append(record)
    return b"".join(parts)


def decode_batch(data: bytes) -> List[List[Arg]]:
    """Decode an :func:`encode_batch` block, verifying magic and version."""
    if len(data) < 7:
        raise StorageError(
            f"tuple batch truncated: {len(data)} bytes is shorter than the "
            f"magic header"
        )
    if data[:2] != BATCH_MAGIC:
        raise StorageError(
            f"not a tuple batch: bad magic {data[:2]!r} "
            f"(expected {BATCH_MAGIC!r})"
        )
    version, count = struct.unpack_from(">BI", data, 2)
    if version != CODEC_VERSION:
        raise StorageError(
            f"tuple codec version mismatch: batch is v{version}, this "
            f"reader speaks v{CODEC_VERSION} — refusing to guess at the "
            f"layout"
        )
    if count > _MAX_BATCH_TUPLES:
        raise StorageError(f"corrupt tuple batch: implausible count {count}")
    offset = 7
    rows: List[List[Arg]] = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise StorageError("corrupt tuple batch: truncated record header")
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        record = data[offset : offset + length]
        if len(record) != length:
            raise StorageError("corrupt tuple batch: truncated record body")
        offset += length
        rows.append(decode_tuple(record))
    return rows


def sort_key(args: Sequence[Arg]) -> PyTuple:
    """An order-preserving comparison key for B-tree indexes.

    Each argument contributes ``(tag, value)``; tuples of such pairs compare
    with a total order even across mixed types (ordered by tag first).
    """
    key = []
    for arg in args:
        if isinstance(arg, Int):
            key.append((_TAG_INT, arg.value))
        elif isinstance(arg, Double):
            key.append((_TAG_DOUBLE, arg.value))
        elif isinstance(arg, Str):
            key.append((_TAG_STR, arg.value))
        elif isinstance(arg, Atom):
            key.append((_TAG_ATOM, arg.name))
        else:
            raise StorageError(
                f"B-tree keys are restricted to primitive types; got {arg!r}"
            )
    return tuple(key)


def key_to_args(key: PyTuple) -> List[Arg]:
    """Inverse of :func:`sort_key` (used when scanning an index)."""
    args: List[Arg] = []
    for tag, value in key:
        if tag == _TAG_INT:
            args.append(Int(value))
        elif tag == _TAG_DOUBLE:
            args.append(Double(value))
        elif tag == _TAG_STR:
            args.append(Str(value))
        elif tag == _TAG_ATOM:
            args.append(Atom(value))
        else:
            raise StorageError(f"corrupt key tag {tag}")
    return args
