"""repro — a from-scratch Python reproduction of the CORAL deductive
database system (Ramakrishnan, Srivastava, Sudarshan, Seshadri, SIGMOD 1993).

Quick start::

    from repro import Session

    session = Session()
    session.consult_string('''
        edge(1, 2). edge(2, 3).

        module tc.
        export path(bf, ff).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
    ''')
    for answer in session.query("path(1, X)"):
        print(answer["X"])

See README.md for a tour and DESIGN.md for the system inventory.  Subsystem
packages can also be used directly:

* :mod:`repro.terms` — constants, variables, functor terms, hash-consing,
  binding environments, unification;
* :mod:`repro.relations` — tuples, relations, marks, indexes;
* :mod:`repro.storage` — the page-based storage manager (EXODUS stand-in);
* :mod:`repro.language` — lexer/parser for the declarative language;
* :mod:`repro.rewriting` — magic-sets family and semi-naive rewriting;
* :mod:`repro.eval` — materialized, pipelined, and ordered-search evaluation;
* :mod:`repro.modules` — modules, exports, inter-module calls;
* :mod:`repro.api` — the imperative host-language interface (Session,
  coral_export, ScanDescriptor);
* :mod:`repro.compilemod` — the compiled-evaluation mode (Section 2);
* :mod:`repro.shell` — the interactive interface;
* :mod:`repro.explain` — derivation tracing;
* :mod:`repro.obs` — metrics, query profiling, and event tracing;
* :mod:`repro.server` / :mod:`repro.client` — the concurrent client-server
  query layer with streaming get-next-tuple cursors over TCP.

``RemoteSession`` is importable lazily (``from repro.client import
RemoteSession``) to keep the core import light.
"""

from .api import Answer, QueryResult, ScanDescriptor, Session, coral_export
from .errors import (
    CoralError,
    EvaluationError,
    ModuleError,
    ParseError,
    ProtocolError,
    ResourceLimitError,
    RewriteError,
    SessionClosedError,
    StorageError,
    StratificationError,
    TransactionError,
)
from .eval.limits import ResourceLimits
from .eval.memo import MemoPolicy
from .faults import FaultInjector, SimulatedCrash
from .obs import EventTracer, MetricsRegistry, Profiler, QueryProfile
from .relations import Relation, Tuple
from .terms import Arg, Atom, Double, Functor, Int, Str, Var, from_arg, make_list, to_arg

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "Arg",
    "Atom",
    "CoralError",
    "Double",
    "EvaluationError",
    "EventTracer",
    "FaultInjector",
    "Functor",
    "Int",
    "MemoPolicy",
    "MetricsRegistry",
    "ModuleError",
    "ParseError",
    "Profiler",
    "ProtocolError",
    "QueryProfile",
    "QueryResult",
    "Relation",
    "ResourceLimitError",
    "ResourceLimits",
    "RewriteError",
    "ScanDescriptor",
    "Session",
    "SessionClosedError",
    "SimulatedCrash",
    "StorageError",
    "StratificationError",
    "Str",
    "TransactionError",
    "Tuple",
    "Var",
    "coral_export",
    "from_arg",
    "make_list",
    "to_arg",
]
