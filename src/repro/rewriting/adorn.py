"""Program adornment: specializing rules for a query form.

Section 4.1: *"The desired selection pattern is specified using a query
form, where a 'bound' argument indicates that any binding in that argument
position of the query is to be propagated."*

Adornment is the first half of every magic-style rewriting: each derived
predicate is split into versions annotated with which argument positions
arrive bound (``b``) or free (``f``) — ``path_bf`` is "path called with the
first argument known".  Sideways information passing is left to right within
a rule body (the paper's default, Section 4.1), so a body literal's bound
positions are those whose variables are all bound by the head's bound
arguments or by earlier body literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set, Tuple as PyTuple

from ..errors import RewriteError
from ..language.ast import Literal, Rule
from ..terms import Arg

PredKey = PyTuple[str, int]


def adorned_name(pred: str, adornment: str) -> str:
    """The rewritten predicate name, e.g. ``path`` + ``bf`` -> ``path_bf``."""
    return f"{pred}_{adornment}"


def all_free(arity: int) -> str:
    return "f" * arity


@dataclass
class AdornedProgram:
    """The result of adorning a module for one query form."""

    #: adorned rules, heads renamed to ``pred_adornment``
    rules: List[Rule]
    #: adorned name of the query predicate
    query_pred: str
    #: the query's adornment string
    query_adornment: str
    #: adorned-name -> (original name, adornment)
    origin: Dict[str, PyTuple[str, str]] = field(default_factory=dict)

    def original_of(self, adorned: str) -> str:
        return self.origin.get(adorned, (adorned, ""))[0]


def _is_bound(arg: Arg, bound_vars: Set[int]) -> bool:
    """An argument is bound when every variable in it is bound."""
    return all(var.vid in bound_vars for var in arg.variables())


def _literal_adornment(literal: Literal, bound_vars: Set[int]) -> str:
    return "".join(
        "b" if _is_bound(arg, bound_vars) else "f" for arg in literal.args
    )


def adorn_program(
    rules: Sequence[Rule],
    query_pred: str,
    query_arity: int,
    adornment: str,
    is_builtin: Callable[[str, int], bool],
) -> AdornedProgram:
    """Adorn ``rules`` for a query on ``query_pred`` with ``adornment``.

    Only predicates defined by ``rules`` are adorned (and later get magic
    predicates); anything else — base relations, other modules' exports,
    builtins — is scanned as-is and treated as binding all its variables
    once evaluated.
    """
    if len(adornment) != query_arity or any(c not in "bf" for c in adornment):
        raise RewriteError(
            f"bad adornment {adornment!r} for {query_pred}/{query_arity}"
        )
    defined: Set[PredKey] = {rule.head.key for rule in rules}
    by_pred: Dict[PredKey, List[Rule]] = {}
    for rule in rules:
        by_pred.setdefault(rule.head.key, []).append(rule)

    out = AdornedProgram([], adorned_name(query_pred, adornment), adornment)
    worklist: List[PyTuple[PredKey, str]] = [((query_pred, query_arity), adornment)]
    seen: Set[PyTuple[PredKey, str]] = set()

    while worklist:
        (pred, arity), pred_adornment = key_adorn = worklist.pop()
        if key_adorn in seen:
            continue
        seen.add(key_adorn)
        new_name = adorned_name(pred, pred_adornment)
        out.origin[new_name] = (pred, pred_adornment)
        for rule in by_pred.get((pred, arity), []):
            out.rules.append(
                _adorn_rule(
                    rule, new_name, pred_adornment, defined, is_builtin, worklist
                )
            )
    if (query_pred, query_arity) not in defined:
        raise RewriteError(
            f"query predicate {query_pred}/{query_arity} is not defined "
            f"by the module's rules"
        )
    return out


def _adorn_rule(
    rule: Rule,
    new_head_name: str,
    head_adornment: str,
    defined: Set[PredKey],
    is_builtin: Callable[[str, int], bool],
    worklist: List[PyTuple[PredKey, str]],
) -> Rule:
    # Variables bound on entry: those in head arguments at 'b' positions.
    # Aggregated head positions never receive bindings from the caller (the
    # aggregate value is computed, not matched), so they stay free.
    aggregate_positions = {position for position, _ in rule.head_aggregates}
    bound_vars: Set[int] = set()
    for position, (arg, flag) in enumerate(zip(rule.head.args, head_adornment)):
        if flag == "b" and position not in aggregate_positions:
            bound_vars.update(var.vid for var in arg.variables())

    new_body: List[Literal] = []
    for literal in rule.body:
        if is_builtin(literal.pred, literal.arity):
            new_body.append(literal)
            # builtins like '=' bind their variables when they succeed
            if not literal.negated:
                for arg in literal.args:
                    bound_vars.update(var.vid for var in arg.variables())
            continue
        if literal.key in defined:
            body_adornment = _literal_adornment(literal, bound_vars)
            worklist.append((literal.key, body_adornment))
            new_body.append(
                Literal(
                    adorned_name(literal.pred, body_adornment),
                    literal.args,
                    literal.negated,
                )
            )
        else:
            new_body.append(literal)
        if not literal.negated:
            for arg in literal.args:
                bound_vars.update(var.vid for var in arg.variables())

    return Rule(
        Literal(new_head_name, rule.head.args),
        tuple(new_body),
        rule.head_aggregates,
    )
