"""Semi-naive (delta) rule rewriting.

Section 5.3: *"In order to perform incremental evaluation of rules across
multiple iterations, CORAL uses the semi-naive evaluation technique.  This
technique consists of a rule rewriting part performed at compile time, which
creates versions of rules with delta relations, and an evaluation part."*

For a rule with k body literals recursive in the current SCC, k versions are
produced; version i scans literal i's *delta* (facts new in the previous
iteration), literals before i over their *full* extent (old ∪ delta), and
literals after i over their *old* extent — the classic triangular scheme
that covers every new combination exactly once.  The delta/old/full ranges
are realised at run time through relation *marks* (Section 3.2).

Rules with no recursive body literal fire once, before iteration begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Sequence, Set, Tuple as PyTuple

from ..language.ast import Literal, Rule

PredKey = PyTuple[str, int]


class ScanKind(Enum):
    """Which slice of a relation a semi-naive body literal scans."""

    #: a non-recursive relation: its complete current contents
    ALL = "all"
    #: recursive, everything up to the end of the previous iteration
    FULL = "full"
    #: recursive, only the facts produced by the previous iteration
    DELTA = "delta"
    #: recursive, everything strictly before the previous iteration
    OLD = "old"
    #: a local predicate of an *earlier* SCC: only what arrived since this
    #: SCC's last fixpoint (the cross-call delta of the save-module
    #: facility, Section 5.4.2)
    EXT_DELTA = "ext_delta"


@dataclass(frozen=True)
class SNLiteral:
    literal: Literal
    kind: ScanKind

    def __str__(self) -> str:
        suffix = {"all": "", "full": "", "delta": "·δ", "old": "·old"}[
            self.kind.value
        ]
        return f"{self.literal}{suffix}"


@dataclass(frozen=True)
class SNRule:
    """One semi-naive version of one source rule (Section 5.1's 'semi-naive
    rule structure'); ``once`` marks non-recursive rules evaluated a single
    time before the iteration loop."""

    head: Literal
    body: PyTuple[SNLiteral, ...]
    head_aggregates: PyTuple = ()
    once: bool = False
    source_index: int = -1

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


def recursive_body_positions(
    rule: Rule,
    recursive: Set[PredKey],
    is_builtin: Callable[[str, int], bool],
) -> List[int]:
    """Body positions of ``rule`` that are recursive in the given SCC: the
    positive, non-builtin occurrences of the SCC's own predicates.  Shared
    by the semi-naive rewriters and the push compiler's rule classifier (a
    negated literal in the same SCC would make the program unstratified and
    is rejected upstream)."""
    return [
        position
        for position, literal in enumerate(rule.body)
        if not literal.negated
        and literal.key in recursive
        and not is_builtin(literal.pred, literal.arity)
    ]


def seminaive_rewrite(
    rules: Sequence[Rule],
    recursive: Set[PredKey],
    is_builtin: Callable[[str, int], bool],
) -> PyTuple[List[SNRule], List[SNRule]]:
    """Split ``rules`` into (once_rules, delta_rules) for one SCC."""
    once_rules: List[SNRule] = []
    delta_rules: List[SNRule] = []
    for index, rule in enumerate(rules):
        recursive_positions = recursive_body_positions(rule, recursive, is_builtin)
        if not recursive_positions:
            once_rules.append(
                SNRule(
                    rule.head,
                    tuple(SNLiteral(lit, ScanKind.ALL) for lit in rule.body),
                    rule.head_aggregates,
                    once=True,
                    source_index=index,
                )
            )
            continue
        for delta_position in recursive_positions:
            body: List[SNLiteral] = []
            for position, literal in enumerate(rule.body):
                if position not in recursive_positions:
                    body.append(SNLiteral(literal, ScanKind.ALL))
                elif position < delta_position:
                    body.append(SNLiteral(literal, ScanKind.FULL))
                elif position == delta_position:
                    body.append(SNLiteral(literal, ScanKind.DELTA))
                else:
                    body.append(SNLiteral(literal, ScanKind.OLD))
            delta_rules.append(
                SNRule(
                    rule.head,
                    tuple(body),
                    rule.head_aggregates,
                    once=False,
                    source_index=index,
                )
            )
    return once_rules, delta_rules


def ext_rewrite(
    rules: Sequence[Rule],
    recursive: Set[PredKey],
    external: Set[PredKey],
    is_builtin: Callable[[str, int], bool],
) -> List[SNRule]:
    """Cross-call delta versions for the save-module facility.

    When a retained module is called again (Section 5.4.2), predicates of
    *earlier* SCCs (magic and supplementary relations, typically) have grown
    since this SCC's last fixpoint.  A combination pairing such a new
    external fact with *old* facts of this SCC is covered by no standard
    semi-naive version — those keep a delta only on the SCC's own
    predicates.  So, per rule and per external-local body literal, one extra
    version: that literal scans the external delta, everything else scans
    its full extent.  These versions run once, at resumption, before the
    ordinary iteration loop.
    """
    out: List[SNRule] = []
    for index, rule in enumerate(rules):
        for target_position, target in enumerate(rule.body):
            if (
                target.negated
                or target.key not in external
                or is_builtin(target.pred, target.arity)
            ):
                continue
            body = tuple(
                SNLiteral(
                    literal,
                    ScanKind.EXT_DELTA
                    if position == target_position
                    else ScanKind.ALL,
                )
                for position, literal in enumerate(rule.body)
            )
            out.append(
                SNRule(
                    rule.head,
                    body,
                    rule.head_aggregates,
                    once=True,
                    source_index=index,
                )
            )
    return out


def naive_rewrite(
    rules: Sequence[Rule],
    recursive: Set[PredKey],
    is_builtin: Callable[[str, int], bool],
) -> PyTuple[List[SNRule], List[SNRule]]:
    """The naive-evaluation baseline (Bancilhon 1985): every rule scans the
    full extent of every literal on every iteration — the rederivation
    behaviour semi-naive exists to avoid (benchmark E2)."""
    once_rules: List[SNRule] = []
    all_rules: List[SNRule] = []
    for index, rule in enumerate(rules):
        sn = SNRule(
            rule.head,
            tuple(SNLiteral(lit, ScanKind.ALL) for lit in rule.body),
            rule.head_aggregates,
            once=False,
            source_index=index,
        )
        has_recursive = bool(
            recursive_body_positions(rule, recursive, is_builtin)
        )
        if has_recursive:
            all_rules.append(sn)
        else:
            once_rules.append(
                SNRule(sn.head, sn.body, sn.head_aggregates, once=True, source_index=index)
            )
    return once_rules, all_rules
