"""Supplementary Magic Templates — the system's default rewriting
(Section 4.1: *"The default rewriting technique is Supplementary Magic
Templates ... a good choice as a default, although each technique is
superior to the rest for some programs."*)

Plain Magic re-evaluates each rule's body prefix once per magic rule and
once in the guarded rule.  Supplementary magic materializes each prefix
exactly once, in *supplementary predicates*: before every derived body
literal the bound-so-far variables that are still needed are captured in a
``sup_r_j`` fact, which both seeds the callee's magic predicate and resumes
the rule when answers arrive.  These are exactly the "semi-naive rule
structures" scaffolding of Section 5.1.

Variant: :func:`supmagic_goalid_rewrite` (Section 4.1's "Supplementary Magic
With GoalId Indexing", ref [26]) replaces the repeated bound arguments
carried through supplementary predicates by a single *goal identifier* term;
with hash-consing (Section 3.1) that term is shared and compares O(1), which
pays off when the propagated bindings are large structured terms.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple as PyTuple

from ..language.ast import Literal, Rule
from ..terms import Arg, Functor, Var
from .adorn import AdornedProgram
from .magic import MAGIC_PREFIX, RewrittenProgram, magic_literal

#: functor wrapping a subgoal's bound arguments into one goal-id term
GOAL_FUNCTOR = "goal"


def _vars_of(args: Sequence[Arg]) -> Set[int]:
    out: Set[int] = set()
    for arg in args:
        out.update(var.vid for var in arg.variables())
    return out


def _ordered_vars(args: Sequence[Arg], allowed: Set[int]) -> List[Var]:
    """Distinct variables of ``args`` that are in ``allowed``, in first
    occurrence order (deterministic supplementary-argument lists)."""
    seen: Dict[int, Var] = {}
    for arg in args:
        for var in arg.variables():
            if var.vid in allowed and var.vid not in seen:
                seen[var.vid] = var
    return list(seen.values())


def supmagic_rewrite(
    adorned: AdornedProgram,
    is_builtin: Callable[[str, int], bool],
    use_goal_ids: bool = False,
) -> RewrittenProgram:
    derived = {rule.head.key for rule in adorned.rules}
    out_rules: List[Rule] = []

    for rule_index, rule in enumerate(adorned.rules):
        out_rules.extend(
            _rewrite_rule(
                rule, rule_index, adorned, derived, is_builtin, use_goal_ids
            )
        )

    query_original, query_adornment = adorned.origin[adorned.query_pred]
    return RewrittenProgram(
        rules=out_rules,
        answer_pred=adorned.query_pred,
        answer_arity=len(query_adornment),
        magic_pred=MAGIC_PREFIX + adorned.query_pred,
        bound_positions=tuple(
            position
            for position, flag in enumerate(query_adornment)
            if flag == "b"
        ),
        technique="supplementary_magic_goalid" if use_goal_ids else "supplementary_magic",
        origin=dict(adorned.origin),
    )


def _rewrite_rule(
    rule: Rule,
    rule_index: int,
    adorned: AdornedProgram,
    derived: Set[PyTuple[str, int]],
    is_builtin: Callable[[str, int], bool],
    use_goal_ids: bool,
) -> List[Rule]:
    head_adornment = adorned.origin[rule.head.pred][1]
    guard = magic_literal(rule.head, head_adornment)
    guard_vids = _vars_of(guard.args)

    # In goal-id mode the supplementary relations carry one structured term
    # goal(p_a(bound args)) instead of the bound arguments themselves; the
    # bound values remain recoverable by unifying with the goal term, and
    # hash-consing makes storage/comparison of the repeated prefix O(1).
    goal_term: Arg | None = None
    if use_goal_ids and guard.args:
        goal_term = Functor(
            GOAL_FUNCTOR, (Functor(rule.head.pred, guard.args),)
        )

    body = list(rule.body)
    derived_positions = [
        index
        for index, literal in enumerate(body)
        if literal.key in derived and not is_builtin(literal.pred, literal.arity)
    ]
    if not derived_positions:
        return [Rule(rule.head, (guard,) + rule.body, rule.head_aggregates)]

    # needs[i]: variables referenced at or after body position i, or by the head
    head_vars = _vars_of(rule.head.args) | _vars_of(
        [aggregation.expr for _pos, aggregation in rule.head_aggregates]
    )
    needs: List[Set[int]] = [set(head_vars) for _ in range(len(body) + 1)]
    for index in range(len(body) - 1, -1, -1):
        needs[index] = needs[index + 1] | _vars_of(body[index].args)

    # stable source for ordering supplementary arguments
    ordering_source: PyTuple[Arg, ...] = guard.args + tuple(
        arg for literal in body for arg in literal.args
    )

    rules_out: List[Rule] = []
    prev_literal = guard
    bound: Set[int] = set(guard_vids)
    consumed = 0  # body positions already folded into prev_literal

    for sup_index, position in enumerate(derived_positions):
        segment = body[consumed:position]
        target = body[position]
        target_adornment = adorned.origin[target.pred][1]

        if segment or prev_literal is not guard:
            # materialize the prefix as a supplementary predicate
            for literal in segment:
                if not literal.negated:
                    bound |= _vars_of(literal.args)
            wanted = bound & needs[position]
            if goal_term is not None:
                carry_vars = _ordered_vars(ordering_source, wanted - guard_vids)
                sup_args: PyTuple[Arg, ...] = (goal_term,) + tuple(carry_vars)
            else:
                sup_args = tuple(_ordered_vars(ordering_source, wanted))
            sup_name = f"sup_{rule.head.pred}_{rule_index}_{sup_index}"
            rules_out.append(
                Rule(
                    Literal(sup_name, sup_args),
                    (prev_literal,) + tuple(segment),
                )
            )
            prev_literal = Literal(sup_name, sup_args)
        # else: first derived literal with an empty prefix — the magic guard
        # itself serves as the supplementary relation (standard optimization)

        rules_out.append(
            Rule(magic_literal(target, target_adornment), (prev_literal,))
        )
        consumed = position  # the derived literal joins in the next stage

    tail = body[consumed:]
    rules_out.append(
        Rule(rule.head, (prev_literal,) + tuple(tail), rule.head_aggregates)
    )
    return rules_out
