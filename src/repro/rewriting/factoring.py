"""Context factoring for right-linear programs (Section 4.1; refs [16, 9]).

For a right-linear recursion queried with its bound/free split aligned to
the recursion —

    p(X̄, Ȳ) :- exit_body(X̄, Ȳ).
    p(X̄, Ȳ) :- step_body(X̄, Z̄), p(Z̄, Ȳ).      query form binds X̄, frees Ȳ

magic-style rewritings compute a quadratic set of (subgoal, answer) pairs:
every reachable context Z̄ re-derives its own copy of the shared answers.
Context factoring separates the two roles: a *context* relation collects the
reachable bound-argument combinations, and the answers are produced once
from contexts and exit bodies:

    ctx(X̄0)  (seed: the query's bound arguments)
    ctx(Z̄) :- ctx(X̄), step_body(X̄, Z̄).
    ans(Ȳ) :- ctx(X̄), exit_body(X̄, Ȳ).

Answers to the original query are exactly ``ans`` (the free positions),
spliced with the query's bound constants.  The transformation applies only
when the free arguments are passed through the recursive call *unchanged*;
:func:`factoring_rewrite` detects that and raises
:class:`FactoringNotApplicable` otherwise — the optimizer then falls back to
supplementary magic (Section 4.1: "each technique is superior to the rest
for some programs").
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple as PyTuple

from ..errors import RewriteError
from ..language.ast import Literal, Rule
from ..terms import Var
from .magic import RewrittenProgram


class FactoringNotApplicable(RewriteError):
    """The program/query form is outside the factorable class."""


def factoring_rewrite(
    rules: Sequence[Rule],
    query_pred: str,
    adornment: str,
    is_builtin: Callable[[str, int], bool],
) -> RewrittenProgram:
    arity = len(adornment)
    bound_positions = tuple(
        index for index, flag in enumerate(adornment) if flag == "b"
    )
    free_positions = tuple(
        index for index, flag in enumerate(adornment) if flag == "f"
    )
    if not bound_positions or not free_positions:
        raise FactoringNotApplicable(
            "factoring needs both bound and free query arguments"
        )

    own_rules = [rule for rule in rules if rule.head.key == (query_pred, arity)]
    other_rules = [rule for rule in rules if rule.head.key != (query_pred, arity)]
    if not own_rules:
        raise FactoringNotApplicable(f"{query_pred}/{arity} has no rules")
    if any(
        any(literal.key == (query_pred, arity) for literal in rule.body)
        for rule in other_rules
    ):
        raise FactoringNotApplicable(
            "query predicate is used by other predicates; factoring would "
            "change their meaning"
        )
    for rule in rules:
        if rule.head_aggregates:
            raise FactoringNotApplicable("aggregation present")
        for literal in rule.body:
            if literal.key in {(r.head.pred, len(r.head.args)) for r in other_rules}:
                # other derived predicates must themselves be non-recursive
                # through p; we only factor when p is the sole recursion
                pass

    exit_rules: List[Rule] = []
    recursive_rules: List[Rule] = []
    for rule in own_rules:
        occurrences = [
            literal
            for literal in rule.body
            if literal.key == (query_pred, arity) and not literal.negated
        ]
        if not occurrences:
            exit_rules.append(rule)
        elif len(occurrences) == 1 and rule.body[-1].key == (query_pred, arity):
            recursive_rules.append(rule)
        else:
            raise FactoringNotApplicable(
                "recursion is not right-linear (recursive literal must be "
                "last and unique)"
            )

    context_name = f"ctx_{query_pred}"
    answer_name = f"fans_{query_pred}"
    out_rules: List[Rule] = list(other_rules)

    for rule in recursive_rules:
        head, body = rule.head, rule.body
        recursive_literal = body[-1]
        # the free positions must be passed through untouched: the same
        # variables, in the same positions, not used anywhere else
        step_literals = body[:-1]
        step_vids: Set[int] = set()
        for literal in step_literals:
            for arg in literal.args:
                step_vids.update(v.vid for v in arg.variables())
        for position in free_positions:
            head_arg = head.args[position]
            call_arg = recursive_literal.args[position]
            if not (
                isinstance(head_arg, Var)
                and isinstance(call_arg, Var)
                and head_arg.vid == call_arg.vid
                and head_arg.vid not in step_vids
            ):
                raise FactoringNotApplicable(
                    "free arguments are not passed through unchanged"
                )
        context_head = Literal(
            context_name,
            tuple(recursive_literal.args[p] for p in bound_positions),
        )
        context_guard = Literal(
            context_name, tuple(head.args[p] for p in bound_positions)
        )
        out_rules.append(Rule(context_head, (context_guard,) + tuple(step_literals)))

    for rule in exit_rules:
        context_guard = Literal(
            context_name, tuple(rule.head.args[p] for p in bound_positions)
        )
        answer_head = Literal(
            answer_name, tuple(rule.head.args[p] for p in free_positions)
        )
        out_rules.append(Rule(answer_head, (context_guard,) + rule.body))

    return RewrittenProgram(
        rules=out_rules,
        answer_pred=answer_name,
        answer_arity=len(free_positions),
        magic_pred=context_name,
        bound_positions=bound_positions,
        technique="factoring",
        origin={},
        answer_positions=free_positions,
    )
