"""Rewriting transformations (paper Sections 4.1, 5.3): adornment, the
magic-sets family, existential (projection) rewriting, context factoring,
and semi-naive delta-rule generation, plus the dependency-graph machinery
(SCCs, stratification) they and the evaluator share."""

from .adorn import AdornedProgram, adorn_program, adorned_name
from .existential import existential_rewrite
from .factoring import FactoringNotApplicable, factoring_rewrite
from .graph import (
    DependencyGraph,
    build_dependency_graph,
    check_stratified,
    condensation_order,
    recursive_predicates,
    strongly_connected_components,
)
from .magic import (
    MAGIC_PREFIX,
    RewrittenProgram,
    magic_literal,
    magic_rewrite,
    no_rewriting,
)
from .seminaive import ScanKind, SNLiteral, SNRule, naive_rewrite, seminaive_rewrite
from .supmagic import supmagic_rewrite

__all__ = [
    "AdornedProgram",
    "DependencyGraph",
    "FactoringNotApplicable",
    "MAGIC_PREFIX",
    "RewrittenProgram",
    "SNLiteral",
    "SNRule",
    "ScanKind",
    "adorn_program",
    "adorned_name",
    "build_dependency_graph",
    "check_stratified",
    "condensation_order",
    "existential_rewrite",
    "factoring_rewrite",
    "magic_literal",
    "magic_rewrite",
    "naive_rewrite",
    "no_rewriting",
    "recursive_predicates",
    "seminaive_rewrite",
    "strongly_connected_components",
    "supmagic_rewrite",
]
