"""Magic Templates rewriting (Ramakrishnan 1988; paper Section 4.1).

Every adorned rule is guarded by a *magic* literal asserting that the head's
bound arguments are actually demanded by some (sub)query, and for every
derived body literal a *magic rule* derives the subqueries it receives.  The
query itself seeds the magic relation of the query predicate.

The result types here (:class:`RewrittenProgram`) are shared by the other
selection-propagating rewritings (supplementary magic, GoalId indexing,
context factoring): they all produce a rule set, the name of the answer
predicate, and a description of how to seed evaluation from a concrete
query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..language.ast import Literal, Rule
from ..terms import Arg, Var
from .adorn import AdornedProgram, adorned_name

PredKey = PyTuple[str, int]

#: prefix for magic predicate names
MAGIC_PREFIX = "m_"


@dataclass
class RewrittenProgram:
    """A module's rules after selection-propagating rewriting."""

    #: the full rewritten rule set
    rules: List[Rule]
    #: the predicate whose relation holds the query's answers
    answer_pred: str
    #: arity of the answer predicate (same as the original query predicate)
    answer_arity: int
    #: the magic predicate seeded from the query, or None for no rewriting
    magic_pred: Optional[str]
    #: query argument positions (into the original query literal) that feed
    #: the magic seed, in order
    bound_positions: PyTuple[int, ...]
    #: which rewriting produced this
    technique: str
    #: adorned-name -> (original name, adornment)
    origin: Dict[str, PyTuple[str, str]] = field(default_factory=dict)
    #: when the answer predicate covers only some original query argument
    #: positions (context factoring), which ones, in answer-arg order;
    #: None means the answer predicate has the query's full arity
    answer_positions: Optional[PyTuple[int, ...]] = None


def magic_literal(literal: Literal, adornment: str) -> Literal:
    """The magic literal of an adorned literal: its bound arguments under
    the magic predicate name."""
    bound_args = tuple(
        arg for arg, flag in zip(literal.args, adornment) if flag == "b"
    )
    return Literal(MAGIC_PREFIX + literal.pred, bound_args)


def _bind_vars(literal: Literal, bound: Set[int]) -> None:
    for arg in literal.args:
        bound.update(var.vid for var in arg.variables())


def magic_rewrite(
    adorned: AdornedProgram,
    is_builtin: Callable[[str, int], bool],
) -> RewrittenProgram:
    """The (non-supplementary) Magic Templates transformation."""
    derived = {rule.head.key for rule in adorned.rules}
    out_rules: List[Rule] = []

    for rule in adorned.rules:
        head_adornment = adorned.origin[rule.head.pred][1]
        guard = magic_literal(rule.head, head_adornment)
        prefix: List[Literal] = [guard]
        for literal in rule.body:
            if literal.key in derived and not is_builtin(
                literal.pred, literal.arity
            ):
                body_adornment = adorned.origin[literal.pred][1]
                out_rules.append(
                    Rule(magic_literal(literal, body_adornment), tuple(prefix))
                )
            if not literal.negated:
                prefix.append(literal)
        out_rules.append(
            Rule(rule.head, (guard,) + rule.body, rule.head_aggregates)
        )

    query_original, query_adornment = adorned.origin[adorned.query_pred]
    return RewrittenProgram(
        rules=out_rules,
        answer_pred=adorned.query_pred,
        answer_arity=len(query_adornment),
        magic_pred=MAGIC_PREFIX + adorned.query_pred,
        bound_positions=tuple(
            position
            for position, flag in enumerate(query_adornment)
            if flag == "b"
        ),
        technique="magic",
        origin=dict(adorned.origin),
    )


def no_rewriting(
    rules: Sequence[Rule], query_pred: str, query_arity: int
) -> RewrittenProgram:
    """The identity 'rewriting': evaluate the whole program bottom-up and
    apply the query as a final selection (Section 4.1: all-free forms
    ignore bindings except for a final selection)."""
    return RewrittenProgram(
        rules=list(rules),
        answer_pred=query_pred,
        answer_arity=query_arity,
        magic_pred=None,
        bound_positions=(),
        technique="none",
    )
