"""Existential query rewriting — projection pushing (Section 4.1).

*"CORAL also supports Existential Query Rewriting [19], which seeks to
propagate projections.  This is applied by default in conjunction with a
selection-pushing rewriting."*

An argument position of a derived predicate is *needed* when some use of the
predicate consumes its value: it reaches a needed head position, joins with
another literal, feeds a builtin or a negated literal or an aggregate, or is
a non-variable term.  Positions never needed anywhere are dropped from the
predicate (and from every rule head and body occurrence), so recursion over
them — e.g. the ``Y`` in ``reachable(X) :- t(X, Y)`` with transitive
``t(X, Y) :- e(X, Z), t(Z, Y)`` — disappears entirely, turning a quadratic
computation into a linear one (benchmark E14).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..language.ast import Literal, Rule
from ..terms import Var

PredKey = PyTuple[str, int]


def _projected_name(pred: str, kept: PyTuple[int, ...], arity: int) -> str:
    dropped = [str(i + 1) for i in range(arity) if i not in kept]
    return f"{pred}_ex{''.join(dropped)}"


def existential_rewrite(
    rules: Sequence[Rule],
    query_pred: str,
    query_arity: int,
    is_builtin: Callable[[str, int], bool],
    protected: Optional[Set[str]] = None,
) -> List[Rule]:
    """Project unneeded argument positions out of derived predicates.

    The query predicate keeps its full arity (its outputs are the answers);
    other derived predicates shrink where possible.  Predicates in
    ``protected`` (those carrying aggregate selections, whose annotations
    reference positions by the original arity) are never projected.
    Returns the original list unchanged when nothing can be projected.
    """
    protected = protected or set()
    defined: Set[PredKey] = {rule.head.key for rule in rules}
    needed: Dict[PredKey, Set[int]] = {key: set() for key in defined}
    if (query_pred, query_arity) in needed:
        needed[(query_pred, query_arity)] = set(range(query_arity))
    for key in defined:
        if key[0] in protected:
            needed[key] = set(range(key[1]))

    # A head position is needed if ANY caller needs it; propagate demand from
    # needed head positions down into rule bodies until fixpoint.
    changed = True
    while changed:
        changed = False
        for rule in rules:
            head_needed = needed.get(rule.head.key, set())
            demanded = _demanded_variables(rule, head_needed, is_builtin)
            for literal in rule.body:
                if literal.key not in defined or is_builtin(
                    literal.pred, literal.arity
                ):
                    continue
                target = needed[literal.key]
                for position, arg in enumerate(literal.args):
                    if position in target:
                        continue
                    if not isinstance(arg, Var):
                        target.add(position)  # structural selection: needed
                        changed = True
                    elif arg.vid in demanded or literal.negated:
                        target.add(position)
                        changed = True

    keep: Dict[PredKey, PyTuple[int, ...]] = {}
    for key, positions in needed.items():
        kept = tuple(sorted(positions))
        if len(kept) < key[1]:
            keep[key] = kept
    if not keep:
        return list(rules)

    out: List[Rule] = []
    for rule in rules:
        out.append(_project_rule(rule, keep))
    return out


def _demanded_variables(
    rule: Rule, head_needed: Set[int], is_builtin: Callable[[str, int], bool]
) -> Set[int]:
    """Variable ids whose values are consumed somewhere in the rule: needed
    head positions, aggregate expressions, builtins, negated literals, or a
    second occurrence anywhere."""
    demanded: Set[int] = set()
    for position, arg in enumerate(rule.head.args):
        if position in head_needed:
            demanded.update(v.vid for v in arg.variables())
    for _position, aggregation in rule.head_aggregates:
        demanded.update(v.vid for v in aggregation.expr.variables())

    occurrences: Counter = Counter()
    for literal in rule.body:
        literal_vids = [v.vid for arg in literal.args for v in arg.variables()]
        if is_builtin(literal.pred, literal.arity) or literal.negated:
            demanded.update(literal_vids)
        occurrences.update(set(literal_vids))
    demanded.update(vid for vid, count in occurrences.items() if count > 1)
    return demanded


def _project_rule(rule: Rule, keep: Dict[PredKey, PyTuple[int, ...]]) -> Rule:
    head = _project_literal(rule.head, keep)
    head_aggregates = rule.head_aggregates
    if rule.head.key in keep and head_aggregates:
        kept = keep[rule.head.key]
        remap = {old: new for new, old in enumerate(kept)}
        head_aggregates = tuple(
            (remap[position], aggregation)
            for position, aggregation in head_aggregates
            if position in remap
        )
    body = tuple(_project_literal(literal, keep) for literal in rule.body)
    return Rule(head, body, head_aggregates)


def _project_literal(literal: Literal, keep: Dict[PredKey, PyTuple[int, ...]]) -> Literal:
    kept = keep.get(literal.key)
    if kept is None:
        return literal
    return Literal(
        _projected_name(literal.pred, kept, literal.arity),
        tuple(literal.args[position] for position in kept),
        literal.negated,
    )
