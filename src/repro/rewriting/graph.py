"""Predicate dependency graphs, strongly connected components, and
stratification.

Section 5.1: *"The compilation of a materialized module generates an internal
module structure that consists of a list of structures corresponding to the
strongly connected components (SCCs) of the module"* — an SCC being "a
maximal set of mutually recursive predicates".  Fixpoint evaluation runs one
SCC at a time in dependency order, which is also what makes stratified
negation and aggregation work: a negated or aggregated body predicate must be
fully evaluated (i.e. in an earlier SCC) before the consuming rule fires.

Edges are labelled *positive* or *strict*: a strict edge (through negation or
through a grouping/aggregate head) must not close a cycle, or the program is
not stratified (Section 5.4.1 — such programs need Ordered Search instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple as PyTuple

from ..errors import StratificationError
from ..language.ast import Rule

PredKey = PyTuple[str, int]


@dataclass
class DependencyGraph:
    """Head-to-body dependency edges among the predicates of one module."""

    #: every predicate defined by a rule head in the module
    defined: Set[PredKey] = field(default_factory=set)
    #: positive edges: head depends on body predicate
    positive: Dict[PredKey, Set[PredKey]] = field(default_factory=dict)
    #: strict edges: dependency through negation or aggregation
    strict: Dict[PredKey, Set[PredKey]] = field(default_factory=dict)

    def dependencies(self, pred: PredKey) -> Set[PredKey]:
        return self.positive.get(pred, set()) | self.strict.get(pred, set())

    def all_predicates(self) -> Set[PredKey]:
        keys = set(self.defined)
        for edges in (self.positive, self.strict):
            for source, targets in edges.items():
                keys.add(source)
                keys.update(targets)
        return keys


def build_dependency_graph(
    rules: Sequence[Rule], is_builtin: Callable[[str, int], bool]
) -> DependencyGraph:
    """Build the dependency graph of a rule set.

    A rule with head aggregation contributes *strict* edges to every body
    predicate (the groups must be complete before aggregating), as does a
    negated body literal.
    """
    graph = DependencyGraph()
    for rule in rules:
        head = rule.head.key
        graph.defined.add(head)
        aggregating = bool(rule.head_aggregates)
        for literal in rule.body:
            if is_builtin(literal.pred, literal.arity):
                continue
            target = literal.key
            if literal.negated or aggregating:
                graph.strict.setdefault(head, set()).add(target)
            else:
                graph.positive.setdefault(head, set()).add(target)
    return graph


def strongly_connected_components(
    graph: DependencyGraph,
) -> List[FrozenSet[PredKey]]:
    """Tarjan's algorithm, returning SCCs in *dependency order* (callees
    before callers) — the order fixpoint evaluation processes them."""
    index_counter = 0
    indices: Dict[PredKey, int] = {}
    lowlinks: Dict[PredKey, int] = {}
    on_stack: Set[PredKey] = set()
    stack: List[PredKey] = []
    result: List[FrozenSet[PredKey]] = []

    # Iterative Tarjan (deep modules must not hit Python's recursion limit).
    for root in sorted(graph.all_predicates()):
        if root in indices:
            continue
        work: List[PyTuple[PredKey, Iterable[PredKey]]] = [
            (root, iter(sorted(graph.dependencies(root))))
        ]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for target in edges:
                if target not in indices:
                    indices[target] = lowlinks[target] = index_counter
                    index_counter += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(sorted(graph.dependencies(target)))))
                    advanced = True
                    break
                if target in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[PredKey] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))
    return result


def condensation_order(graph: DependencyGraph) -> List[FrozenSet[PredKey]]:
    """SCCs restricted to predicates *defined* in the module, callees first.

    Predicates not defined here (base relations, other modules' exports,
    builtins that slipped through) do not form evaluation units.
    """
    return [
        component
        for component in strongly_connected_components(graph)
        if component & graph.defined
    ]


def check_stratified(graph: DependencyGraph) -> Dict[PredKey, int]:
    """Assign strata; raise :class:`StratificationError` when a strict edge
    (negation/aggregation) closes a cycle.

    Returns a map predicate -> stratum number (0-based; a predicate's
    stratum is strictly greater than that of anything it depends on
    strictly, and >= that of positive dependencies).
    """
    components = strongly_connected_components(graph)
    component_of: Dict[PredKey, int] = {}
    for number, component in enumerate(components):
        for pred in component:
            component_of[pred] = number

    for source, targets in graph.strict.items():
        for target in targets:
            if component_of.get(source) == component_of.get(target):
                raise StratificationError(
                    f"predicate {source[0]}/{source[1]} depends on "
                    f"{target[0]}/{target[1]} through negation or aggregation "
                    f"inside one recursive component; the program is not "
                    f"stratified (consider @ordered_search)"
                )

    strata: Dict[PredKey, int] = {}
    for number, component in enumerate(components):  # callees first
        level = 0
        for pred in component:
            for target in graph.positive.get(pred, set()):
                if target not in component:
                    level = max(level, strata.get(target, 0))
            for target in graph.strict.get(pred, set()):
                level = max(level, strata.get(target, 0) + 1)
        for pred in component:
            strata[pred] = level
    return strata


def recursive_predicates(
    graph: DependencyGraph, component: FrozenSet[PredKey]
) -> Set[PredKey]:
    """The predicates of a component that are genuinely recursive: in a
    multi-predicate SCC all are; a singleton only if self-dependent."""
    if len(component) > 1:
        return set(component)
    (pred,) = component
    return {pred} if pred in graph.dependencies(pred) else set()
