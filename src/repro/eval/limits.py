"""Resource guards for long-running evaluations.

The unbounded bottom-up iterations of Section 5.3 — *"an evaluation
terminates when an iteration produces no new facts"* — have no intrinsic
bound on time or space: a mistaken rule (or an adversarial query against a
served system) can iterate arbitrarily long.  :class:`ResourceLimits` bounds
one evaluation with a wall-clock timeout, a cap on derived tuples, and a
cooperative cancellation flag; the fixpoint and pipelined loops check the
guard at least once per iteration (and every few hundred derivations inside
an iteration), raising :class:`~repro.errors.ResourceLimitError` promptly.

Exceeding a limit abandons the evaluation exactly as abandoning a lazy
cursor does (Section 5.4.3) — the session stays usable for further queries.

Usage::

    session = Session(limits=ResourceLimits(timeout=2.0))
    session.query("path(1, X)").all()                # guarded by the default
    session.query("path(1, X)").all(timeout=0.1)     # per-call override

    limits = ResourceLimits()
    session = Session(limits=limits)
    ... limits.cancel() from another thread ...      # cooperative stop
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ResourceLimitError

#: consult the wall clock only every this many guard checks — the per-tuple
#: hot path pays a counter increment, not a syscall
_CLOCK_STRIDE = 256


class ResourceLimits:
    """Bounds on one evaluation: wall-clock ``timeout`` (seconds), maximum
    ``max_tuples`` derived facts, and :meth:`cancel` for cooperative
    cancellation from another thread.

    Re-armable: :meth:`start` resets the deadline and the derived-tuple
    baseline, so one instance can guard a whole session's queries in turn.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_tuples is not None and max_tuples < 0:
            raise ValueError(f"max_tuples must be >= 0, got {max_tuples}")
        self.timeout = timeout
        self.max_tuples = max_tuples
        self._cancelled = False
        self._deadline: Optional[float] = None
        self._tuple_baseline = 0
        self._checks = 0

    # -- arming ----------------------------------------------------------------

    def start(self, stats=None) -> "ResourceLimits":
        """Arm the guard: the timeout clock starts now, and derived tuples
        are counted from ``stats.facts_inserted`` onward."""
        self._deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        self._tuple_baseline = stats.facts_inserted if stats is not None else 0
        self._checks = 0
        return self

    def clone(self) -> "ResourceLimits":
        """A fresh, unarmed copy with the same bounds.

        The server hands each request its own clone so one slow client's
        deadline (or cancellation) never bleeds into another connection's
        guard — the configured limits are shared, the mutable arming state
        is not."""
        return ResourceLimits(timeout=self.timeout, max_tuples=self.max_tuples)

    def cancel(self) -> None:
        """Request cooperative cancellation: the next guard check raises.
        Safe to call from another thread (it only sets a flag)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- the guard the evaluation loops call ------------------------------------

    def check(self, stats=None) -> None:
        """Raise :class:`ResourceLimitError` if any limit is exceeded.

        Cancellation and the tuple cap are checked on every call; the wall
        clock every ``_CLOCK_STRIDE`` calls (and always on the first), so
        calling this once per derived tuple stays cheap.
        """
        if self._cancelled:
            raise ResourceLimitError("evaluation cancelled")
        if (
            self.max_tuples is not None
            and stats is not None
            and stats.facts_inserted - self._tuple_baseline > self.max_tuples
        ):
            raise ResourceLimitError(
                f"evaluation exceeded the limit of {self.max_tuples} derived "
                f"tuples"
            )
        if self._deadline is not None:
            self._checks += 1
            if self._checks % _CLOCK_STRIDE == 1:
                if time.monotonic() > self._deadline:
                    raise ResourceLimitError(
                        f"evaluation exceeded its {self.timeout:g}s wall-clock "
                        f"timeout"
                    )

    def checkpoint(self, stats=None) -> None:
        """An iteration-boundary check: always consults the wall clock."""
        if self._cancelled:
            raise ResourceLimitError("evaluation cancelled")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise ResourceLimitError(
                f"evaluation exceeded its {self.timeout:g}s wall-clock timeout"
            )
        self.check(stats)

    def __repr__(self) -> str:
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout:g}s")
        if self.max_tuples is not None:
            parts.append(f"max_tuples={self.max_tuples}")
        if self._cancelled:
            parts.append("cancelled")
        return f"<ResourceLimits {' '.join(parts) or 'unbounded'}>"
