"""Pipelined (top-down) module evaluation.

Section 5.2: *"For pipelining, which is essentially top-down evaluation, the
rule evaluation code is designed to work in a co-routining fashion — when
rule evaluation is invoked, using the get-next-tuple interface, it generates
an answer (if there is one) and transfers control back to the consumer of
answers.  Control is transferred back to the (suspended) rule evaluation
when more answers are desired."*

Python generators give the suspend/resume structure directly: ``solve``
yields once per proof, bindings live in the shared environment while the
consumer holds each answer, and resuming the generator backtracks into the
search.  Rules are tried in program order and bodies solved left to right —
the guaranteed evaluation order that lets programmers use side-effecting
predicates (Section 5.2's third point).  No facts are stored: recomputation
is the price (benchmark E5), and left-recursive programs can loop forever,
exactly as in Prolog — a depth bound turns runaway recursion into an error.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import EvaluationError, ModuleError
from ..language.ast import Literal, ModuleDecl, Rule
from ..relations import GeneratorTupleIterator, Tuple, TupleIterator
from ..terms import Arg, BindEnv, Trail, Var, rename_term, resolve, unify
from ..terms.unify import unify_fact
from .context import EvalContext

PredKey = PyTuple[str, int]

#: default bound on subgoal nesting (runaway-recursion guard)
DEFAULT_DEPTH_LIMIT = 4000


class PipelinedModule:
    """A module evaluated top-down, one answer at a time."""

    def __init__(
        self,
        ctx: EvalContext,
        module: ModuleDecl,
        depth_limit: int = DEFAULT_DEPTH_LIMIT,
    ) -> None:
        for rule in module.rules:
            if rule.head_aggregates:
                raise ModuleError(
                    f"module {module.name}: grouping/aggregation requires "
                    f"materialized evaluation (remove @pipelining)"
                )
        self.ctx = ctx
        self.name = module.name
        self.depth_limit = depth_limit
        #: rules per predicate, in the order they occur in the module
        #: definition (Section 5.1's pipelined module structure)
        self.rules_by_pred: Dict[PredKey, List[Rule]] = {}
        for rule in module.rules:
            self.rules_by_pred.setdefault(rule.head.key, []).append(rule)

    # -- resolution -------------------------------------------------------------

    def solve(
        self,
        literal: Literal,
        env: BindEnv,
        trail: Trail,
        depth: int = 0,
    ) -> Iterator[None]:
        """Enumerate proofs of ``literal``; bindings are in ``env`` while the
        consumer holds each one.

        When a profiler is installed, each subgoal's activation count and
        *inclusive* wall time (first pull to exhaustion, callees included)
        are recorded under the ``pipeline`` subgoal kind."""
        obs = self.ctx.obs
        if obs is None:
            yield from self._solve(literal, env, trail, depth)
            return
        token = obs.begin_subgoal("pipeline", literal.pred, literal.arity)
        try:
            yield from self._solve(literal, env, trail, depth)
        finally:
            obs.end_subgoal(token)

    def _solve(
        self,
        literal: Literal,
        env: BindEnv,
        trail: Trail,
        depth: int = 0,
    ) -> Iterator[None]:
        if self.ctx.limits is not None:
            # pipelined evaluation derives no stored facts, so the guard is
            # consulted per subgoal instead of per insertion
            self.ctx.limits.check(self.ctx.stats)
        if depth > self.depth_limit:
            raise EvaluationError(
                f"pipelined evaluation exceeded depth {self.depth_limit} "
                f"(left recursion? consider @materialization)"
            )
        builtin = self.ctx.builtins.lookup(literal.pred, literal.arity)
        if builtin is not None:
            if literal.negated:
                raise EvaluationError(
                    f"negation of builtin {literal.pred} is not supported"
                )
            mark = trail.mark()
            for _ in builtin.impl(literal.args, env, trail):
                yield None
            trail.undo_to(mark)
            return
        if literal.negated:
            positive = Literal(literal.pred, literal.args)
            mark = trail.mark()
            succeeded = False
            for _ in self.solve(positive, env, trail, depth + 1):
                succeeded = True
                break
            trail.undo_to(mark)
            if not succeeded:
                yield None
            return
        if literal.key in self.rules_by_pred:
            yield from self._solve_derived(literal, env, trail, depth)
            return
        yield from self._solve_stored(literal, env, trail)

    def _solve_derived(
        self, literal: Literal, env: BindEnv, trail: Trail, depth: int
    ) -> Iterator[None]:
        for rule in self.rules_by_pred[literal.key]:
            mapping: Dict[int, Var] = {}
            head_args = tuple(rename_term(arg, mapping) for arg in rule.head.args)
            body = tuple(
                Literal(
                    item.pred,
                    tuple(rename_term(arg, mapping) for arg in item.args),
                    item.negated,
                )
                for item in rule.body
            )
            mark = trail.mark()
            if all(
                unify(call_arg, env, head_arg, env, trail)
                for call_arg, head_arg in zip(literal.args, head_args)
            ):
                yield from self._solve_body(body, 0, env, trail, depth)
            trail.undo_to(mark)

    def _solve_body(
        self,
        body: Sequence[Literal],
        position: int,
        env: BindEnv,
        trail: Trail,
        depth: int,
    ) -> Iterator[None]:
        if position == len(body):
            self.ctx.stats.inferences += 1
            yield None
            return
        for _ in self.solve(body[position], env, trail, depth + 1):
            yield from self._solve_body(body, position + 1, env, trail, depth)

    def _solve_stored(
        self, literal: Literal, env: BindEnv, trail: Trail
    ) -> Iterator[None]:
        """A predicate not defined here: a base relation or another module's
        export — the same cursor interface either way (Section 5.6)."""
        relation = self.ctx.resolve(literal.pred, literal.arity)
        cursor = relation.scan(literal.args, env)
        try:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    return
                fact = candidate.renamed()
                mark = trail.mark()
                if unify_fact(literal.args, env, fact.args, trail):
                    yield None
                trail.undo_to(mark)
        finally:
            cursor.close()

    # -- the relation-style surface -------------------------------------------------

    def answers(
        self, pred: str, pattern: Sequence[Arg], env: Optional[BindEnv]
    ) -> TupleIterator:
        """Answers to a query on an exported predicate, one at a time.

        Each pull resumes the frozen search; no answers are cached between
        calls (pipelining trades recomputation for space, Section 5)."""

        def generate() -> Iterator[Tuple]:
            call_env = BindEnv()
            trail = Trail()
            mapping: Dict[int, Var] = {}
            call_args = tuple(
                rename_term(resolve(arg, env), mapping) for arg in pattern
            )
            literal = Literal(pred, call_args)
            try:
                for _ in self.solve(literal, call_env, trail, 0):
                    yield Tuple(
                        tuple(resolve(arg, call_env) for arg in call_args)
                    )
            except RecursionError:
                # the host stack overflowed before our own depth bound:
                # same diagnosis, same remedy
                raise EvaluationError(
                    f"pipelined evaluation of {pred} exceeded the recursion "
                    f"depth (left recursion? consider @materialization)"
                ) from None

        return GeneratorTupleIterator(generate())
