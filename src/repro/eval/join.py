"""Nested-loops join with indexing, trail-based backtracking, and
intelligent backjumping.

Section 5.3: *"The basic join mechanism in CORAL is nested-loops with
indexing.  In a manner similar to Prolog, CORAL maintains a trail of variable
bindings when a rule is evaluated; this is used to undo variable bindings
when the nested-loops join considers the next tuple in any loop."*

Section 4.2 lists "deciding whether to refine the basic nested-loops join
with intelligent backtracking" among the optimizer's duties, and Section 5.1
notes each semi-naive rule carries "pre-computed backtrack points".  The
executor here implements that refinement: when a body literal yields *no*
solution at all under the current bindings, control jumps directly to the
most recent earlier literal that binds one of its variables — the
intermediate literals' untried alternatives cannot make it succeed.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import EvaluationError
from ..language.ast import Literal
from ..relations import MarkedRelation, Relation, Tuple
from ..rewriting.seminaive import ScanKind, SNLiteral
from ..terms import Arg, BindEnv, Trail, resolve, unify
from ..terms.unify import unify_fact
from .context import EvalContext, LocalScope

#: resolves a ScanKind to a (since, until) mark range for a literal's relation,
#: given the predicate key; returns None for an unrestricted scan
RangeResolver = Callable[[PyTuple[str, int], ScanKind], Optional[PyTuple[int, Optional[int]]]]


def positive_solutions(
    scope: LocalScope,
    literal: Literal,
    env: BindEnv,
    trail: Trail,
    scan_range: Optional[PyTuple[int, Optional[int]]] = None,
) -> Iterator[None]:
    """Enumerate bindings that satisfy a positive, non-builtin literal.

    Opens a scan (indexed when the probe allows) and unifies each candidate
    tuple against the literal's arguments.  Stored non-ground facts are
    standardized apart before unification (their variables are universally
    quantified, Section 3.1).
    """
    relation = scope.relation(literal.pred, literal.arity)
    if scan_range is not None and isinstance(relation, MarkedRelation):
        cursor = relation.scan(
            literal.args, env, since=scan_range[0], until=scan_range[1]
        )
    else:
        cursor = relation.scan(literal.args, env)
    obs = scope.ctx.obs
    try:
        if obs is None:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    return
                fact = candidate.renamed()
                mark = trail.mark()
                if unify_fact(literal.args, env, fact.args, trail):
                    yield None
                trail.undo_to(mark)
        # profiled twin of the loop above: counts the probe side of the
        # nested-loops join (tuples consulted, unifications that stuck)
        probed = matched = 0
        try:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    return
                probed += 1
                fact = candidate.renamed()
                mark = trail.mark()
                if unify_fact(literal.args, env, fact.args, trail):
                    matched += 1
                    yield None
                trail.undo_to(mark)
        finally:
            obs.on_scan(literal.key, probed, matched)
    finally:
        cursor.close()


def negative_holds(
    scope: LocalScope,
    literal: Literal,
    env: BindEnv,
    trail: Trail,
) -> bool:
    """Negation as set difference over a *complete* relation (Section 5.4.1):
    ``not p(args)`` holds when no stored fact unifies with the arguments.
    Stratification (or Ordered Search's done-markers) guarantees the
    relation is fully evaluated when this runs."""
    relation = scope.relation(literal.pred, literal.arity)
    cursor = relation.scan(literal.args, env)
    try:
        while True:
            candidate = cursor.get_next()
            if candidate is None:
                return True
            fact = candidate.renamed()
            mark = trail.mark()
            matched = unify_fact(literal.args, env, fact.args, trail)
            trail.undo_to(mark)
            if matched:
                return False
    finally:
        cursor.close()


def literal_solutions(
    scope: LocalScope,
    sn_literal: SNLiteral,
    env: BindEnv,
    trail: Trail,
    ranges: Optional[RangeResolver],
) -> Iterator[None]:
    """Solutions of one body literal of any flavour: builtin, negated, or a
    (possibly delta-restricted) relation scan."""
    literal = sn_literal.literal
    builtin = scope.ctx.builtins.lookup(literal.pred, literal.arity)
    if builtin is not None:
        if literal.negated:
            raise EvaluationError(
                f"negation of builtin {literal.pred} is not supported"
            )
        mark = trail.mark()
        for _ in builtin.impl(literal.args, env, trail):
            yield None
        trail.undo_to(mark)
        return
    if literal.negated:
        if negative_holds(scope, literal, env, trail):
            yield None
        return
    scan_range = None
    if ranges is not None and sn_literal.kind is not ScanKind.ALL:
        scan_range = ranges(literal.key, sn_literal.kind)
    yield from positive_solutions(scope, literal, env, trail, scan_range)


def backtrack_points(body: Sequence[SNLiteral]) -> List[int]:
    """For each body position, the latest earlier position sharing a
    variable with it (-1 when none) — the pre-computed backjump targets of
    Section 5.1."""
    variable_sets = [
        {var.vid for arg in item.literal.args for var in arg.variables()}
        for item in body
    ]
    points: List[int] = []
    for index, variables in enumerate(variable_sets):
        target = -1
        for earlier in range(index - 1, -1, -1):
            if variable_sets[earlier] & variables:
                target = earlier
                break
        points.append(target)
    return points


class BodyExecutor:
    """Iterative nested-loops evaluation of one rule body.

    Built once per semi-naive rule (the 'semi-naive rule structure' of
    Section 5.1: literal order and backtrack points are pre-computed);
    :meth:`solutions` is then called once per rule application with a fresh
    environment.
    """

    def __init__(
        self,
        scope: LocalScope,
        body: Sequence[SNLiteral],
        use_backjumping: bool = True,
    ) -> None:
        self.scope = scope
        self.body = list(body)
        self.points = backtrack_points(self.body)
        self.use_backjumping = use_backjumping

    def solutions(
        self,
        env: BindEnv,
        trail: Trail,
        ranges: Optional[RangeResolver] = None,
    ) -> Iterator[None]:
        """Yield once per way of satisfying the whole body; bindings are in
        ``env`` while the consumer holds each solution."""
        count = len(self.body)
        if count == 0:
            yield None
            return
        iterators: List[Optional[Iterator[None]]] = [None] * count
        marks: List[int] = [0] * count
        produced: List[bool] = [False] * count
        position = 0
        while True:
            if iterators[position] is None:
                marks[position] = trail.mark()
                produced[position] = False
                iterators[position] = literal_solutions(
                    self.scope, self.body[position], env, trail, ranges
                )
            step = next(iterators[position], _EXHAUSTED)
            if step is not _EXHAUSTED:
                produced[position] = True
                if position == count - 1:
                    yield None
                    continue  # more solutions of the innermost literal
                position += 1
                continue
            # this literal is exhausted
            trail.undo_to(marks[position])
            iterators[position] = None
            if self.use_backjumping and not produced[position]:
                target = self.points[position]
            else:
                target = position - 1
            if target < 0:
                return
            for intermediate in range(position - 1, target, -1):
                iterators[intermediate] = None
                trail.undo_to(marks[intermediate])
            position = target


_EXHAUSTED = object()


def instantiate_head(head_args: Sequence[Arg], env: BindEnv) -> Tuple:
    """Resolve a satisfied rule's head into a standalone fact (remaining free
    variables stay universally quantified — non-ground facts, Section 3.1)."""
    return Tuple(tuple(resolve(arg, env) for arg in head_args))
