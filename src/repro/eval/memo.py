"""Cross-query answer memoization with incremental invalidation.

CORAL's module system already retains materialized answers *within* a call
(and across calls under ``@save_module``, Section 5.4.2); this module
retains them **across queries**: a per-module answer cache keyed by
(predicate, adornment, bound-argument values) that keeps the magic /
semi-naive fixpoint results of a module invocation alive so the next query
with the same — or a *less* bound — subgoal is answered without
re-evaluation.

Three mechanisms make the cache safe:

* **Subsumption serving.**  An entry computed for query form ``F`` with
  bound values ``v`` answers any call whose ground positions include ``F``'s
  'b' positions with equal values: a cached ``anc(bf)`` with ``X = a``
  serves ``anc(a, Y)`` *and* ``anc(a, b)``; a cached all-free result serves
  any more-bound call by filtering.  This is sound because the relation scan
  contract returns *candidates* — every caller unifies each tuple against
  its own pattern anyway.

* **Incremental invalidation.**  ``Session.insert/delete`` (and the
  ``assertz``/``retract`` builtins) report base-predicate changes to the
  cache.  For *maintainable* entries (positive, aggregation-free,
  single-module, interpreted, non-multiset) inserts are absorbed lazily by
  delta semi-naive: per-SCC cross-query delta rule versions (``EXT_DELTA``
  on one base literal, the base relation's mark recording what the entry has
  consumed) re-seed the retained evaluators, which then resume their
  fixpoint — exactly the marks machinery of Section 3.2.  Deletes run
  DRed-style delete-rederive: over-delete everything derivable from the
  deleted tuples (joining the remaining body against the *pre-state*,
  current ∪ removed), then re-derive over-deleted tuples that still have an
  independent proof.  Magic/supplementary-magic *magic* predicates are
  exempt from over-deletion: an over-complete magic set only gates
  relevance, never truth.  Above a configurable damage threshold — or for
  any entry the incremental path cannot maintain (negation, aggregation,
  cross-module calls, compiled or ordered-search evaluation) — the whole
  entry is evicted and recomputed on next use.

* **Snapshot pinning.**  Served answers are an immutable list captured at
  lookup time; a refresh *replaces* the list rather than mutating it, so a
  streaming cursor (the server's ``FETCH`` loop) never observes a
  concurrent invalidation mid-cursor.

Entries live in an LRU keyed store under a byte budget
(:class:`MemoPolicy`); ``@memo`` / ``@no_memo`` module annotations and the
``Session(memo=...)`` policy select which modules participate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from ..relations import (
    GeneratorTupleIterator,
    MarkedRelation,
    Relation,
    Tuple,
    TupleIterator,
)
from ..rewriting.magic import MAGIC_PREFIX
from ..rewriting.seminaive import ScanKind, SNLiteral, SNRule
from ..terms import Atom, BindEnv, Double, Functor, Int, Str, Trail, Var
from ..terms.unify import unify_fact
from .fixpoint import apply_rule
from .join import BodyExecutor, instantiate_head

PredKey = PyTuple[str, int]

#: entry key: (module, pred, arity, adornment, bound values at 'b' positions)
EntryKey = PyTuple[str, str, int, str, tuple]


@dataclass
class MemoPolicy:
    """Knobs for the cross-query answer cache (``Session(memo=...)``)."""

    #: total byte budget across entries; least recently used evicted first
    max_bytes: int = 32 * 1024 * 1024
    #: refuse to retain any single entry larger than this (0 = max_bytes/4)
    max_entry_bytes: int = 0
    #: DRed bail-out: evict instead of repairing when over-deletion touches
    #: more than this fraction of an entry's derived facts
    damage_threshold: float = 0.5
    #: memoize only modules carrying the ``@memo`` annotation
    annotated_only: bool = False

    def entry_budget(self) -> int:
        return self.max_entry_bytes or max(1, self.max_bytes // 4)


@dataclass
class MemoStats:
    """Counters surfaced through ``MemoCache.stats()``, the server's STATS
    op, and (when profiling) ``repro.obs`` metrics."""

    hits: int = 0
    misses: int = 0
    subsumption_hits: int = 0
    invalidations: int = 0  # entries marked stale or evicted by an update
    evictions: int = 0  # entries dropped (budget, damage, unmaintainable)
    insert_refreshes: int = 0
    delete_refreshes: int = 0
    dred_overdeleted: int = 0
    dred_rederived: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _ModuleInfo:
    """Transitive facts about a module's rule set (cached per module)."""

    base_deps: FrozenSet[PredKey]
    impure: bool  # reaches a side-effecting builtin (assertz/retract, ...)


class _DamageExceeded(Exception):
    """DRed over-deletion crossed the damage threshold; evict instead."""


class MemoEntry:
    """One retained module invocation: its answers, its evaluators, and the
    bookkeeping needed to maintain them incrementally."""

    __slots__ = (
        "key",
        "module_name",
        "pred",
        "arity",
        "form",
        "call_args",
        "answers",
        "instance",
        "deps",
        "maintainable",
        "stale_inserts",
        "pending_deletes",
        "base_seen",
        "base_delta_rules",
        "nbytes",
    )

    def __init__(self, key: EntryKey, module_name: str, pred: str, arity: int,
                 form: str, call_args: Sequence) -> None:
        self.key = key
        self.module_name = module_name
        self.pred = pred
        self.arity = arity
        self.form = form
        self.call_args = list(call_args)
        self.answers: List[Tuple] = []
        self.instance = None
        self.deps: FrozenSet[PredKey] = frozenset()
        self.maintainable = False
        self.stale_inserts = False
        self.pending_deletes: Dict[PredKey, List[Tuple]] = {}
        #: per base dep: the relation mark up to which inserts are absorbed
        self.base_seen: Dict[PredKey, int] = {}
        #: per evaluator index: [(SNRule, BodyExecutor)] replaying base deltas
        self.base_delta_rules: List[List] = []
        self.nbytes = 0

    @property
    def stale(self) -> bool:
        return self.stale_inserts or bool(self.pending_deletes)


class MemoCache:
    """The per-session answer cache.  Installed as ``ctx.memo``; consulted
    by :meth:`repro.modules.manager.ExportedRelation.scan`."""

    def __init__(self, manager, policy: Optional[MemoPolicy] = None) -> None:
        self.manager = manager
        self.ctx = manager.ctx
        self.policy = policy or MemoPolicy()
        self.stats = MemoStats()
        self._entries: "OrderedDict[EntryKey, MemoEntry]" = OrderedDict()
        #: secondary index: (module, pred, arity) -> entry keys (subsumption)
        self._by_pred: Dict[PyTuple[str, str, int], Set[EntryKey]] = {}
        #: reverse dependency index: base PredKey -> entry keys
        self._by_dep: Dict[PredKey, Set[EntryKey]] = {}
        self._module_info: Dict[str, _ModuleInfo] = {}
        self._module_eligible: Dict[str, bool] = {}
        self._building: Set[EntryKey] = set()
        self.total_bytes = 0
        #: bumped by every invalidation; guards mid-build staleness
        self.generation = 0

    # -- public bookkeeping ----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        counters = self.stats.snapshot()
        counters["entries"] = len(self._entries)
        counters["bytes"] = self.total_bytes
        return counters

    def clear(self) -> None:
        """Drop everything — called on module load/unload, which can change
        what any predicate name resolves to."""
        self.generation += 1
        self._entries.clear()
        self._by_pred.clear()
        self._by_dep.clear()
        self._module_info.clear()
        self._module_eligible.clear()
        self.total_bytes = 0

    # -- invalidation hooks (Session.insert/delete, assertz/retract) -----------

    def on_insert(self, key: PredKey) -> None:
        self.generation += 1
        for entry_key in list(self._by_dep.get(key, ())):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            self.stats.invalidations += 1
            self._trace("memo.invalidate", entry, change=f"+{key[0]}/{key[1]}")
            if entry.maintainable:
                entry.stale_inserts = True
            else:
                self._evict(entry)

    def on_delete(self, key: PredKey, tup: Tuple) -> None:
        self.generation += 1
        for entry_key in list(self._by_dep.get(key, ())):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            self.stats.invalidations += 1
            self._trace("memo.invalidate", entry, change=f"-{key[0]}/{key[1]}")
            if entry.maintainable:
                entry.pending_deletes.setdefault(key, []).append(tup)
            else:
                self._evict(entry)

    # -- lookup (the ExportedRelation.scan hook) -------------------------------

    def lookup(
        self,
        module_name: str,
        export,
        resolved: Sequence,
        bound: Sequence[bool],
    ) -> Optional[TupleIterator]:
        """Serve (or compute-and-retain) the call ``export.pred(resolved)``.
        Returns None when the module is not memoizable — the caller then
        falls through to the ordinary un-memoized path."""
        if not self._eligible(module_name):
            return None
        form = self.manager.choose_form(export, bound)
        key_values = tuple(
            resolved[position].ground_key()
            for position, flag in enumerate(form)
            if flag == "b"
        )
        key: EntryKey = (module_name, export.pred, export.arity, form, key_values)
        if key in self._building:
            return None  # cross-module recursion back into a building entry

        entry = self._entries.get(key)
        if entry is not None and self._freshen(entry):
            self.stats.hits += 1
            self._entries.move_to_end(key)
            self._trace("memo.hit", entry)
            return _serve(entry.answers, resolved, form)
        if entry is None:
            served = self._subsumption_lookup(key, resolved, bound)
            if served is not None:
                return served
        return self._build(key, module_name, export, form, resolved)

    # -- internals -------------------------------------------------------------

    def _trace(self, name: str, entry: MemoEntry, **extra) -> None:
        obs = self.ctx.obs
        if obs is not None:
            obs.event(
                name,
                cat="memo",
                module=entry.module_name,
                pred=f"{entry.pred}/{entry.arity}",
                form=entry.form,
                **extra,
            )

    def _eligible(self, module_name: str) -> bool:
        cached = self._module_eligible.get(module_name)
        if cached is not None:
            return cached
        module = self.manager.modules.get(module_name)
        ok = module is not None
        if ok:
            if module.has_flag("no_memo") or module.has_flag("pipelining") \
                    or module.has_flag("save_module"):
                ok = False
            elif self.policy.annotated_only and not module.has_flag("memo"):
                ok = False
            else:
                ok = not self._info(module_name).impure
        self._module_eligible[module_name] = ok
        return ok

    def _info(self, module_name: str, _visiting: Optional[Set[str]] = None) -> _ModuleInfo:
        cached = self._module_info.get(module_name)
        if cached is not None:
            return cached
        visiting = _visiting or set()
        visiting.add(module_name)
        module = self.manager.modules[module_name]
        defined = set(module.defined_predicates())
        base: Set[PredKey] = set()
        impure = False
        for rule in module.rules:
            for literal in rule.body:
                lkey = literal.key
                builtin = self.ctx.builtins.lookup(*lkey)
                if builtin is not None:
                    impure = impure or not builtin.pure
                    continue
                if lkey in defined:
                    continue
                exported = self.manager.exports.get(lkey)
                if exported is not None:
                    other = exported[0]
                    if other in visiting:
                        continue
                    info = self._info(other, visiting)
                    base |= info.base_deps
                    impure = impure or info.impure
                else:
                    base.add(lkey)
        info = _ModuleInfo(frozenset(base), impure)
        self._module_info[module_name] = info
        return info

    def _subsumption_lookup(
        self, key: EntryKey, resolved: Sequence, bound: Sequence[bool]
    ) -> Optional[TupleIterator]:
        """An existing entry whose bound positions are a subset of this
        call's ground positions (with equal values) serves by filtering."""
        module_name, pred, arity = key[0], key[1], key[2]
        for entry_key in self._by_pred.get((module_name, pred, arity), ()):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            form = entry.form
            usable = all(
                flag == "f"
                or (bound[position]
                    and resolved[position].ground_key() == entry.key[4][
                        sum(1 for f in form[:position] if f == "b")])
                for position, flag in enumerate(form)
            )
            if not usable:
                continue
            if not self._freshen(entry):
                continue  # evicted during refresh; retry others
            self.stats.hits += 1
            self.stats.subsumption_hits += 1
            self._entries.move_to_end(entry.key)
            self._trace("memo.hit", entry, subsumed_by=entry.form)
            return _serve(entry.answers, resolved)
        return None

    def _build(
        self, key: EntryKey, module_name: str, export, form: str,
        resolved: Sequence,
    ) -> TupleIterator:
        """Cache miss: evaluate the *canonical* call for this key (bound
        values at the form's 'b' positions, fresh variables elsewhere),
        retain the instance, and serve the caller by filtering."""
        self.stats.misses += 1
        generation = self.generation
        call_args = [
            resolved[position] if flag == "b" else Var("_")
            for position, flag in enumerate(form)
        ]
        entry = MemoEntry(key, module_name, export.pred, export.arity, form,
                          call_args)
        instance = self.manager.instance_for(module_name, export.pred, form)
        entry.instance = instance
        self._analyze(entry)
        self._record_base_marks(entry)
        self._building.add(key)
        try:
            entry.answers = list(instance.call(call_args))
        finally:
            self._building.discard(key)
        self._trace("memo.miss", entry, answers=len(entry.answers))
        entry.nbytes = _estimate_entry_bytes(entry)
        if generation == self.generation and \
                entry.nbytes <= self.policy.entry_budget():
            self._store(entry)
        return _serve(entry.answers, resolved, form)

    def _analyze(self, entry: MemoEntry) -> None:
        """Direct base deps of the compiled form, the transitive deps of any
        modules it calls, and whether incremental maintenance is possible."""
        instance = entry.instance
        compiled = instance.compiled
        scope = instance.scope
        deps: Set[PredKey] = set()
        maintainable = not (
            compiled.compiled
            or compiled.ordered_search
            or compiled.constraints
            or compiled.multiset_preds
        )
        for rule in compiled.rewritten.rules:
            if rule.head_aggregates:
                maintainable = False
            for literal in rule.body:
                lkey = literal.key
                if self.ctx.builtins.lookup(*lkey) is not None:
                    continue
                if literal.negated:
                    maintainable = False
                if scope.is_local(*lkey):
                    continue
                exported = self.manager.exports.get(lkey)
                if exported is not None:
                    maintainable = False  # cross-module: evict on update
                    info = self._info(exported[0])
                    deps |= info.base_deps
                else:
                    deps.add(lkey)
        if maintainable:
            for dep in deps:
                relation = self.ctx.base_relation(*dep)
                if not isinstance(relation, MarkedRelation):
                    maintainable = False  # no marks: cannot track deltas
                    break
        entry.deps = frozenset(deps)
        entry.maintainable = maintainable
        if maintainable:
            self._build_base_delta_rules(entry)

    def _build_base_delta_rules(self, entry: MemoEntry) -> None:
        """For every rule and every base body literal, a delta version
        scanning that literal's *unconsumed* base facts (EXT_DELTA ranged by
        ``entry.base_seen``) against the full extent of everything else —
        the cross-query analogue of ``ext_rewrite``."""
        instance = entry.instance
        scope = instance.scope
        use_backjumping = instance.compiled.use_backjumping
        entry.base_delta_rules = []
        for plan in instance.compiled.scc_plans:
            versions = []
            for rule in plan.rules:
                for position, literal in enumerate(rule.body):
                    if literal.negated or literal.key not in entry.deps:
                        continue
                    body = tuple(
                        SNLiteral(
                            item,
                            ScanKind.EXT_DELTA if index == position
                            else ScanKind.ALL,
                        )
                        for index, item in enumerate(rule.body)
                    )
                    sn_rule = SNRule(rule.head, body, rule.head_aggregates,
                                     once=True)
                    versions.append(
                        (sn_rule, BodyExecutor(scope, body, use_backjumping))
                    )
            entry.base_delta_rules.append(versions)

    def _record_base_marks(self, entry: MemoEntry) -> None:
        if not entry.maintainable:
            return
        for dep in entry.deps:
            relation = self.ctx.base_relation(*dep)
            entry.base_seen[dep] = relation.mark()

    def _store(self, entry: MemoEntry) -> None:
        old = self._entries.get(entry.key)
        if old is not None:
            self._evict(old)
        self._entries[entry.key] = entry
        self._by_pred.setdefault(
            (entry.module_name, entry.pred, entry.arity), set()
        ).add(entry.key)
        for dep in entry.deps:
            self._by_dep.setdefault(dep, set()).add(entry.key)
        self.total_bytes += entry.nbytes
        while self.total_bytes > self.policy.max_bytes and self._entries:
            oldest = next(iter(self._entries.values()))
            self._evict(oldest)

    def _evict(self, entry: MemoEntry) -> None:
        if self._entries.pop(entry.key, None) is None:
            return
        self.stats.evictions += 1
        self.total_bytes -= entry.nbytes
        pred_key = (entry.module_name, entry.pred, entry.arity)
        bucket = self._by_pred.get(pred_key)
        if bucket is not None:
            bucket.discard(entry.key)
            if not bucket:
                del self._by_pred[pred_key]
        for dep in entry.deps:
            bucket = self._by_dep.get(dep)
            if bucket is not None:
                bucket.discard(entry.key)
                if not bucket:
                    del self._by_dep[dep]

    # -- incremental refresh ---------------------------------------------------

    def _freshen(self, entry: MemoEntry) -> bool:
        """Bring a stale entry up to date in place.  Returns False when the
        entry was evicted instead (damage threshold, unexpected failure) —
        the caller falls back to a rebuild."""
        if not entry.stale:
            return True
        try:
            if entry.pending_deletes:
                self._refresh_deletes(entry)
                self.stats.delete_refreshes += 1
            if entry.stale_inserts:
                self._refresh_inserts(entry)
                self.stats.insert_refreshes += 1
        except Exception:
            # any repair failure degrades to eviction: correctness comes
            # from recomputation, the cache only ever skips work
            self._evict(entry)
            return False
        entry.pending_deletes = {}
        entry.stale_inserts = False
        self._record_base_marks(entry)
        old_bytes = entry.nbytes
        entry.answers = self._collect_answers(entry)
        entry.nbytes = _estimate_entry_bytes(entry)
        self.total_bytes += entry.nbytes - old_bytes
        self._trace("memo.refresh", entry, answers=len(entry.answers))
        return True

    def _collect_answers(self, entry: MemoEntry) -> List[Tuple]:
        return list(entry.instance._answer_cursor(entry.call_args, since=0))

    def _refresh_inserts(self, entry: MemoEntry) -> None:
        """Absorb base-predicate inserts: replay each SCC's base-delta rule
        versions over the unconsumed slice of every base relation, then let
        the retained evaluators resume their fixpoint (their own EXT rules
        pick up growth of earlier SCCs)."""
        scope = entry.instance.scope
        base_seen = entry.base_seen

        def ranges(pred: PredKey, kind: ScanKind):
            if kind is ScanKind.EXT_DELTA:
                return (base_seen.get(pred, 0), None)
            return None

        for index, evaluator in enumerate(entry.instance.evaluators):
            for sn_rule, executor in entry.base_delta_rules[index]:
                apply_rule(scope, sn_rule, executor, ranges)
            evaluator.run_to_completion()

    def _refresh_deletes(self, entry: MemoEntry) -> None:
        """DRed delete-rederive over the entry's retained local relations."""
        instance = entry.instance
        scope = instance.scope
        rewritten = instance.compiled.rewritten
        magic_names = {
            name for name in (rewritten.magic_pred,) if name is not None
        }
        for adorned in rewritten.origin:
            magic_names.add(MAGIC_PREFIX + adorned)

        total = sum(len(relation) for relation in scope.local.values())
        budget = max(64, int(self.policy.damage_threshold * total))
        use_backjumping = instance.compiled.use_backjumping

        # pre-state view: current contents plus everything removed so far
        removed_store: Dict[PredKey, List[Tuple]] = {
            key: list(tuples) for key, tuples in entry.pending_deletes.items()
        }
        pre_state = _PreStateScope(scope, removed_store)

        # --- over-delete: propagate deletion deltas to fixpoint -------------
        over_deleted: List[PyTuple[PredKey, Tuple]] = []
        wave = {key: list(tuples) for key, tuples in entry.pending_deletes.items()}
        executors: Dict[PyTuple[int, int], BodyExecutor] = {}
        rules = list(rewritten.rules)
        while wave:
            next_wave: Dict[PredKey, List[Tuple]] = {}
            for rule_index, rule in enumerate(rules):
                head_key = rule.head.key
                if rule.head.pred in magic_names:
                    continue  # over-complete magic is sound; never shrink it
                head_relation = scope.local.get(head_key)
                if head_relation is None:
                    continue
                for position, literal in enumerate(rule.body):
                    deleted = wave.get(literal.key)
                    if not deleted or literal.negated \
                            or self.ctx.builtins.lookup(*literal.key):
                        continue
                    executor = executors.get((rule_index, position))
                    if executor is None:
                        rest = tuple(
                            SNLiteral(item, ScanKind.ALL)
                            for index, item in enumerate(rule.body)
                            if index != position
                        )
                        executor = BodyExecutor(pre_state, rest, use_backjumping)
                        executors[(rule_index, position)] = executor
                    for tup in deleted:
                        env = BindEnv()
                        trail = Trail()
                        if not unify_fact(
                            literal.args, env, tup.renamed().args, trail
                        ):
                            trail.undo_to(0)
                            continue
                        for _ in executor.solutions(env, trail, None):
                            head_fact = instantiate_head(rule.head.args, env)
                            if head_relation.delete(head_fact):
                                over_deleted.append((head_key, head_fact))
                                next_wave.setdefault(head_key, []).append(
                                    head_fact
                                )
                                if len(over_deleted) > budget:
                                    raise _DamageExceeded()
                        trail.undo_to(0)
            for key, tuples in next_wave.items():
                removed_store.setdefault(key, []).extend(tuples)
            wave = next_wave
        self.stats.dred_overdeleted += len(over_deleted)

        # --- re-derive: restore over-deleted tuples with surviving proofs ---
        rules_by_head: Dict[PredKey, List] = {}
        for rule in rules:
            rules_by_head.setdefault(rule.head.key, []).append(rule)
        full_executors: Dict[int, BodyExecutor] = {}
        pending = list(over_deleted)
        while pending:
            progressed = False
            remaining: List[PyTuple[PredKey, Tuple]] = []
            for head_key, tup in pending:
                if self._rederivable(
                    scope, rules_by_head.get(head_key, ()), rules, tup,
                    full_executors, use_backjumping,
                ):
                    scope.local[head_key].insert(tup)
                    self.stats.dred_rederived += 1
                    progressed = True
                else:
                    remaining.append((head_key, tup))
            if not progressed:
                break  # the rest have no support left: correctly deleted
            pending = remaining

    def _rederivable(
        self, scope, candidate_rules, all_rules, tup, executors, use_backjumping
    ) -> bool:
        """Does some rule still derive ``tup`` over the *current* state?"""
        target_key = tup.key()
        for rule in candidate_rules:
            rule_id = id(rule)
            executor = executors.get(rule_id)
            if executor is None:
                body = tuple(
                    SNLiteral(item, ScanKind.ALL) for item in rule.body
                )
                executor = BodyExecutor(scope, body, use_backjumping)
                executors[rule_id] = executor
            env = BindEnv()
            trail = Trail()
            if not unify_fact(rule.head.args, env, tup.renamed().args, trail):
                trail.undo_to(0)
                continue
            for _ in executor.solutions(env, trail, None):
                head_fact = instantiate_head(rule.head.args, env)
                if head_fact.key() == target_key or tup.is_ground():
                    trail.undo_to(0)
                    return True
            trail.undo_to(0)
        return False


# -- serving -------------------------------------------------------------------


def _serve(
    answers: List[Tuple], resolved: Sequence, form: Optional[str] = None
) -> TupleIterator:
    """A cursor over a pinned answer snapshot, filtered down to tuples
    compatible with the call's (possibly more-bound) arguments.  The list
    reference is captured here, so a refresh replacing ``entry.answers``
    never disturbs an open cursor.

    When the caller knows the entry's adornment ``form``, the common case —
    ground arguments exactly at the 'b' positions (equal to the entry key
    by construction) and pairwise-distinct free variables elsewhere —
    serves the snapshot without per-answer unification.
    """
    if form is not None:
        seen_vars: Set[int] = set()
        for position, flag in enumerate(form):
            if flag == "b":
                continue
            arg = resolved[position]
            if not isinstance(arg, Var) or id(arg) in seen_vars:
                break
            seen_vars.add(id(arg))
        else:
            return GeneratorTupleIterator(iter(answers))
    pattern = list(resolved)

    def generate() -> Iterator[Tuple]:
        env = BindEnv()
        trail = Trail()
        for fact in answers:
            mark = trail.mark()
            matched = unify_fact(pattern, env, fact.args, trail)
            trail.undo_to(mark)
            if matched:
                yield fact

    return GeneratorTupleIterator(generate())


class _UnionRelation(Relation):
    """Pre-state view of one relation: current contents ∪ removed tuples."""

    def __init__(self, current: Relation, removed: Sequence[Tuple]) -> None:
        super().__init__(current.name, current.arity)
        self.current = current
        self.removed = removed

    def insert(self, tup: Tuple) -> bool:  # pragma: no cover - never written
        raise NotImplementedError("pre-state views are read-only")

    def delete(self, tup: Tuple) -> bool:  # pragma: no cover - never written
        raise NotImplementedError("pre-state views are read-only")

    def __len__(self) -> int:
        return len(self.current) + len(self.removed)

    def scan(self, pattern=None, env=None) -> TupleIterator:
        def generate() -> Iterator[Tuple]:
            cursor = self.current.scan(pattern, env)
            try:
                while True:
                    candidate = cursor.get_next()
                    if candidate is None:
                        break
                    yield candidate
            finally:
                cursor.close()
            yield from self.removed

        return GeneratorTupleIterator(generate())


class _PreStateScope:
    """A :class:`LocalScope` stand-in whose relations show the pre-deletion
    state (current ∪ removed), for DRed's over-deletion joins."""

    def __init__(self, scope, removed: Dict[PredKey, List[Tuple]]) -> None:
        self._scope = scope
        self.ctx = scope.ctx
        self._removed = removed

    def relation(self, name: str, arity: int) -> Relation:
        underlying = self._scope.relation(name, arity)
        removed = self._removed.get((name, arity))
        if removed:
            return _UnionRelation(underlying, removed)
        return underlying


# -- sizing --------------------------------------------------------------------


def _estimate_arg_bytes(arg) -> int:
    if isinstance(arg, Str):
        return 56 + len(arg.value)
    if isinstance(arg, (Int, Double, Atom, Var)):
        return 32
    if isinstance(arg, Functor):
        return 56 + sum(_estimate_arg_bytes(child) for child in arg.args)
    return 48


def _estimate_tuple_bytes(tup: Tuple) -> int:
    return 56 + sum(_estimate_arg_bytes(arg) for arg in tup.args)


def _estimate_entry_bytes(entry: MemoEntry) -> int:
    answer_bytes = sum(_estimate_tuple_bytes(tup) for tup in entry.answers)
    scope_bytes = 0
    if entry.instance is not None:
        for (name, arity), relation in entry.instance.scope.local.items():
            scope_bytes += len(relation) * (64 + 32 * arity)
    return 1024 + answer_bytes + scope_bytes
