"""Cross-query answer memoization with incremental invalidation.

CORAL's module system already retains materialized answers *within* a call
(and across calls under ``@save_module``, Section 5.4.2); this module
retains them **across queries**: a per-module answer cache keyed by
(predicate, adornment, bound-argument values) that keeps the magic /
semi-naive fixpoint results of a module invocation alive so the next query
with the same — or a *less* bound — subgoal is answered without
re-evaluation.

Three mechanisms make the cache safe:

* **Subsumption serving.**  An entry computed for query form ``F`` with
  bound values ``v`` answers any call whose ground positions include ``F``'s
  'b' positions with equal values: a cached ``anc(bf)`` with ``X = a``
  serves ``anc(a, Y)`` *and* ``anc(a, b)``; a cached all-free result serves
  any more-bound call by filtering.  This is sound because the relation scan
  contract returns *candidates* — every caller unifies each tuple against
  its own pattern anyway.

* **Incremental invalidation.**  ``Session.insert/delete`` (and the
  ``assertz``/``retract`` builtins) report base-predicate changes to the
  cache.  For *maintainable* entries (positive, aggregation-free,
  single-module, interpreted, non-multiset) inserts are absorbed lazily by
  delta semi-naive: per-SCC cross-query delta rule versions (``EXT_DELTA``
  on one base literal, the base relation's mark recording what the entry has
  consumed) re-seed the retained evaluators, which then resume their
  fixpoint — exactly the marks machinery of Section 3.2.  Deletes run
  DRed-style delete-rederive: over-delete everything derivable from the
  deleted tuples (joining the remaining body against the *pre-state*,
  current ∪ removed), then re-derive over-deleted tuples that still have an
  independent proof.  Magic/supplementary-magic *magic* predicates are
  exempt from over-deletion: an over-complete magic set only gates
  relevance, never truth.  Above a configurable damage threshold — or for
  any entry the incremental path cannot maintain (negation, aggregation,
  cross-module calls, compiled or ordered-search evaluation) — the whole
  entry is evicted and recomputed on next use.

* **Snapshot pinning.**  Served answers are an immutable list captured at
  lookup time; a refresh *replaces* the list rather than mutating it, so a
  streaming cursor (the server's ``FETCH`` loop) never observes a
  concurrent invalidation mid-cursor.

Entries live in an LRU keyed store under a byte budget
(:class:`MemoPolicy`); ``@memo`` / ``@no_memo`` module annotations and the
``Session(memo=...)`` policy select which modules participate.

The repair machinery itself (EXT_DELTA replay, DRed, pre-state unions)
lives in :mod:`repro.eval.maintenance` — this cache and the live-query
subsystem (:mod:`repro.live`) are two consumers of one engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from ..relations import GeneratorTupleIterator, Tuple, TupleIterator
from ..terms import Atom, BindEnv, Double, Functor, Int, Str, Trail, Var
from ..terms.unify import unify_fact
from .maintenance import plan_maintenance

PredKey = PyTuple[str, int]

#: entry key: (module, pred, arity, adornment, bound values at 'b' positions)
EntryKey = PyTuple[str, str, int, str, tuple]


@dataclass
class MemoPolicy:
    """Knobs for the cross-query answer cache (``Session(memo=...)``)."""

    #: total byte budget across entries; least recently used evicted first
    max_bytes: int = 32 * 1024 * 1024
    #: refuse to retain any single entry larger than this (0 = max_bytes/4)
    max_entry_bytes: int = 0
    #: DRed bail-out: evict instead of repairing when over-deletion touches
    #: more than this fraction of an entry's derived facts
    damage_threshold: float = 0.5
    #: memoize only modules carrying the ``@memo`` annotation
    annotated_only: bool = False

    def entry_budget(self) -> int:
        return self.max_entry_bytes or max(1, self.max_bytes // 4)


@dataclass
class MemoStats:
    """Counters surfaced through ``MemoCache.stats()``, the server's STATS
    op, and (when profiling) ``repro.obs`` metrics."""

    hits: int = 0
    misses: int = 0
    subsumption_hits: int = 0
    invalidations: int = 0  # entries marked stale or evicted by an update
    evictions: int = 0  # entries dropped (budget, damage, unmaintainable)
    insert_refreshes: int = 0
    delete_refreshes: int = 0
    dred_overdeleted: int = 0
    dred_rederived: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _ModuleInfo:
    """Transitive facts about a module's rule set (cached per module)."""

    base_deps: FrozenSet[PredKey]
    impure: bool  # reaches a side-effecting builtin (assertz/retract, ...)


class MemoEntry:
    """One retained module invocation: its answers, its evaluators (held by
    ``plan.instance``), and its private repair state.  The *mechanics* of
    repair live in the entry's :class:`~repro.eval.maintenance.MaintenancePlan`;
    the pending-delete queue stays here because it is strictly per-consumer
    state (a live view over the same predicate keeps its own)."""

    __slots__ = (
        "key",
        "module_name",
        "pred",
        "arity",
        "form",
        "call_args",
        "answers",
        "instance",
        "plan",
        "stale_inserts",
        "pending_deletes",
        "nbytes",
    )

    def __init__(self, key: EntryKey, module_name: str, pred: str, arity: int,
                 form: str, call_args: Sequence) -> None:
        self.key = key
        self.module_name = module_name
        self.pred = pred
        self.arity = arity
        self.form = form
        self.call_args = list(call_args)
        self.answers: List[Tuple] = []
        self.instance = None
        self.plan = None
        self.stale_inserts = False
        self.pending_deletes: Dict[PredKey, List[Tuple]] = {}
        self.nbytes = 0

    @property
    def deps(self) -> FrozenSet[PredKey]:
        return self.plan.deps if self.plan is not None else frozenset()

    @property
    def maintainable(self) -> bool:
        return self.plan is not None and self.plan.maintainable

    @property
    def stale(self) -> bool:
        return self.stale_inserts or bool(self.pending_deletes)


class MemoCache:
    """The per-session answer cache.  Installed as ``ctx.memo``; consulted
    by :meth:`repro.modules.manager.ExportedRelation.scan`."""

    def __init__(self, manager, policy: Optional[MemoPolicy] = None) -> None:
        self.manager = manager
        self.ctx = manager.ctx
        self.policy = policy or MemoPolicy()
        self.stats = MemoStats()
        self._entries: "OrderedDict[EntryKey, MemoEntry]" = OrderedDict()
        #: secondary index: (module, pred, arity) -> entry keys (subsumption)
        self._by_pred: Dict[PyTuple[str, str, int], Set[EntryKey]] = {}
        #: reverse dependency index: base PredKey -> entry keys
        self._by_dep: Dict[PredKey, Set[EntryKey]] = {}
        self._module_info: Dict[str, _ModuleInfo] = {}
        self._module_eligible: Dict[str, bool] = {}
        self._building: Set[EntryKey] = set()
        self.total_bytes = 0
        #: bumped by every invalidation; guards mid-build staleness
        self.generation = 0

    # -- public bookkeeping ----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        counters = self.stats.snapshot()
        counters["entries"] = len(self._entries)
        counters["bytes"] = self.total_bytes
        return counters

    def clear(self) -> None:
        """Drop everything — called on module load/unload, which can change
        what any predicate name resolves to."""
        self.generation += 1
        self._entries.clear()
        self._by_pred.clear()
        self._by_dep.clear()
        self._module_info.clear()
        self._module_eligible.clear()
        self.total_bytes = 0

    # -- invalidation hooks (Session.insert/delete, assertz/retract) -----------

    def on_insert(self, key: PredKey) -> None:
        self.generation += 1
        for entry_key in list(self._by_dep.get(key, ())):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            self.stats.invalidations += 1
            self._trace("memo.invalidate", entry, change=f"+{key[0]}/{key[1]}")
            if entry.maintainable:
                entry.stale_inserts = True
            else:
                self._evict(entry)

    def on_delete(self, key: PredKey, tup: Tuple) -> None:
        self.generation += 1
        for entry_key in list(self._by_dep.get(key, ())):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            self.stats.invalidations += 1
            self._trace("memo.invalidate", entry, change=f"-{key[0]}/{key[1]}")
            if entry.maintainable:
                entry.pending_deletes.setdefault(key, []).append(tup)
            else:
                self._evict(entry)

    # -- lookup (the ExportedRelation.scan hook) -------------------------------

    def lookup(
        self,
        module_name: str,
        export,
        resolved: Sequence,
        bound: Sequence[bool],
    ) -> Optional[TupleIterator]:
        """Serve (or compute-and-retain) the call ``export.pred(resolved)``.
        Returns None when the module is not memoizable — the caller then
        falls through to the ordinary un-memoized path."""
        if not self._eligible(module_name):
            return None
        form = self.manager.choose_form(export, bound)
        key_values = tuple(
            resolved[position].ground_key()
            for position, flag in enumerate(form)
            if flag == "b"
        )
        key: EntryKey = (module_name, export.pred, export.arity, form, key_values)
        if key in self._building:
            return None  # cross-module recursion back into a building entry

        entry = self._entries.get(key)
        if entry is not None and self._freshen(entry):
            self.stats.hits += 1
            self._entries.move_to_end(key)
            self._trace("memo.hit", entry)
            return _serve(entry.answers, resolved, form)
        if entry is None:
            served = self._subsumption_lookup(key, resolved, bound)
            if served is not None:
                return served
        return self._build(key, module_name, export, form, resolved)

    # -- internals -------------------------------------------------------------

    def _trace(self, name: str, entry: MemoEntry, **extra) -> None:
        obs = self.ctx.obs
        if obs is not None:
            obs.event(
                name,
                cat="memo",
                module=entry.module_name,
                pred=f"{entry.pred}/{entry.arity}",
                form=entry.form,
                **extra,
            )

    def _eligible(self, module_name: str) -> bool:
        cached = self._module_eligible.get(module_name)
        if cached is not None:
            return cached
        module = self.manager.modules.get(module_name)
        ok = module is not None
        if ok:
            if module.has_flag("no_memo") or module.has_flag("pipelining") \
                    or module.has_flag("save_module"):
                ok = False
            elif self.policy.annotated_only and not module.has_flag("memo"):
                ok = False
            else:
                ok = not self._info(module_name).impure
        self._module_eligible[module_name] = ok
        return ok

    def _info(self, module_name: str, _visiting: Optional[Set[str]] = None) -> _ModuleInfo:
        cached = self._module_info.get(module_name)
        if cached is not None:
            return cached
        visiting = _visiting or set()
        visiting.add(module_name)
        module = self.manager.modules[module_name]
        defined = set(module.defined_predicates())
        base: Set[PredKey] = set()
        impure = False
        for rule in module.rules:
            for literal in rule.body:
                lkey = literal.key
                builtin = self.ctx.builtins.lookup(*lkey)
                if builtin is not None:
                    impure = impure or not builtin.pure
                    continue
                if lkey in defined:
                    continue
                exported = self.manager.exports.get(lkey)
                if exported is not None:
                    other = exported[0]
                    if other in visiting:
                        continue
                    info = self._info(other, visiting)
                    base |= info.base_deps
                    impure = impure or info.impure
                else:
                    base.add(lkey)
        info = _ModuleInfo(frozenset(base), impure)
        self._module_info[module_name] = info
        return info

    def _subsumption_lookup(
        self, key: EntryKey, resolved: Sequence, bound: Sequence[bool]
    ) -> Optional[TupleIterator]:
        """An existing entry whose bound positions are a subset of this
        call's ground positions (with equal values) serves by filtering."""
        module_name, pred, arity = key[0], key[1], key[2]
        for entry_key in self._by_pred.get((module_name, pred, arity), ()):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            form = entry.form
            usable = all(
                flag == "f"
                or (bound[position]
                    and resolved[position].ground_key() == entry.key[4][
                        sum(1 for f in form[:position] if f == "b")])
                for position, flag in enumerate(form)
            )
            if not usable:
                continue
            if not self._freshen(entry):
                continue  # evicted during refresh; retry others
            self.stats.hits += 1
            self.stats.subsumption_hits += 1
            self._entries.move_to_end(entry.key)
            self._trace("memo.hit", entry, subsumed_by=entry.form)
            return _serve(entry.answers, resolved)
        return None

    def _build(
        self, key: EntryKey, module_name: str, export, form: str,
        resolved: Sequence,
    ) -> TupleIterator:
        """Cache miss: evaluate the *canonical* call for this key (bound
        values at the form's 'b' positions, fresh variables elsewhere),
        retain the instance, and serve the caller by filtering."""
        self.stats.misses += 1
        generation = self.generation
        call_args = [
            resolved[position] if flag == "b" else Var("_")
            for position, flag in enumerate(form)
        ]
        entry = MemoEntry(key, module_name, export.pred, export.arity, form,
                          call_args)
        instance = self.manager.instance_for(module_name, export.pred, form)
        entry.instance = instance
        self._analyze(entry)
        self._building.add(key)
        try:
            entry.answers = list(instance.call(call_args))
        finally:
            self._building.discard(key)
        self._trace("memo.miss", entry, answers=len(entry.answers))
        entry.nbytes = _estimate_entry_bytes(entry)
        if generation == self.generation and \
                entry.nbytes <= self.policy.entry_budget():
            self._store(entry)
        return _serve(entry.answers, resolved, form)

    def _analyze(self, entry: MemoEntry) -> None:
        """Delegate to the shared maintenance engine: the plan carries the
        base deps (for the reverse-dependency index even when eviction is
        the only option) and whether incremental repair is possible."""
        entry.plan = plan_maintenance(
            self.ctx,
            entry.instance,
            self.manager.exports,
            module_deps=lambda name: self._info(name).base_deps,
        )

    def _store(self, entry: MemoEntry) -> None:
        old = self._entries.get(entry.key)
        if old is not None:
            self._evict(old)
        self._entries[entry.key] = entry
        self._by_pred.setdefault(
            (entry.module_name, entry.pred, entry.arity), set()
        ).add(entry.key)
        for dep in entry.deps:
            self._by_dep.setdefault(dep, set()).add(entry.key)
        self.total_bytes += entry.nbytes
        while self.total_bytes > self.policy.max_bytes and self._entries:
            oldest = next(iter(self._entries.values()))
            self._evict(oldest)

    def _evict(self, entry: MemoEntry) -> None:
        if self._entries.pop(entry.key, None) is None:
            return
        self.stats.evictions += 1
        self.total_bytes -= entry.nbytes
        pred_key = (entry.module_name, entry.pred, entry.arity)
        bucket = self._by_pred.get(pred_key)
        if bucket is not None:
            bucket.discard(entry.key)
            if not bucket:
                del self._by_pred[pred_key]
        for dep in entry.deps:
            bucket = self._by_dep.get(dep)
            if bucket is not None:
                bucket.discard(entry.key)
                if not bucket:
                    del self._by_dep[dep]

    # -- incremental refresh ---------------------------------------------------

    def _freshen(self, entry: MemoEntry) -> bool:
        """Bring a stale entry up to date in place.  Returns False when the
        entry was evicted instead (damage threshold, unexpected failure) —
        the caller falls back to a rebuild."""
        if not entry.stale:
            return True
        try:
            if entry.pending_deletes:
                over_deleted, rederived = entry.plan.apply_deletes(
                    entry.pending_deletes, self.policy.damage_threshold
                )
                self.stats.dred_overdeleted += over_deleted
                self.stats.dred_rederived += rederived
                self.stats.delete_refreshes += 1
            if entry.stale_inserts:
                entry.plan.apply_inserts()
                self.stats.insert_refreshes += 1
        except Exception:
            # any repair failure degrades to eviction: correctness comes
            # from recomputation, the cache only ever skips work
            self._evict(entry)
            return False
        entry.pending_deletes = {}
        entry.stale_inserts = False
        entry.plan.record_base_marks()
        old_bytes = entry.nbytes
        entry.answers = self._collect_answers(entry)
        entry.nbytes = _estimate_entry_bytes(entry)
        self.total_bytes += entry.nbytes - old_bytes
        self._trace("memo.refresh", entry, answers=len(entry.answers))
        return True

    def _collect_answers(self, entry: MemoEntry) -> List[Tuple]:
        return list(entry.instance._answer_cursor(entry.call_args, since=0))


# -- serving -------------------------------------------------------------------


def _serve(
    answers: List[Tuple], resolved: Sequence, form: Optional[str] = None
) -> TupleIterator:
    """A cursor over a pinned answer snapshot, filtered down to tuples
    compatible with the call's (possibly more-bound) arguments.  The list
    reference is captured here, so a refresh replacing ``entry.answers``
    never disturbs an open cursor.

    When the caller knows the entry's adornment ``form``, the common case —
    ground arguments exactly at the 'b' positions (equal to the entry key
    by construction) and pairwise-distinct free variables elsewhere —
    serves the snapshot without per-answer unification.
    """
    if form is not None:
        seen_vars: Set[int] = set()
        for position, flag in enumerate(form):
            if flag == "b":
                continue
            arg = resolved[position]
            if not isinstance(arg, Var) or id(arg) in seen_vars:
                break
            seen_vars.add(id(arg))
        else:
            return GeneratorTupleIterator(iter(answers))
    pattern = list(resolved)

    def generate() -> Iterator[Tuple]:
        env = BindEnv()
        trail = Trail()
        for fact in answers:
            mark = trail.mark()
            matched = unify_fact(pattern, env, fact.args, trail)
            trail.undo_to(mark)
            if matched:
                yield fact

    return GeneratorTupleIterator(generate())


# -- sizing --------------------------------------------------------------------


def _estimate_arg_bytes(arg) -> int:
    if isinstance(arg, Str):
        return 56 + len(arg.value)
    if isinstance(arg, (Int, Double, Atom, Var)):
        return 32
    if isinstance(arg, Functor):
        return 56 + sum(_estimate_arg_bytes(child) for child in arg.args)
    return 48


def _estimate_tuple_bytes(tup: Tuple) -> int:
    return 56 + sum(_estimate_arg_bytes(arg) for arg in tup.args)


def _estimate_entry_bytes(entry: MemoEntry) -> int:
    answer_bytes = sum(_estimate_tuple_bytes(tup) for tup in entry.answers)
    scope_bytes = 0
    if entry.instance is not None:
        for (name, arity), relation in entry.instance.scope.local.items():
            scope_bytes += len(relation) * (64 + 32 * arity)
    return 1024 + answer_bytes + scope_bytes
