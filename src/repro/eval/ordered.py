"""Ordered Search: evaluation for left-to-right modularly stratified
programs (Section 5.4.1).

*"The principle of Ordered Search is that the computation is ordered by
'hiding' subgoals.  This is achieved by maintaining a 'context' that stores
subgoals in an ordered fashion, and that decides at each stage in the
evaluation, which subgoal to make available for use next ... the evaluation
must add a goal ('magic' fact) to the corresponding 'done' predicate when
(and only when) all answers to it have been generated."*

This implementation keeps the paper's two essential mechanisms — an ordered
context of subgoals and done-detection before negation/aggregation — in the
equivalent formulation of *subgoal-SCC completion*: subgoals are explored
depth-first (the context is the subgoal stack), mutually dependent subgoals
are detected with Tarjan-style lowlinks and iterated to a joint fixpoint,
and a subgoal is marked *done* exactly when its SCC completes.  A negated or
aggregated body literal may only consume a done subgoal; if it lands in the
current SCC the program is not left-to-right modularly stratified and
evaluation stops with an error, matching the paper's scope for the
technique.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..errors import StratificationError
from ..language.ast import Literal, Rule
from ..relations import HashRelation, Tuple
from ..terms import Arg, BindEnv, Trail, Var, rename_term, resolve, unify
from ..terms.unify import unify_fact
from .aggregates import AggregateConstraint, fold_aggregate
from .context import LocalScope

PredKey = PyTuple[str, int]

_COMPLETE = 1 << 60  # lowlink value for done subgoals


class _Subgoal:
    """One entry of the context: a called predicate with its binding pattern."""

    __slots__ = ("pred", "arity", "pattern", "answers", "depth", "done", "constraints")

    def __init__(
        self,
        pred: str,
        arity: int,
        pattern: PyTuple[Arg, ...],
        depth: int,
        constraints: Sequence[AggregateConstraint],
    ) -> None:
        self.pred = pred
        self.arity = arity
        self.pattern = pattern
        self.answers = HashRelation(f"{pred}@{depth}", arity)
        self.depth = depth
        self.done = False
        self.constraints = list(constraints)

    def insert(self, fact: Tuple) -> bool:
        for constraint in self.constraints:
            if not constraint.admit(self.answers, fact):
                return False
        inserted = self.answers.insert(fact)
        if inserted:
            for constraint in self.constraints:
                constraint.record(self.answers, fact)
        return inserted


class OrderedSearchEvaluator:
    """Evaluates one module's rules with ordered subgoal completion."""

    def __init__(self, scope: LocalScope, compiled) -> None:
        self.scope = scope
        self.compiled = compiled
        self.rules_by_pred: Dict[PredKey, List[Rule]] = {}
        for rule in compiled.rewritten.rules:
            self.rules_by_pred.setdefault(rule.head.key, []).append(rule)
        self.memo: Dict[object, _Subgoal] = {}
        self.stack: List[_Subgoal] = []
        self._version = 0  # bumps on every new answer anywhere

    # -- public entry -------------------------------------------------------------

    def solve_query(self, pred: str, call_args: Sequence[Arg]) -> None:
        """Evaluate the query subgoal to completion, publishing its answers
        into the instance's answer relation."""
        arity = len(call_args)
        subgoal, _ = self._solve(pred, tuple(call_args))
        assert subgoal.done
        for fact in subgoal.answers.scan():
            self.scope.insert_fact(pred, arity, fact)

    # -- subgoal machinery (the 'context') -------------------------------------------

    def _constraints_for(self, pred: str, arity: int) -> List[AggregateConstraint]:
        return [
            AggregateConstraint(selection)
            for (name, selection_arity), selection in self.compiled.constraints
            if name == pred and selection_arity == arity
        ]

    def _solve(self, pred: str, pattern: PyTuple[Arg, ...]) -> PyTuple[_Subgoal, int]:
        """Returns (subgoal, lowlink): lowlink is the shallowest context
        depth this subgoal (transitively) depends on; _COMPLETE when done.

        With a profiler installed, every call (memo hits included) counts
        one ``ordered`` subgoal activation; time is inclusive of callees."""
        obs = self.scope.ctx.obs
        if obs is None:
            return self._solve_subgoal(pred, pattern)
        token = obs.begin_subgoal("ordered", pred, len(pattern))
        try:
            return self._solve_subgoal(pred, pattern)
        finally:
            obs.end_subgoal(token)

    def _solve_subgoal(
        self, pred: str, pattern: PyTuple[Arg, ...]
    ) -> PyTuple[_Subgoal, int]:
        if self.scope.ctx.limits is not None:
            self.scope.ctx.limits.check(self.scope.ctx.stats)
        key = Tuple(pattern).key()
        key = (pred, key)
        subgoal = self.memo.get(key)
        if subgoal is not None:
            if subgoal.done:
                return subgoal, _COMPLETE
            return subgoal, subgoal.depth

        subgoal = _Subgoal(
            pred,
            len(pattern),
            pattern,
            len(self.stack),
            self._constraints_for(pred, len(pattern)),
        )
        self.memo[key] = subgoal
        self.stack.append(subgoal)
        self.scope.ctx.stats.subgoals += 1

        lowlink = self._apply_rules(subgoal)
        if lowlink >= subgoal.depth:
            # root of its subgoal SCC: iterate the whole SCC to fixpoint,
            # then mark every member done (the paper's 'done' facts)
            while True:
                if self.scope.ctx.limits is not None:
                    self.scope.ctx.limits.checkpoint(self.scope.ctx.stats)
                version = self._version
                for member in list(self.stack[subgoal.depth :]):
                    self._apply_rules(member)
                if self._version == version:
                    break
            for member in self.stack[subgoal.depth :]:
                member.done = True
            del self.stack[subgoal.depth :]
            return subgoal, _COMPLETE
        return subgoal, lowlink

    def _apply_rules(self, subgoal: _Subgoal) -> int:
        """One pass over the subgoal's rules; returns the minimum lowlink
        reached through its body calls."""
        lowlink = _COMPLETE
        for rule in self.rules_by_pred.get((subgoal.pred, subgoal.arity), ()):
            mapping: Dict[int, Var] = {}
            head_args = tuple(rename_term(arg, mapping) for arg in rule.head.args)
            body = tuple(
                Literal(
                    item.pred,
                    tuple(rename_term(arg, mapping) for arg in item.args),
                    item.negated,
                )
                for item in rule.body
            )
            from ..language.ast import Aggregation

            aggregates = tuple(
                (
                    position,
                    Aggregation(
                        aggregation.function,
                        rename_term(aggregation.expr, mapping),
                    ),
                )
                for position, aggregation in rule.head_aggregates
            )
            env = BindEnv()
            trail = Trail()
            pattern_mapping: Dict[int, Var] = {}
            pattern_args = tuple(
                rename_term(arg, pattern_mapping) for arg in subgoal.pattern
            )
            if not all(
                unify(head_arg, env, pattern_arg, env, trail)
                for pattern_arg, head_arg in zip(pattern_args, head_args)
            ):
                trail.undo_to(0)
                continue
            cell = [_COMPLETE]
            if aggregates:
                lowlink = min(
                    lowlink,
                    self._apply_aggregate_rule(
                        subgoal, head_args, body, aggregates, env, trail, cell
                    ),
                )
            else:
                for _ in self._body_solutions(body, 0, env, trail, cell):
                    self.scope.ctx.stats.inferences += 1
                    fact = Tuple(tuple(resolve(arg, env) for arg in head_args))
                    if subgoal.insert(fact):
                        self._version += 1
                lowlink = min(lowlink, cell[0])
            trail.undo_to(0)
        return lowlink

    def _apply_aggregate_rule(
        self, subgoal, head_args, body, aggregates, env, trail, cell
    ) -> int:
        """Grouped aggregation: only legal over *done* subgoals (the paper's
        guard: rules with grouping wait for their 'done' literals)."""
        positions = dict(aggregates)
        plain = [p for p in range(len(head_args)) if p not in positions]
        groups: Dict[tuple, Dict[int, list]] = {}
        seen: Dict[tuple, tuple] = {}
        for _ in self._body_solutions(body, 0, env, trail, cell, require_done=True):
            self.scope.ctx.stats.inferences += 1
            values = tuple(resolve(head_args[p], env) for p in plain)
            group_key = tuple(v.ground_key() for v in values)
            seen[group_key] = values
            bucket = groups.setdefault(group_key, {})
            for position, aggregation in positions.items():
                bucket.setdefault(position, []).append(
                    resolve(aggregation.expr, env)
                )
        for group_key, values in seen.items():
            args: List[Optional[Arg]] = [None] * len(head_args)
            for position, value in zip(plain, values):
                args[position] = value
            for position, aggregation in positions.items():
                args[position] = fold_aggregate(
                    aggregation.function, groups[group_key].get(position, [])
                )
            if subgoal.insert(Tuple(tuple(args))):
                self._version += 1
        return cell[0]

    # -- body resolution ----------------------------------------------------------------

    def _body_solutions(
        self,
        body: Sequence[Literal],
        position: int,
        env: BindEnv,
        trail: Trail,
        cell: List[int],
        require_done: bool = False,
    ) -> Iterator[None]:
        if position == len(body):
            yield None
            return
        literal = body[position]
        builtin = self.scope.ctx.builtins.lookup(literal.pred, literal.arity)

        if builtin is not None:
            mark = trail.mark()
            for _ in builtin.impl(literal.args, env, trail):
                yield from self._body_solutions(
                    body, position + 1, env, trail, cell, require_done
                )
            trail.undo_to(mark)
            return

        if literal.key in self.rules_by_pred:
            pattern = tuple(resolve(arg, env) for arg in literal.args)
            callee, lowlink = self._solve(literal.pred, pattern)
            cell[0] = min(cell[0], lowlink)
            if (literal.negated or require_done) and not callee.done:
                raise StratificationError(
                    f"subgoal {literal.pred}/{literal.arity} is needed "
                    f"negated/aggregated before it is done: the program is "
                    f"not left-to-right modularly stratified"
                )
            if literal.negated:
                if not self._matches_any(callee, literal, env, trail):
                    yield from self._body_solutions(
                        body, position + 1, env, trail, cell, require_done
                    )
                return
            for fact in list(callee.answers.scan(literal.args, env)):
                fact = fact.renamed()
                mark = trail.mark()
                if unify_fact(literal.args, env, fact.args, trail):
                    yield from self._body_solutions(
                        body, position + 1, env, trail, cell, require_done
                    )
                trail.undo_to(mark)
            return

        # base relation (or another module's export)
        relation = self.scope.relation(literal.pred, literal.arity)
        if literal.negated:
            from .join import negative_holds

            if negative_holds(self.scope, literal, env, trail):
                yield from self._body_solutions(
                    body, position + 1, env, trail, cell, require_done
                )
            return
        cursor = relation.scan(literal.args, env)
        try:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    return
                fact = candidate.renamed()
                mark = trail.mark()
                if unify_fact(literal.args, env, fact.args, trail):
                    yield from self._body_solutions(
                        body, position + 1, env, trail, cell, require_done
                    )
                trail.undo_to(mark)
        finally:
            cursor.close()

    def _matches_any(
        self, callee: _Subgoal, literal: Literal, env: BindEnv, trail: Trail
    ) -> bool:
        for fact in callee.answers.scan(literal.args, env):
            fact = fact.renamed()
            mark = trail.mark()
            matched = unify_fact(literal.args, env, fact.args, trail)
            trail.undo_to(mark)
            if matched:
                return True
        return False
