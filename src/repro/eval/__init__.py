"""Query evaluation: materialized fixpoints, pipelining, ordered search
(paper Sections 4, 5)."""

from .aggregates import AggregateConstraint, AggregateFold, fold_aggregate
from .context import EvalContext, EvalStats, LocalScope
from .fixpoint import SCCEvaluator, SCCPlan
from .join import BodyExecutor, backtrack_points, instantiate_head
from .limits import ResourceLimits
from .ordered import OrderedSearchEvaluator
from .pipeline import PipelinedModule

__all__ = [
    "AggregateConstraint",
    "AggregateFold",
    "BodyExecutor",
    "EvalContext",
    "EvalStats",
    "LocalScope",
    "OrderedSearchEvaluator",
    "PipelinedModule",
    "ResourceLimits",
    "SCCEvaluator",
    "SCCPlan",
    "backtrack_points",
    "fold_aggregate",
    "instantiate_head",
]
