"""Query evaluation: materialized fixpoints, pipelining, ordered search
(paper Sections 4, 5)."""

from .aggregates import AggregateConstraint, AggregateFold, fold_aggregate
from .context import EvalContext, EvalStats, LocalScope
from .fixpoint import SCCEvaluator, SCCPlan, apply_rule
from .join import BodyExecutor, backtrack_points, instantiate_head
from .limits import ResourceLimits
from .memo import MemoCache, MemoEntry, MemoPolicy, MemoStats
from .ordered import OrderedSearchEvaluator
from .pipeline import PipelinedModule

__all__ = [
    "AggregateConstraint",
    "AggregateFold",
    "BodyExecutor",
    "EvalContext",
    "EvalStats",
    "LocalScope",
    "MemoCache",
    "MemoEntry",
    "MemoPolicy",
    "MemoStats",
    "OrderedSearchEvaluator",
    "PipelinedModule",
    "ResourceLimits",
    "SCCEvaluator",
    "SCCPlan",
    "apply_rule",
    "backtrack_points",
    "fold_aggregate",
    "instantiate_head",
]
