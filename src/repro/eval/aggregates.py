"""Aggregate selections and grouped aggregation.

Section 5.5.2 (aggregate selections): *"CORAL permits the user to specify an
aggregate selection on the predicate path ...  The system then checks (at
run-time) if a path fact is such that there is a path fact of lesser cost C
with the same value for X, Y, and if there is such a fact, the costlier path
fact is discarded."*  Without this pruning the Figure 3 program runs forever
on cyclic graphs; with it (plus the ``any(P)`` witness selection) a single
source query runs in O(E·V).

Grouped head aggregation (``s_p_length(X, Y, min(<C>))``) is evaluated at a
stratum boundary: the rule's body is enumerated completely, solutions are
grouped by the non-aggregated head arguments, and one fact per group is
produced (:func:`fold_aggregate` implements the fold for each function).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple

from ..errors import EvaluationError
from ..language.ast import AggregateSelection
from ..relations import HashRelation, Tuple
from ..terms import Arg, BindEnv, Double, Int, Trail, resolve
from ..terms.unify import match


# ---------------------------------------------------------------------------
# grouped head aggregation
# ---------------------------------------------------------------------------

def _numeric(value: Arg, function: str) -> float:
    if isinstance(value, (Int, Double)):
        return value.value
    raise EvaluationError(f"{function} aggregate over non-numeric value {value}")


class AggregateFold:
    """Incremental fold for one aggregate function over one group."""

    def __init__(self, function: str) -> None:
        self.function = function
        self._state: Any = None
        self._count = 0

    def add(self, value: Optional[Arg]) -> None:
        self._count += 1
        if self.function == "count":
            return
        if value is None:
            raise EvaluationError(f"aggregate {self.function} needs a value")
        if self.function in ("any", "choice"):
            if self._state is None:
                self._state = value
            return
        if self.function in ("set", "bag"):
            if self._state is None:
                self._state = []
            self._state.append(value)
            return
        number = _numeric(value, self.function)
        if self._state is None:
            self._state = number
        elif self.function == "min":
            self._state = min(self._state, number)
        elif self.function == "max":
            self._state = max(self._state, number)
        elif self.function == "sum":
            self._state = self._state + number
        elif self.function == "prod":
            self._state = self._state * number
        else:
            raise EvaluationError(f"unknown aggregate function {self.function}")

    def result(self) -> Arg:
        if self.function == "count":
            return Int(self._count)
        if self.function in ("set", "bag"):
            return _collect(self.function, self._state or [])
        if self._state is None:
            raise EvaluationError(f"aggregate {self.function} over empty group")
        if self.function in ("any", "choice"):
            return self._state
        value = self._state
        return Int(value) if isinstance(value, int) else Double(value)


def _collect(function: str, values: List[Arg]) -> Arg:
    """Set-grouping (the paper's "set-grouping and aggregation"): ``set``
    collects the distinct group values as a sorted list term, ``bag`` keeps
    one copy per derivation in derivation order."""
    from ..terms import make_list

    def order_key(value: Arg):
        try:
            from ..storage.serde import sort_key

            return (0, sort_key([value]))
        except Exception:
            return (1, str(value))

    if function == "bag":
        return make_list(values)
    distinct: List[Arg] = []
    seen = set()
    for value in values:
        try:
            key = value.ground_key()
        except ValueError:
            key = ("~", str(value))
        if key not in seen:
            seen.add(key)
            distinct.append(value)
    return make_list(sorted(distinct, key=order_key))


def fold_aggregate(function: str, values: List[Optional[Arg]]) -> Arg:
    fold = AggregateFold(function)
    for value in values:
        fold.add(value)
    return fold.result()


# ---------------------------------------------------------------------------
# aggregate selections (relation-level pruning)
# ---------------------------------------------------------------------------

class AggregateConstraint:
    """Run-time enforcement of one ``@aggregate_selection`` annotation.

    ``admit`` decides whether a candidate fact may enter the relation
    (deleting any stored facts it dominates); ``record`` updates the
    constraint's per-group state after a successful insert.
    """

    def __init__(self, selection: AggregateSelection) -> None:
        if selection.function not in ("min", "max", "any", "choice"):
            raise EvaluationError(
                f"aggregate selection supports min/max/any/choice, "
                f"not {selection.function}"
            )
        if selection.function in ("min", "max") and selection.target is None:
            raise EvaluationError(
                f"aggregate selection {selection.function} needs a target"
            )
        self.selection = selection
        #: group key -> (best numeric value, tuples currently at that value)
        self._best: Dict[Any, PyTuple[float, List[Tuple]]] = {}
        #: group key -> the single retained witness (any/choice)
        self._witness: Dict[Any, Tuple] = {}

    def _extract(self, tup: Tuple) -> Optional[PyTuple[Any, Optional[Arg]]]:
        """Match the selection pattern against a fact; return (group key,
        target value) or None when the pattern does not apply."""
        selection = self.selection
        if len(tup.args) != len(selection.pattern):
            return None
        env = BindEnv()
        trail = Trail()
        try:
            for pattern_arg, fact_arg in zip(selection.pattern, tup.args):
                if not match(pattern_arg, env, fact_arg, None, trail):
                    return None
            key_parts = []
            for var in selection.group_vars:
                value = resolve(var, env)
                if not value.is_ground():
                    return None
                key_parts.append(value.ground_key())
            target = (
                resolve(selection.target, env)
                if selection.target is not None
                else None
            )
            if target is not None and not target.is_ground():
                return None
            return tuple(key_parts), target
        finally:
            trail.undo_to(0)

    def admit(self, relation: HashRelation, tup: Tuple) -> bool:
        extracted = self._extract(tup)
        if extracted is None:
            return True  # pattern does not constrain this fact
        key, target = extracted
        function = self.selection.function

        if function in ("any", "choice"):
            return key not in self._witness

        value = _numeric(target, function) if target is not None else 0.0
        best = self._best.get(key)
        if best is None:
            return True
        best_value, best_tuples = best
        if value == best_value:
            return True
        better = value < best_value if function == "min" else value > best_value
        if not better:
            return False
        # the newcomer dominates: discard the stored costlier facts
        for dominated in best_tuples:
            relation.delete(dominated)
        del self._best[key]
        return True

    def record(self, relation: HashRelation, tup: Tuple) -> None:
        extracted = self._extract(tup)
        if extracted is None:
            return
        key, target = extracted
        function = self.selection.function
        if function in ("any", "choice"):
            self._witness.setdefault(key, tup)
            return
        value = _numeric(target, function) if target is not None else 0.0
        best = self._best.get(key)
        if best is None or (
            value < best[0] if function == "min" else value > best[0]
        ):
            self._best[key] = (value, [tup])
        elif value == best[0]:
            best[1].append(tup)
