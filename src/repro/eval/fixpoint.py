"""Materialized (bottom-up fixpoint) evaluation.

Section 5.3: *"The variants of materialization are all bottom-up fixpoint
evaluation methods ... The evaluation part evaluates each rewritten rule once
in each iteration, and performs some updates to the delta relations at the
end of the iteration.  An evaluation terminates when an iteration produces no
new facts."*

Three strategies (Section 4.2):

* **BSN** — Basic Semi-Naive: one delta window per recursive predicate,
  advanced at a global iteration barrier.
* **PSN** — Predicate Semi-Naive: rules are grouped by head predicate and the
  groups processed in (approximate) topological order; a predicate's delta
  window advances immediately after its group runs, so facts derived early
  in an iteration are visible to groups processed later in the *same*
  iteration — fewer iterations for programs with many mutually recursive
  predicates (benchmark E4).
* **naive** — the rederive-everything baseline (benchmark E2).

Delta windows are realised with relation *marks* (Section 3.2): ``FULL``
scans ``[0, cur)``, ``DELTA`` scans ``[prev, cur)``, ``OLD`` scans
``[0, prev)``.  The evaluator is a generator yielding control after every
iteration, which is precisely the hook lazy evaluation (Section 5.4.3) and
the inter-module answer protocol (Section 5.6) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..errors import EvaluationError
from ..language.ast import Rule
from ..relations import MarkedRelation
from ..rewriting.seminaive import (
    ScanKind,
    SNRule,
    ext_rewrite,
    naive_rewrite,
    seminaive_rewrite,
)
from ..terms import BindEnv, Trail, resolve
from .aggregates import fold_aggregate
from .context import LocalScope
from .join import BodyExecutor, instantiate_head

PredKey = PyTuple[str, int]


@dataclass
class SCCPlan:
    """Everything needed to evaluate one strongly connected component: the
    compile-time half of Section 5.1's module structure."""

    preds: FrozenSet[PredKey]
    recursive: Set[PredKey]
    rules: List[Rule]
    once_rules: List[SNRule] = field(default_factory=list)
    delta_rules: List[SNRule] = field(default_factory=list)
    #: local predicates of earlier SCCs this one reads
    external: Set[PredKey] = field(default_factory=set)
    #: cross-call delta versions (save-module resumption, Section 5.4.2)
    ext_rules: List[SNRule] = field(default_factory=list)

    @staticmethod
    def build(
        preds: FrozenSet[PredKey],
        recursive: Set[PredKey],
        rules: List[Rule],
        is_builtin,
        strategy: str = "bsn",
        external: Optional[Set[PredKey]] = None,
    ) -> "SCCPlan":
        rewriter = naive_rewrite if strategy == "naive" else seminaive_rewrite
        once_rules, delta_rules = rewriter(rules, recursive, is_builtin)
        external = set(external or ())
        ext_rules = ext_rewrite(rules, recursive, external, is_builtin)
        return SCCPlan(
            preds, recursive, rules, once_rules, delta_rules, external, ext_rules
        )


class SCCEvaluator:
    """Runs one SCC to fixpoint (resumably, for the save-module facility)."""

    def __init__(
        self,
        scope: LocalScope,
        plan: SCCPlan,
        strategy: str = "bsn",
        use_backjumping: bool = True,
    ) -> None:
        if strategy not in ("bsn", "psn", "naive"):
            raise EvaluationError(f"unknown fixpoint strategy {strategy!r}")
        self.scope = scope
        self.plan = plan
        self.strategy = strategy
        #: per recursive predicate: [prev, cur) is the current delta window
        self.prev: Dict[PredKey, int] = {}
        self.cur: Dict[PredKey, int] = {}
        self._started = False
        #: lazy SCC label for profiling spans ("pred/arity,...")
        self._label: Optional[str] = None
        for pred in plan.preds:
            scope.declare_local(pred[0], pred[1])
        self._once_executors = [
            (rule, BodyExecutor(scope, rule.body, use_backjumping))
            for rule in plan.once_rules
        ]
        self._ext_executors = [
            (rule, BodyExecutor(scope, rule.body, use_backjumping))
            for rule in plan.ext_rules
        ]
        #: per external predicate: the mark up to which this SCC has consumed
        #: its contents (advanced at the end of every run)
        self._ext_seen: Dict[PredKey, int] = {}
        delta = [
            (rule, BodyExecutor(scope, rule.body, use_backjumping))
            for rule in plan.delta_rules
        ]
        if strategy == "psn":
            self._groups = self._group_by_head(delta)
        else:
            self._groups = [(None, delta)]

    # -- delta windows -----------------------------------------------------------

    def _relation(self, pred: PredKey) -> MarkedRelation:
        relation = self.scope.local[pred]
        assert isinstance(relation, MarkedRelation)
        return relation

    def _ranges(self, pred: PredKey, kind: ScanKind):
        if kind is ScanKind.EXT_DELTA:
            return (self._ext_seen.get(pred, 0), None)
        if pred not in self.plan.recursive:
            return None
        if kind is ScanKind.FULL:
            return (0, self.cur[pred])
        if kind is ScanKind.DELTA:
            return (self.prev[pred], self.cur[pred])
        if kind is ScanKind.OLD:
            return (0, self.prev[pred])
        return None

    def _external_relation(self, pred: PredKey) -> Optional[MarkedRelation]:
        relation = self.scope.local.get(pred)
        return relation if isinstance(relation, MarkedRelation) else None

    def _advance_ext_seen(self) -> None:
        for pred in self.plan.external:
            relation = self._external_relation(pred)
            if relation is not None:
                self._ext_seen[pred] = relation.mark()

    def _group_by_head(self, executors):
        """PSN: group rules by head predicate, ordered so that predicates
        feeding others within the SCC come first where the (cyclic) positive
        dependencies allow."""
        by_head: Dict[PredKey, list] = {}
        for rule, executor in executors:
            by_head.setdefault(rule.head.key, []).append((rule, executor))
        # approximate topological order: sort by number of in-SCC body
        # dependencies, then by first appearance (stable)
        order: List[PredKey] = []
        appearance = {key: index for index, key in enumerate(by_head)}

        def in_scc_deps(key: PredKey) -> int:
            count = 0
            for rule, _ in by_head[key]:
                for item in rule.body:
                    if item.literal.key in by_head and item.literal.key != key:
                        count += 1
            return count

        order = sorted(by_head, key=lambda key: (in_scc_deps(key), appearance[key]))
        return [(key, by_head[key]) for key in order]

    # -- evaluation ---------------------------------------------------------------

    def _obs_label(self) -> str:
        label = self._label
        if label is None:
            label = self._label = ",".join(
                f"{name}/{arity}" for name, arity in sorted(self.plan.preds)
            )
        return label

    def _apply(self, rule: SNRule, executor: BodyExecutor) -> None:
        """Evaluate one semi-naive rule version, inserting derived heads."""
        apply_rule(self.scope, rule, executor, self._ranges)

    def iterations(self) -> Iterator[int]:
        """Run to fixpoint, yielding the number of new facts after each
        iteration (the lazy-evaluation suspension points, Section 5.4.3).
        Calling it again after new facts were seeded resumes incrementally
        (the save-module facility, Section 5.4.2)."""
        yield self._seed()
        if self.strategy == "naive":
            yield from self._naive_loop()
            self._advance_ext_seen()
            return
        yield from self._delta_loop()

    def _seed(self) -> int:
        """Apply the once rules (first call) or the cross-call delta versions
        (resumption), set the initial delta windows, and return the number of
        facts present — the pre-iteration half of one fixpoint run."""
        obs = self.scope.ctx.obs
        seed_started = obs.begin_span() if obs is not None else None
        if not self._started:
            self._started = True
            for pred in self.plan.recursive:
                self.prev[pred] = 0
            for rule, executor in self._once_executors:
                self._apply(rule, executor)
        else:
            # resumption (save-module, Section 5.4.2): predicates of earlier
            # SCCs may have grown since this SCC's last fixpoint; the
            # cross-call delta versions pair their *new* facts with this
            # SCC's existing facts — no derivation is repeated, because each
            # version restricts one literal to facts not yet consumed
            for rule, executor in self._ext_executors:
                self._apply(rule, executor)
        for pred in self.plan.recursive:
            self.cur[pred] = self._relation(pred).mark()
        produced = sum(
            self._relation(pred).count_since(0) for pred in self.plan.recursive
        )
        if obs is not None:
            obs.end_span(
                "fixpoint.seed", "eval", seed_started, scc=self._obs_label()
            )
        return produced

    def _delta_loop(self) -> Iterator[int]:
        """The BSN/PSN iteration loop: run every delta-rule group, advance
        the delta windows, stop when an iteration derives nothing new."""
        stats = self.scope.ctx.stats
        iteration_index = 0
        while True:
            if self.scope.ctx.limits is not None:
                self.scope.ctx.limits.checkpoint(stats)
            obs = self.scope.ctx.obs
            iteration_index += 1
            iteration_started = (
                obs.begin_iteration(self._obs_label(), iteration_index)
                if obs is not None
                else None
            )
            new_facts = 0
            for head_key, group in self._groups:
                for rule, executor in group:
                    self._apply(rule, executor)
                if self.strategy == "psn" and head_key is not None:
                    if head_key in self.plan.recursive:
                        relation = self._relation(head_key)
                        added = relation.count_since(self.cur[head_key])
                        if added:
                            new_facts += added
                            self.prev[head_key] = self.cur[head_key]
                            self.cur[head_key] = relation.mark()
            if self.strategy != "psn":
                for pred in self.plan.recursive:
                    relation = self._relation(pred)
                    added = relation.count_since(self.cur[pred])
                    new_facts += added
                    self.prev[pred] = self.cur[pred]
                    self.cur[pred] = relation.mark()
            stats.iterations += 1
            if obs is not None:
                obs.end_iteration(
                    self._obs_label(), iteration_index, new_facts,
                    iteration_started,
                )
            if new_facts == 0:
                self._advance_ext_seen()
                return
            yield new_facts

    def _naive_loop(self) -> Iterator[int]:
        stats = self.scope.ctx.stats
        iteration_index = 0
        while True:
            if self.scope.ctx.limits is not None:
                self.scope.ctx.limits.checkpoint(stats)
            obs = self.scope.ctx.obs
            iteration_index += 1
            iteration_started = (
                obs.begin_iteration(self._obs_label(), iteration_index)
                if obs is not None
                else None
            )
            marks = {
                pred: self._relation(pred).mark() for pred in self.plan.recursive
            }
            for rule, executor in self._groups[0][1]:
                self._apply(rule, executor)
            stats.iterations += 1
            new_facts = sum(
                self._relation(pred).count_since(marks[pred])
                for pred in self.plan.recursive
            )
            if obs is not None:
                obs.end_iteration(
                    self._obs_label(), iteration_index, new_facts,
                    iteration_started,
                )
            if new_facts == 0:
                return
            yield new_facts

    def run_to_completion(self) -> int:
        """Drive :meth:`iterations` to the fixpoint; returns total new facts."""
        return sum(self.iterations())


def apply_rule(scope: LocalScope, rule: SNRule, executor: BodyExecutor, ranges) -> None:
    """Evaluate one semi-naive rule version against ``scope``, inserting
    derived heads.  ``ranges(pred, kind)`` maps each body literal's scan kind
    to a mark window (or None for the full extent).

    Shared by :class:`SCCEvaluator` and the memo cache's incremental-refresh
    path (:mod:`repro.eval.memo`), which replays base-predicate deltas
    through the same rule machinery."""
    stats = scope.ctx.stats
    stats.rule_applications += 1
    obs = scope.ctx.obs
    entry = started = None
    if obs is not None:
        entry, started = obs.begin_rule(rule)
    env = BindEnv()
    trail = Trail()
    if rule.head_aggregates:
        _apply_aggregate(scope, rule, executor, env, trail, ranges)
        if entry is not None:
            obs.end_rule(entry, started)
        return
    head = rule.head
    tracer = scope.ctx.tracer
    for _ in executor.solutions(env, trail, ranges):
        stats.inferences += 1
        fact = instantiate_head(head.args, env)
        if tracer is not None:
            tracer.record(
                head.pred,
                f"{head.pred}{fact}",
                str(rule),
                tuple(
                    f"{item.literal.pred}"
                    f"{instantiate_head(item.literal.args, env)}"
                    for item in rule.body
                    if not item.literal.negated
                    and not scope.ctx.is_builtin(
                        item.literal.pred, item.literal.arity
                    )
                ),
            )
        inserted = scope.insert_fact(head.pred, len(head.args), fact)
        if entry is not None:
            if inserted:
                entry.derived += 1
            else:
                entry.duplicates += 1
    trail.undo_to(0)
    if entry is not None:
        obs.end_rule(entry, started)


def _apply_aggregate(scope: LocalScope, rule: SNRule, executor: BodyExecutor, env, trail, ranges):
    """A grouping rule (``min(<C>)`` heads): enumerate the complete body,
    group by the non-aggregated head arguments, emit one fact per group.
    Stratification guarantees the body's relations are complete here."""
    stats = scope.ctx.stats
    aggregates = dict(rule.head_aggregates)
    plain_positions = [
        position
        for position in range(len(rule.head.args))
        if position not in aggregates
    ]
    groups: Dict[tuple, Dict[int, list]] = {}
    keys_seen: Dict[tuple, tuple] = {}
    for _ in executor.solutions(env, trail, ranges):
        stats.inferences += 1
        plain_values = tuple(
            resolve(rule.head.args[position], env)
            for position in plain_positions
        )
        if not all(value.is_ground() for value in plain_values):
            raise EvaluationError(
                f"non-ground grouping arguments in {rule.head.pred}"
            )
        group_key = tuple(value.ground_key() for value in plain_values)
        keys_seen[group_key] = plain_values
        per_position = groups.setdefault(group_key, {})
        for position, aggregation in aggregates.items():
            value = resolve(aggregation.expr, env)
            per_position.setdefault(position, []).append(value)
    trail.undo_to(0)

    for group_key, plain_values in keys_seen.items():
        args: List = [None] * len(rule.head.args)
        for position, value in zip(plain_positions, plain_values):
            args[position] = value
        for position, aggregation in aggregates.items():
            args[position] = fold_aggregate(
                aggregation.function, groups[group_key].get(position, [])
            )
        from ..relations import Tuple as RelTuple

        scope.insert_fact(
            rule.head.pred, len(args), RelTuple(tuple(args))
        )
