"""The shared incremental view-maintenance engine.

PR 4 built two repair paths for the cross-query answer cache: *delta
refresh* for base-fact inserts (per-SCC ``EXT_DELTA`` rule versions replay
the unconsumed slice of every base relation, then the retained evaluators
resume their semi-naive fixpoint — the marks machinery of Section 3.2
pointed at cross-query time) and *DRed* delete-rederive for base-fact
deletes (over-delete everything derivable from the removed tuples by
joining against the pre-deletion state, then re-derive what still has an
independent proof).  Behrend's *Uniform Fixpoint Approach* (PAPERS.md)
observes that this is not a cache trick but general view maintenance: the
same fixpoint machinery that computes a materialized result can repair it.

This module is that observation made concrete.  The machinery formerly
private to :mod:`repro.eval.memo` lives here as a consumer-neutral engine
with **strictly per-consumer state**: a :class:`MaintenancePlan` wraps one
retained :class:`~repro.modules.manager.MaterializedInstance` together with
its base dependencies, its consumed-marks table, and its delta rule
versions.  Two consumers drive it today:

* :class:`repro.eval.memo.MemoCache` — lazy repair: entries marked stale by
  an update are freshened at the next lookup;
* :class:`repro.live.LiveViewManager` — eager repair: registered live views
  are repaired at commit time and the answer-set difference is pushed to
  subscribers as ``+tuple``/``-tuple`` deltas (docs/LIVE.md).

The per-consumer discipline matters: a memo entry and a live view over the
same predicate each hold their *own* pending-delete queue and build their
*own* pre-state union (current contents ∪ tuples that consumer has not yet
repaired for).  Nothing here attaches repair state to the shared base
relations, so one consumer's DRed pass can never double-apply — or starve —
another's.  ``tests/test_live.py`` pins this with an interleaved
memo+subscription regression.

:func:`analyze_instance` decides *whether* a plan can exist and reports the
first obstruction as a human-readable reason (negation, aggregation,
compiled or ordered-search evaluation, aggregate selections, multiset
semantics, cross-module calls, impure builtins, unmarked base relations) —
the memo cache uses the reason to fall back to evict-on-update, the live
subsystem surfaces it verbatim in a typed ``SubscriptionError`` refusal.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from ..relations import GeneratorTupleIterator, MarkedRelation, Relation, Tuple
from ..rewriting.magic import MAGIC_PREFIX
from ..rewriting.seminaive import ScanKind, SNLiteral, SNRule
from ..terms import BindEnv, Trail
from ..terms.unify import unify_fact
from .fixpoint import apply_rule
from .join import BodyExecutor, instantiate_head

PredKey = PyTuple[str, int]

#: optional callback resolving the transitive base dependencies of a module
#: reached through a cross-module call (the memo cache supplies its cached
#: module info; consumers that refuse cross-module plans may pass None)
ModuleDeps = Callable[[str], FrozenSet[PredKey]]


class DamageExceeded(Exception):
    """DRed over-deletion crossed the damage threshold.

    The plan's local relations are partially over-deleted when this is
    raised, so the consumer must discard the instance: the memo cache
    evicts the entry, a live view rebuilds from scratch (and still emits a
    correct delta, because the delta is a diff against its last published
    answer set)."""


def analyze_instance(
    ctx,
    instance,
    exports: Dict[PredKey, tuple],
    module_deps: Optional[ModuleDeps] = None,
) -> PyTuple[FrozenSet[PredKey], Optional[str]]:
    """Direct base dependencies of a compiled instance, plus the first
    reason (or None) why incremental maintenance is impossible.

    ``deps`` is complete even when a reason is returned — consumers that
    retain unmaintainable results (the memo cache's evict-on-update
    entries) still need the reverse-dependency index.  Cross-module calls
    contribute the callee's transitive base deps through ``module_deps``
    when provided.
    """
    compiled = instance.compiled
    scope = instance.scope
    deps: Set[PredKey] = set()
    reason: Optional[str] = None

    def obstruct(why: str) -> None:
        nonlocal reason
        if reason is None:
            reason = why

    if compiled.compiled:
        obstruct("the module is compiled (@compiled)")
    if compiled.ordered_search:
        obstruct("the module uses ordered search")
    if compiled.constraints:
        obstruct("the module declares aggregate selections")
    if compiled.multiset_preds:
        obstruct("the module uses multiset semantics (@multiset)")
    for rule in compiled.rewritten.rules:
        if rule.head_aggregates:
            obstruct("the module uses grouped aggregation")
        for literal in rule.body:
            lkey = literal.key
            builtin = ctx.builtins.lookup(*lkey)
            if builtin is not None:
                if not builtin.pure:
                    obstruct(
                        f"the module calls the side-effecting builtin "
                        f"{lkey[0]}/{lkey[1]}"
                    )
                continue
            if literal.negated:
                obstruct("the module uses negation")
            if scope.is_local(*lkey):
                continue
            exported = exports.get(lkey)
            if exported is not None:
                obstruct(
                    f"the module calls {lkey[0]}/{lkey[1]} exported by "
                    f"module {exported[0]}"
                )
                if module_deps is not None:
                    deps |= module_deps(exported[0])
            else:
                deps.add(lkey)
    if reason is None:
        for dep in deps:
            relation = ctx.base_relation(*dep)
            if not isinstance(relation, MarkedRelation):
                reason = (
                    f"base relation {dep[0]}/{dep[1]} does not track "
                    f"insertion marks"
                )
                break
    return frozenset(deps), reason


class MaintenancePlan:
    """One retained instance plus everything needed to repair it in place.

    Built by :func:`plan_maintenance`.  All repair state — the consumed
    marks in ``base_seen``, the per-SCC delta rule versions — is owned by
    this plan (and therefore by one consumer); the engine never hangs
    repair state off the shared base relations.
    """

    __slots__ = ("ctx", "instance", "deps", "reason", "base_seen",
                 "base_delta_rules")

    def __init__(
        self,
        ctx,
        instance,
        deps: FrozenSet[PredKey],
        reason: Optional[str],
    ) -> None:
        self.ctx = ctx
        self.instance = instance
        self.deps = deps
        self.reason = reason
        #: per base dep: the relation mark up to which inserts are absorbed
        self.base_seen: Dict[PredKey, int] = {}
        #: per evaluator index: [(SNRule, BodyExecutor)] replaying base deltas
        self.base_delta_rules: List[List] = []
        if reason is None:
            self._build_base_delta_rules()
            self.record_base_marks()

    @property
    def maintainable(self) -> bool:
        return self.reason is None

    # -- bookkeeping -----------------------------------------------------------

    def record_base_marks(self) -> None:
        """Snapshot every base dependency's current mark: inserts at or
        below it are considered absorbed.  Called at build time and after
        every successful repair."""
        if not self.maintainable:
            return
        for dep in self.deps:
            relation = self.ctx.base_relation(*dep)
            self.base_seen[dep] = relation.mark()

    def _build_base_delta_rules(self) -> None:
        """For every rule and every base body literal, a delta version
        scanning that literal's *unconsumed* base facts (EXT_DELTA ranged by
        ``base_seen``) against the full extent of everything else — the
        cross-query analogue of ``ext_rewrite``."""
        instance = self.instance
        scope = instance.scope
        use_backjumping = instance.compiled.use_backjumping
        self.base_delta_rules = []
        for plan in instance.compiled.scc_plans:
            versions = []
            for rule in plan.rules:
                for position, literal in enumerate(rule.body):
                    if literal.negated or literal.key not in self.deps:
                        continue
                    body = tuple(
                        SNLiteral(
                            item,
                            ScanKind.EXT_DELTA if index == position
                            else ScanKind.ALL,
                        )
                        for index, item in enumerate(rule.body)
                    )
                    sn_rule = SNRule(rule.head, body, rule.head_aggregates,
                                     once=True)
                    versions.append(
                        (sn_rule, BodyExecutor(scope, body, use_backjumping))
                    )
            self.base_delta_rules.append(versions)

    # -- insert repair ---------------------------------------------------------

    def apply_inserts(self) -> None:
        """Absorb base-predicate inserts: replay each SCC's base-delta rule
        versions over the unconsumed slice of every base relation, then let
        the retained evaluators resume their fixpoint (their own EXT rules
        pick up growth of earlier SCCs)."""
        scope = self.instance.scope
        base_seen = self.base_seen

        def ranges(pred: PredKey, kind: ScanKind):
            if kind is ScanKind.EXT_DELTA:
                return (base_seen.get(pred, 0), None)
            return None

        for index, evaluator in enumerate(self.instance.evaluators):
            for sn_rule, executor in self.base_delta_rules[index]:
                apply_rule(scope, sn_rule, executor, ranges)
            evaluator.run_to_completion()

    # -- delete repair (DRed) --------------------------------------------------

    def apply_deletes(
        self,
        pending: Dict[PredKey, List[Tuple]],
        damage_threshold: float,
    ) -> PyTuple[int, int]:
        """DRed delete-rederive over the instance's retained local
        relations; ``pending`` maps each base predicate to the tuples this
        consumer has not yet repaired for.  Returns ``(over_deleted,
        re_derived)`` counts; raises :class:`DamageExceeded` when
        over-deletion touches more than ``damage_threshold`` of the derived
        facts (the plan is then unusable — discard the instance)."""
        instance = self.instance
        scope = instance.scope
        rewritten = instance.compiled.rewritten
        magic_names = {
            name for name in (rewritten.magic_pred,) if name is not None
        }
        for adorned in rewritten.origin:
            magic_names.add(MAGIC_PREFIX + adorned)

        total = sum(len(relation) for relation in scope.local.values())
        budget = max(64, int(damage_threshold * total))
        use_backjumping = instance.compiled.use_backjumping

        # pre-state view: current contents plus everything removed so far —
        # built from *this consumer's* pending queue, never shared state
        removed_store: Dict[PredKey, List[Tuple]] = {
            key: list(tuples) for key, tuples in pending.items()
        }
        pre_state = PreStateScope(scope, removed_store)

        # --- over-delete: propagate deletion deltas to fixpoint -------------
        over_deleted: List[PyTuple[PredKey, Tuple]] = []
        wave = {key: list(tuples) for key, tuples in pending.items()}
        executors: Dict[PyTuple[int, int], BodyExecutor] = {}
        rules = list(rewritten.rules)
        while wave:
            next_wave: Dict[PredKey, List[Tuple]] = {}
            for rule_index, rule in enumerate(rules):
                head_key = rule.head.key
                if rule.head.pred in magic_names:
                    continue  # over-complete magic is sound; never shrink it
                head_relation = scope.local.get(head_key)
                if head_relation is None:
                    continue
                for position, literal in enumerate(rule.body):
                    deleted = wave.get(literal.key)
                    if not deleted or literal.negated \
                            or self.ctx.builtins.lookup(*literal.key):
                        continue
                    executor = executors.get((rule_index, position))
                    if executor is None:
                        rest = tuple(
                            SNLiteral(item, ScanKind.ALL)
                            for index, item in enumerate(rule.body)
                            if index != position
                        )
                        executor = BodyExecutor(pre_state, rest, use_backjumping)
                        executors[(rule_index, position)] = executor
                    for tup in deleted:
                        env = BindEnv()
                        trail = Trail()
                        if not unify_fact(
                            literal.args, env, tup.renamed().args, trail
                        ):
                            trail.undo_to(0)
                            continue
                        for _ in executor.solutions(env, trail, None):
                            head_fact = instantiate_head(rule.head.args, env)
                            if head_relation.delete(head_fact):
                                over_deleted.append((head_key, head_fact))
                                next_wave.setdefault(head_key, []).append(
                                    head_fact
                                )
                                if len(over_deleted) > budget:
                                    raise DamageExceeded()
                        trail.undo_to(0)
            for key, tuples in next_wave.items():
                removed_store.setdefault(key, []).extend(tuples)
            wave = next_wave

        # --- re-derive: restore over-deleted tuples with surviving proofs ---
        rederived = 0
        rules_by_head: Dict[PredKey, List] = {}
        for rule in rules:
            rules_by_head.setdefault(rule.head.key, []).append(rule)
        full_executors: Dict[int, BodyExecutor] = {}
        pending_facts = list(over_deleted)
        while pending_facts:
            progressed = False
            remaining: List[PyTuple[PredKey, Tuple]] = []
            for head_key, tup in pending_facts:
                if self._rederivable(
                    scope, rules_by_head.get(head_key, ()), tup,
                    full_executors, use_backjumping,
                ):
                    scope.local[head_key].insert(tup)
                    rederived += 1
                    progressed = True
                else:
                    remaining.append((head_key, tup))
            if not progressed:
                break  # the rest have no support left: correctly deleted
            pending_facts = remaining
        return len(over_deleted), rederived

    def _rederivable(
        self, scope, candidate_rules, tup, executors, use_backjumping
    ) -> bool:
        """Does some rule still derive ``tup`` over the *current* state?"""
        target_key = tup.key()
        for rule in candidate_rules:
            rule_id = id(rule)
            executor = executors.get(rule_id)
            if executor is None:
                body = tuple(
                    SNLiteral(item, ScanKind.ALL) for item in rule.body
                )
                executor = BodyExecutor(scope, body, use_backjumping)
                executors[rule_id] = executor
            env = BindEnv()
            trail = Trail()
            if not unify_fact(rule.head.args, env, tup.renamed().args, trail):
                trail.undo_to(0)
                continue
            for _ in executor.solutions(env, trail, None):
                head_fact = instantiate_head(rule.head.args, env)
                if head_fact.key() == target_key or tup.is_ground():
                    trail.undo_to(0)
                    return True
            trail.undo_to(0)
        return False


def plan_maintenance(
    ctx,
    instance,
    exports: Dict[PredKey, tuple],
    module_deps: Optional[ModuleDeps] = None,
) -> MaintenancePlan:
    """Analyze an instance and wrap it in a :class:`MaintenancePlan`.

    The plan is always returned — ``plan.maintainable`` / ``plan.reason``
    tell the consumer whether repairs will work or why they won't."""
    deps, reason = analyze_instance(ctx, instance, exports, module_deps)
    return MaintenancePlan(ctx, instance, deps, reason)


# -- pre-state views -----------------------------------------------------------


class UnionRelation(Relation):
    """Pre-state view of one relation: current contents ∪ removed tuples."""

    def __init__(self, current: Relation, removed: Sequence[Tuple]) -> None:
        super().__init__(current.name, current.arity)
        self.current = current
        self.removed = removed

    def insert(self, tup: Tuple) -> bool:  # pragma: no cover - never written
        raise NotImplementedError("pre-state views are read-only")

    def delete(self, tup: Tuple) -> bool:  # pragma: no cover - never written
        raise NotImplementedError("pre-state views are read-only")

    def __len__(self) -> int:
        return len(self.current) + len(self.removed)

    def scan(self, pattern=None, env=None) -> "GeneratorTupleIterator":
        def generate() -> Iterator[Tuple]:
            cursor = self.current.scan(pattern, env)
            try:
                while True:
                    candidate = cursor.get_next()
                    if candidate is None:
                        break
                    yield candidate
            finally:
                cursor.close()
            yield from self.removed

        return GeneratorTupleIterator(generate())


class PreStateScope:
    """A :class:`LocalScope` stand-in whose relations show the pre-deletion
    state (current ∪ removed), for DRed's over-deletion joins.

    ``removed`` belongs to exactly one repair pass of one consumer; it is
    threaded in per call rather than cached anywhere shared, which is what
    keeps concurrent consumers (memo + live views) from double-applying
    each other's deletions."""

    def __init__(self, scope, removed: Dict[PredKey, List[Tuple]]) -> None:
        self._scope = scope
        self.ctx = scope.ctx
        self._removed = removed

    def relation(self, name: str, arity: int) -> Relation:
        underlying = self._scope.relation(name, arity)
        removed = self._removed.get((name, arity))
        if removed:
            return UnionRelation(underlying, removed)
        return underlying
