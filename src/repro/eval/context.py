"""The evaluation context: relation name space, builtins, statistics.

One :class:`EvalContext` backs a session: it owns the *base* relations
(facts consulted from text files or inserted through the imperative API),
the builtin registry, and a chain of *resolvers* through which the module
manager exposes exported predicates as relations (Section 5.6: every
predicate, base or derived, presents the same scan interface).

Module evaluation happens in a :class:`LocalScope` layered on top: the
rewritten program's internal predicates (adorned, magic, supplementary)
live in per-invocation relations that are discarded when the call ends
(Section 5.4.2's default) or retained by the save-module facility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple as PyTuple

from ..builtins import BuiltinRegistry, default_registry
from ..errors import EvaluationError
from ..language.ast import Literal
from ..relations import DuplicatePolicy, HashRelation, Relation, Tuple
from .aggregates import AggregateConstraint

PredKey = PyTuple[str, int]

#: a resolver maps (name, arity) to a Relation or None (not mine)
Resolver = Callable[[str, int], Optional[Relation]]


@dataclass
class EvalStats:
    """Run-time counters; the benchmarks report these alongside wall time."""

    inferences: int = 0  # successful rule-body solutions (facts derived, pre-dup)
    facts_inserted: int = 0  # net new facts
    duplicates: int = 0  # derivations rejected as duplicates/subsumed
    iterations: int = 0  # fixpoint iterations completed
    rule_applications: int = 0  # semi-naive rule evaluations
    subgoals: int = 0  # magic facts / subqueries generated
    module_calls: int = 0  # inter-module calls set up

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class EvalContext:
    """Session-global evaluation state."""

    def __init__(self, builtins: Optional[BuiltinRegistry] = None) -> None:
        self.base_relations: Dict[PredKey, Relation] = {}
        self.builtins = builtins if builtins is not None else default_registry()
        self.resolvers: List[Resolver] = []
        self.stats = EvalStats()
        #: optional DerivationTracer (the Explanation tool); None = off
        self.tracer = None
        #: optional ResourceLimits guarding the current evaluation; None = off
        self.limits = None
        #: optional observability hook (a repro.obs Profiler); None = off.
        #: Every instrumentation site guards with `if ctx.obs is not None`,
        #: so a session that never profiles pays one branch per site.
        self.obs = None
        #: optional cross-query answer cache (a repro.eval.memo.MemoCache);
        #: None = off.  Consulted by ExportedRelation.scan, invalidated by
        #: Session.insert/delete and the assertz/retract builtins.
        self.memo = None
        #: optional live-query registry (a repro.live.LiveViewManager);
        #: None = off.  Notified by the same update hooks as ``memo`` —
        #: memo repairs lazily at lookup, live views repair eagerly at
        #: commit and push the answer-set difference to subscribers.
        self.live = None

    def check_limits(self) -> None:
        """Raise ResourceLimitError if the active guard's budget is spent;
        no-op when no limits are installed."""
        if self.limits is not None:
            self.limits.check(self.stats)

    # -- relation resolution ---------------------------------------------------

    def add_resolver(self, resolver: Resolver) -> None:
        """Resolvers (e.g. the module manager) are consulted in order before
        falling back to base relations."""
        self.resolvers.append(resolver)

    def register_base(self, relation: Relation) -> None:
        key = (relation.name, relation.arity)
        if key in self.base_relations:
            raise EvaluationError(
                f"base relation {relation.name}/{relation.arity} already exists"
            )
        self.base_relations[key] = relation

    def base_relation(
        self, name: str, arity: int, create: bool = True
    ) -> Relation:
        key = (name, arity)
        relation = self.base_relations.get(key)
        if relation is None:
            if not create:
                raise EvaluationError(f"unknown relation {name}/{arity}")
            relation = HashRelation(name, arity)
            self.base_relations[key] = relation
        return relation

    def resolve(self, name: str, arity: int) -> Relation:
        """The relation a literal scans, whatever defines it (Section 5.6)."""
        for resolver in self.resolvers:
            relation = resolver(name, arity)
            if relation is not None:
                return relation
        return self.base_relation(name, arity)

    def is_builtin(self, name: str, arity: int) -> bool:
        return self.builtins.is_builtin(name, arity)


class LocalScope:
    """Relation namespace for one module invocation.

    Lookup order: this scope's local relations (the rewritten program's
    derived predicates), then the session context (other modules' exports,
    base relations).  Inserts of derived facts go through
    :meth:`insert_fact`, which applies aggregate-selection constraints
    (Section 5.5.2).
    """

    def __init__(
        self,
        ctx: EvalContext,
        multiset_preds: Optional[set] = None,
    ) -> None:
        self.ctx = ctx
        self.local: Dict[PredKey, HashRelation] = {}
        self.constraints: Dict[PredKey, List[AggregateConstraint]] = {}
        self.multiset_preds = multiset_preds or set()

    # -- relations ---------------------------------------------------------------

    def declare_local(self, name: str, arity: int) -> HashRelation:
        key = (name, arity)
        relation = self.local.get(key)
        if relation is None:
            policy = (
                DuplicatePolicy.MULTISET
                if name in self.multiset_preds
                else DuplicatePolicy.SET
            )
            relation = HashRelation(name, arity, policy=policy)
            self.local[key] = relation
        return relation

    def is_local(self, name: str, arity: int) -> bool:
        return (name, arity) in self.local

    def relation(self, name: str, arity: int) -> Relation:
        local = self.local.get((name, arity))
        if local is not None:
            return local
        return self.ctx.resolve(name, arity)

    # -- constrained insertion (aggregate selections) ------------------------------

    def add_constraint(
        self, name: str, arity: int, constraint: AggregateConstraint
    ) -> None:
        self.constraints.setdefault((name, arity), []).append(constraint)

    def insert_fact(self, name: str, arity: int, tup: Tuple) -> bool:
        """Insert a derived fact into a local relation, enforcing any
        aggregate selections declared for the predicate.

        Also the evaluation-wide resource choke point: every derived fact —
        fixpoint, compiled, or ordered-search — passes through here, so the
        active :class:`~repro.eval.limits.ResourceLimits` guard (if any) is
        consulted per insertion and limit overruns surface mid-iteration."""
        if self.ctx.limits is not None:
            self.ctx.limits.check(self.ctx.stats)
        relation = self.declare_local(name, arity)
        for constraint in self.constraints.get((name, arity), ()):
            if not constraint.admit(relation, tup):
                self.ctx.stats.duplicates += 1
                return False
        inserted = relation.insert(tup)
        if inserted:
            self.ctx.stats.facts_inserted += 1
            for constraint in self.constraints.get((name, arity), ()):
                constraint.record(relation, tup)
        else:
            self.ctx.stats.duplicates += 1
        return inserted
