"""The interactive system environment (paper Section 2)."""

from .repl import Shell, main

__all__ = ["Shell", "main"]
